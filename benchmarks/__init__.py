"""Paper-regeneration benchmark harness (pytest-benchmark)."""
