"""Fig. 6 / section 6: centralized vs distributed gate controllers.

Partitioning the die into k regions with one controller each shrinks
the enable star wiring; the paper's analysis predicts total star
wirelength ``G * D / (4 sqrt(k))``, i.e. a 1/sqrt(k) scaling.  The
bench measures the routed star against that model on r1-r3.
"""


import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.controller import expected_star_wirelength
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy

CONTROLLER_COUNTS = (1, 4, 16, 64)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("name", ["r1", "r2", "r3"])
def test_fig6_distributed_controllers(run_once, scale, tech, record, name):
    case = load_benchmark(name, scale=scale)
    reduction = GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)

    def sweep():
        return {
            k: route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                num_controllers=k,
                reduction=reduction,
            )
            for k in CONTROLLER_COUNTS
        }

    results = run_once(sweep)
    rows = []
    for k, result in results.items():
        analytic = expected_star_wirelength(case.die.width, result.gate_count, k)
        rows.append(
            [
                k,
                result.gate_count,
                result.area.controller_wire,
                analytic,
                result.switched_cap.controller_tree,
                result.switched_cap.total,
            ]
        )
    record(
        "fig6_%s" % name,
        format_table(
            ["k", "gates", "star wire", "analytic G*D/(4*sqrt(k))", "W ctrl", "W total"],
            rows,
            title="Fig. 6: distributed controllers (%s, scale=%.2f)" % (name, scale),
        ),
    )

    wire = {k: r.area.controller_wire for k, r in results.items()}
    # Monotone decrease with k.
    assert wire[1] > wire[4] > wire[16] > wire[64]
    # Roughly 1/sqrt(k): each 4x in controllers halves the star, within
    # a generous band (gates are not uniformly spread).
    for lo, hi in ((1, 4), (4, 16), (16, 64)):
        factor = wire[lo] / wire[hi]
        assert 1.3 <= factor <= 3.2, (lo, hi, factor)
    # Total switched capacitance improves monotonically too.
    totals = [results[k].switched_cap.total for k in CONTROLLER_COUNTS]
    assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))
