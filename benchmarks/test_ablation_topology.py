"""Ablation A5: topology generators under identical gating.

How much of the gated router's win comes from *choosing* the topology
by switched capacitance?  Three generators, identical sinks/workload
and the same gate-reduction policy:

* recursive bisection (balanced, activity- and wire-blind),
* nearest-neighbour greedy (wire-aware, activity-blind),
* the switched-capacitance greedy (the paper's router).
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.controller import ControllerLayout, route_enables
from repro.core.cost import incremental_switched_capacitance_cost
from repro.core.flow import _measure
from repro.core.gate_reduction import GateReductionPolicy
from repro.cts.bisection import build_bisection_tree
from repro.cts.dme import BottomUpMerger, nearest_neighbor_cost


@pytest.mark.benchmark(group="ablation-topology")
def test_ablation_topology(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)
    policy = GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)
    layout = ControllerLayout.centralized(case.die)

    def sweep():
        results = {}
        bisect = build_bisection_tree(
            case.sinks, tech, cell_policy=policy, oracle=case.oracle
        )
        results["bisection"] = _measure(
            "bisection", bisect, tech, route_enables(bisect, layout, tech)
        )
        for label, cost in (
            ("nn-greedy", nearest_neighbor_cost),
            ("sc-greedy", incremental_switched_capacitance_cost),
        ):
            merger = BottomUpMerger(
                case.sinks,
                tech,
                cost=cost,
                cell_policy=policy,
                oracle=case.oracle,
                controller_point=case.die.center,
                candidate_limit=CANDIDATE_LIMIT,
            )
            tree = merger.run()
            results[label] = _measure(
                label, tree, tech, route_enables(tree, layout, tech)
            )
        return results

    results = run_once(sweep)
    record(
        "ablation_topology",
        format_table(
            ["topology", "W total", "W clock", "W ctrl", "wirelength", "gates", "phase delay"],
            [
                [
                    label,
                    r.switched_cap.total,
                    r.switched_cap.clock_tree,
                    r.switched_cap.controller_tree,
                    r.wirelength,
                    r.gate_count,
                    r.phase_delay,
                ]
                for label, r in results.items()
            ],
            title="Ablation: topology generators (r1, scale=%.2f)" % scale,
        ),
    )

    for label, result in results.items():
        assert result.skew <= 1e-6 * max(result.phase_delay, 1.0), label
    # The paper's activity-aware greedy must win on total W.
    assert (
        results["sc-greedy"].switched_cap.total
        <= min(r.switched_cap.total for r in results.values()) * 1.001
    )
