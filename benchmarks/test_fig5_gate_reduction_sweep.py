"""Fig. 5: gate reduction vs switched capacitance and area (r1).

Sweeping the reduction knob trades the controller tree (shrinks with
every removed gate) against the clock tree (loses masking).  The paper
reports a U-shaped total with an interior optimum; the area chart
shows the controller-tree area falling while the clock tree's holds.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy

KNOBS = (0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0)


@pytest.mark.benchmark(group="fig5")
def test_fig5_gate_reduction_sweep(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)

    def sweep():
        rows = []
        for knob in KNOBS:
            reduction = GateReductionPolicy.from_knob(knob, tech) if knob else None
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=reduction,
            )
            rows.append(result)
        return rows

    results = run_once(sweep)
    record(
        "fig5_gate_reduction_sweep",
        format_table(
            [
                "knob",
                "reduction %",
                "W total",
                "W clock",
                "W ctrl",
                "area clock wire (1e6)",
                "area ctrl wire (1e6)",
                "gates",
            ],
            [
                [
                    knob,
                    100 * r.gate_reduction,
                    r.switched_cap.total,
                    r.switched_cap.clock_tree,
                    r.switched_cap.controller_tree,
                    r.area.clock_wire / 1e6,
                    r.area.controller_wire / 1e6,
                    r.gate_count,
                ]
                for knob, r in zip(KNOBS, results)
            ],
            title="Fig. 5: gate reduction sweep (r1, scale=%.2f)" % scale,
        ),
    )

    reductions = [r.gate_reduction for r in results]
    totals = [r.switched_cap.total for r in results]
    ctrl = [r.switched_cap.controller_tree for r in results]

    # Achieved reduction grows monotonically with the knob.
    assert reductions == sorted(reductions)
    # Controller switched cap falls monotonically with reduction.
    assert all(a >= b - 1e-9 for a, b in zip(ctrl, ctrl[1:]))
    # Interior optimum: some reduced point beats both the fully gated
    # tree and the most aggressive reduction isn't necessarily best.
    best = min(range(len(totals)), key=totals.__getitem__)
    assert best != 0
    assert totals[best] < totals[0]
