"""Speedup of the vectorized kernel screens over the scalar merger.

The ISSUE 3 acceptance bar: with the default cost (nearest neighbour)
and no cells, the ``dme.merge`` span must run >= 2x faster with
``vectorize=True`` than with ``vectorize=False`` at N >= 256 -- and the
``merge_trace`` must be byte-identical between the two modes on every
sink set, because the kernels mirror the scalar float arithmetic
exactly.

Outputs:

* ``benchmarks/results/dme_vectorize.txt`` -- the wall-clock table
  (also reproduced in EXPERIMENTS.md);
* ``BENCH_dme_vectorize.json`` at the repo root -- span timings, the
  speedups, and the kernel counters per size.
"""

from pathlib import Path

import pytest

from repro.analysis.report import format_table
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.sinks import SinkGenerator
from repro.core.flow import route_gated
from repro.cts import BottomUpMerger
from repro.obs import Tracer, load_json, set_tracer, write_bench_json, write_json
from repro.obs.jsonio import round_floats

ROOT = Path(__file__).resolve().parent.parent
SIZES = (128, 256, 512)

#: The acceptance threshold only binds where batching has enough lanes
#: to amortize the per-batch overhead.
SPEEDUP_FLOOR = 2.0
SPEEDUP_FLOOR_AT = 256

#: Full-flow sizes (r3..r5 scale; multiplied by REPRO_BENCH_SCALE).
FLOW_SIZES = (1024, 2048, 3101)

#: Flow-level floor: at full scale every FLOW_SIZES row clears 5x
#: comfortably (see EXPERIMENTS.md); the CI smoke runs at scale 0.25
#: (effective N = 256/512/775), where 3x at N >= 512 leaves margin.
FLOW_SPEEDUP_FLOOR = 3.0
FLOW_SPEEDUP_FLOOR_AT = 512


def _sinks(n):
    return SinkGenerator(num_sinks=n, seed=2).generate()


def _merge_span_seconds(sinks, tech, vectorize):
    """One merger run under a private tracer; returns (merger, seconds).

    Timing the ``dme.merge`` span (rather than ``run()`` wall-clock)
    scopes the measurement to exactly the phase the kernels accelerate.
    """
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        merger = BottomUpMerger(sinks, tech, vectorize=vectorize)
        merger.run()
    finally:
        set_tracer(previous)
    (span,) = [s for s in tracer.spans if s.name == "dme.merge"]
    assert span.attrs["vectorize"] is vectorize
    return merger, span.duration_ns / 1e9


@pytest.mark.benchmark(group="vectorize")
def test_vectorize_speedup(run_once, tech, record):
    """>= 2x faster merges at N >= 256, identical traces everywhere."""

    def measure():
        rows = []
        for n in SIZES:
            sinks = _sinks(n)
            scalar_m, scalar_t = _merge_span_seconds(sinks, tech, vectorize=False)
            vector_m, vector_t = _merge_span_seconds(sinks, tech, vectorize=True)
            # Bit-exact parity before any timing is trusted.
            assert vector_m.merge_trace == scalar_m.merge_trace
            assert (
                vector_m.tree.total_wirelength()
                == scalar_m.tree.total_wirelength()
            )
            assert vector_m._exact_screen
            assert vector_m.stats.kernel_batches > 0
            rows.append(
                {
                    "sinks": n,
                    "seconds_scalar": scalar_t,
                    "seconds_vectorized": vector_t,
                    "speedup": scalar_t / max(vector_t, 1e-9),
                    "plans_scalar": scalar_m.stats.plans_computed,
                    "plans_vectorized": vector_m.stats.plans_computed,
                    "kernel_batches": vector_m.stats.kernel_batches,
                    "kernel_candidates": vector_m.stats.kernel_candidates,
                    "kernel_scalar_fallbacks": (
                        vector_m.stats.kernel_scalar_fallbacks
                    ),
                    "distance_reuses": vector_m.stats.distance_reuses,
                }
            )
        return rows

    rows = run_once(measure)

    payload = {
        "cost": "nearest_neighbor_cost",
        "cell_policy": "NoCellPolicy",
        "span": "dme.merge",
        "sizes": list(SIZES),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_at": SPEEDUP_FLOOR_AT,
        "rows": rows,
    }
    write_bench_json(ROOT / "BENCH_dme_vectorize.json", "dme_vectorize", payload)

    record(
        "dme_vectorize",
        format_table(
            [
                "N",
                "s (scalar)",
                "s (vectorized)",
                "speedup",
                "plans (scalar)",
                "plans (vec)",
                "batches",
                "lanes",
            ],
            [
                [
                    r["sinks"],
                    r["seconds_scalar"],
                    r["seconds_vectorized"],
                    r["speedup"],
                    r["plans_scalar"],
                    r["plans_vectorized"],
                    r["kernel_batches"],
                    r["kernel_candidates"],
                ]
                for r in rows
            ],
            title="DME vectorized kernel screens (NN cost, no cells, "
            "dme.merge span)",
        ),
    )

    for r in rows:
        if r["sinks"] >= SPEEDUP_FLOOR_AT:
            assert r["speedup"] >= SPEEDUP_FLOOR, (
                "vectorize must be >= %gx faster at N=%d (got %.2fx)"
                % (SPEEDUP_FLOOR, r["sinks"], r["speedup"])
            )


def _flow_seconds(sinks, die, tech, n, vectorize):
    """One full gated route under a private tracer.

    Times the ``flow.route_gated`` root span -- the end-to-end number
    the topology.gated bottleneck used to dominate.  A fresh oracle per
    mode keeps the LRU memos from leaking work across modes.
    """
    cpu = CpuModel(CpuModelConfig(num_modules=n, num_instructions=24, seed=3))
    oracle = cpu.oracle(1500)
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        result = route_gated(sinks, tech, oracle, die=die, vectorize=vectorize)
    finally:
        set_tracer(previous)
    (root,) = [s for s in tracer.spans if s.name == "flow.route_gated"]
    return result, root.duration_ns / 1e9


@pytest.mark.benchmark(group="vectorize")
def test_flow_vectorize_speedup(run_once, tech, scale, record):
    """Full-flow (root span) speedup of the end-to-end screens.

    Exact greedy (no candidate limit) with the default incremental
    cost: the configuration whose O(N^2) scalar init scan made
    ``topology.gated`` the dominant flow phase.
    """

    def measure():
        rows = []
        for size in FLOW_SIZES:
            n = max(64, int(round(size * scale)))
            generator = SinkGenerator(num_sinks=n, seed=2)
            sinks, die = generator.generate(), generator.die()
            vector_r, vector_t = _flow_seconds(sinks, die, tech, n, True)
            scalar_r, scalar_t = _flow_seconds(sinks, die, tech, n, False)
            # The screens are decision-neutral end to end.
            assert vector_r.wirelength == scalar_r.wirelength
            assert vector_r.switched_cap.total == scalar_r.switched_cap.total
            assert vector_r.gate_count == scalar_r.gate_count
            rows.append(
                {
                    "sinks": n,
                    "seconds_scalar": scalar_t,
                    "seconds_vectorized": vector_t,
                    "speedup": scalar_t / max(vector_t, 1e-9),
                }
            )
        return rows

    rows = run_once(measure)

    # Extend the merge-span bench's payload rather than clobbering it
    # (definition order runs test_vectorize_speedup first; a standalone
    # run extends the committed file).
    path = ROOT / "BENCH_dme_vectorize.json"
    payload = load_json(path)
    payload["flow"] = {
        "cost": "incremental_switched_capacitance_cost",
        "span": "flow.route_gated",
        "sizes": list(FLOW_SIZES),
        "speedup_floor": FLOW_SPEEDUP_FLOOR,
        "speedup_floor_at": FLOW_SPEEDUP_FLOOR_AT,
        "rows": rows,
    }
    # The base payload already carries the schema key; re-rounding is
    # idempotent on it and normalizes the freshly added flow section.
    write_json(path, round_floats(payload))

    record(
        "dme_vectorize_flow",
        format_table(
            ["N", "s (scalar)", "s (vectorized)", "speedup"],
            [
                [
                    r["sinks"],
                    r["seconds_scalar"],
                    r["seconds_vectorized"],
                    r["speedup"],
                ]
                for r in rows
            ],
            title="Gated flow end-to-end (incremental cost, exact greedy, "
            "flow.route_gated span)",
        ),
    )

    for r in rows:
        if r["sinks"] >= FLOW_SPEEDUP_FLOOR_AT:
            assert r["speedup"] >= FLOW_SPEEDUP_FLOOR, (
                "full-flow vectorize must be >= %gx faster at N=%d "
                "(got %.2fx)"
                % (FLOW_SPEEDUP_FLOOR, r["sinks"], r["speedup"])
            )
