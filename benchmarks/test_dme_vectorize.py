"""Speedup of the vectorized kernel screens over the scalar merger.

The ISSUE 3 acceptance bar: with the default cost (nearest neighbour)
and no cells, the ``dme.merge`` span must run >= 2x faster with
``vectorize=True`` than with ``vectorize=False`` at N >= 256 -- and the
``merge_trace`` must be byte-identical between the two modes on every
sink set, because the kernels mirror the scalar float arithmetic
exactly.

Outputs:

* ``benchmarks/results/dme_vectorize.txt`` -- the wall-clock table
  (also reproduced in EXPERIMENTS.md);
* ``BENCH_dme_vectorize.json`` at the repo root -- span timings, the
  speedups, and the kernel counters per size.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.report import format_table
from repro.bench.sinks import SinkGenerator
from repro.cts import BottomUpMerger
from repro.obs import Tracer, set_tracer

ROOT = Path(__file__).resolve().parent.parent
SIZES = (128, 256, 512)

#: The acceptance threshold only binds where batching has enough lanes
#: to amortize the per-batch overhead.
SPEEDUP_FLOOR = 2.0
SPEEDUP_FLOOR_AT = 256


def _sinks(n):
    return SinkGenerator(num_sinks=n, seed=2).generate()


def _merge_span_seconds(sinks, tech, vectorize):
    """One merger run under a private tracer; returns (merger, seconds).

    Timing the ``dme.merge`` span (rather than ``run()`` wall-clock)
    scopes the measurement to exactly the phase the kernels accelerate.
    """
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        merger = BottomUpMerger(sinks, tech, vectorize=vectorize)
        merger.run()
    finally:
        set_tracer(previous)
    (span,) = [s for s in tracer.spans if s.name == "dme.merge"]
    assert span.attrs["vectorize"] is vectorize
    return merger, span.duration_ns / 1e9


@pytest.mark.benchmark(group="vectorize")
def test_vectorize_speedup(run_once, tech, record):
    """>= 2x faster merges at N >= 256, identical traces everywhere."""

    def measure():
        rows = []
        for n in SIZES:
            sinks = _sinks(n)
            scalar_m, scalar_t = _merge_span_seconds(sinks, tech, vectorize=False)
            vector_m, vector_t = _merge_span_seconds(sinks, tech, vectorize=True)
            # Bit-exact parity before any timing is trusted.
            assert vector_m.merge_trace == scalar_m.merge_trace
            assert (
                vector_m.tree.total_wirelength()
                == scalar_m.tree.total_wirelength()
            )
            assert vector_m._exact_screen
            assert vector_m.stats.kernel_batches > 0
            rows.append(
                {
                    "sinks": n,
                    "seconds_scalar": scalar_t,
                    "seconds_vectorized": vector_t,
                    "speedup": scalar_t / max(vector_t, 1e-9),
                    "plans_scalar": scalar_m.stats.plans_computed,
                    "plans_vectorized": vector_m.stats.plans_computed,
                    "kernel_batches": vector_m.stats.kernel_batches,
                    "kernel_candidates": vector_m.stats.kernel_candidates,
                    "kernel_scalar_fallbacks": (
                        vector_m.stats.kernel_scalar_fallbacks
                    ),
                    "distance_reuses": vector_m.stats.distance_reuses,
                }
            )
        return rows

    rows = run_once(measure)

    payload = {
        "bench": "dme_vectorize",
        "cost": "nearest_neighbor_cost",
        "cell_policy": "NoCellPolicy",
        "span": "dme.merge",
        "sizes": list(SIZES),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_at": SPEEDUP_FLOOR_AT,
        "rows": rows,
    }
    (ROOT / "BENCH_dme_vectorize.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    record(
        "dme_vectorize",
        format_table(
            [
                "N",
                "s (scalar)",
                "s (vectorized)",
                "speedup",
                "plans (scalar)",
                "plans (vec)",
                "batches",
                "lanes",
            ],
            [
                [
                    r["sinks"],
                    r["seconds_scalar"],
                    r["seconds_vectorized"],
                    r["speedup"],
                    r["plans_scalar"],
                    r["plans_vectorized"],
                    r["kernel_batches"],
                    r["kernel_candidates"],
                ]
                for r in rows
            ],
            title="DME vectorized kernel screens (NN cost, no cells, "
            "dme.merge span)",
        ),
    )

    for r in rows:
        if r["sinks"] >= SPEEDUP_FLOOR_AT:
            assert r["speedup"] >= SPEEDUP_FLOOR, (
                "vectorize must be >= %gx faster at N=%d (got %.2fx)"
                % (SPEEDUP_FLOOR, r["sinks"], r["speedup"])
            )
