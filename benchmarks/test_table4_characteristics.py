"""Table 4: benchmark characteristics.

Paper row format: benchmark, number of sinks, number of instructions,
and ``Ave(M(I))`` -- the average fraction of modules used per executed
instruction, about 0.4 for every benchmark.
"""

import pytest

from repro.analysis.report import format_characteristics
from repro.bench.suite import benchmark_names, load_benchmark


@pytest.mark.benchmark(group="table4")
def test_table4_characteristics(run_once, scale, record):
    def build():
        rows = {}
        for name in benchmark_names():
            case = load_benchmark(name, scale=scale)
            rows[name] = case.characteristics()
        return rows

    rows = run_once(build)
    record("table4_characteristics", format_characteristics(rows))

    for name, row in rows.items():
        # The paper's Ave(M(I)) is ~0.4 across the board.
        assert row["ave_modules_per_instruction"] == pytest.approx(0.4, abs=0.15), name
        assert row["stream_cycles"] == 10000
