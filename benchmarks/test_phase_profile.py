"""Per-phase wall-clock attribution of the gated routing flow.

Every perf-oriented PR should land with a trace, not an anecdote: this
bench routes each benchmark with the span tracer on, aggregates the
trace into per-phase totals (topology / gating / controller star /
measurement, with the DME sub-phases alongside) and persists them to
``BENCH_phase_profile.json`` at the repo root, so the perf trajectory
across PRs is attributable to phases instead of a single end-to-end
number.

The span tree must cover >= 95% of the wall clock of every routed
flow -- untraced time means a phase is missing instrumentation.

Outputs:

* ``benchmarks/results/phase_profile.txt`` -- one phase table per
  benchmark (via :func:`repro.analysis.report.format_phase_times`);
* ``BENCH_phase_profile.json`` -- machine-readable per-phase rows.
"""

from pathlib import Path

import pytest

from repro.analysis.report import format_phase_times
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.obs import (
    DME_DETAIL_SPANS,
    MetricsRegistry,
    Tracer,
    phase_profile,
    record_from_trace,
    set_registry,
    set_tracer,
    write_bench_json,
)

ROOT = Path(__file__).resolve().parent.parent

#: All five paper benchmarks; ``REPRO_BENCH_SCALE`` keeps the CI run
#: small while the full-scale r3-r5 rows document the flow-level
#: speedup trajectory (the JSON schema is identical at every scale).
BENCHES = ("r1", "r2", "r3", "r4", "r5")


@pytest.mark.benchmark(group="observability")
def test_phase_profile(run_once, tech, scale, record, ledger):
    """Trace gated routes; persist phase totals; require 95% coverage."""

    def measure():
        out = {}
        for name in BENCHES:
            case = load_benchmark(name, scale=scale)
            tracer = Tracer(enabled=True)
            # A private registry per benchmark keeps the RunRecord's
            # counter snapshot scoped to this route alone.
            registry = MetricsRegistry()
            previous_reg = set_registry(registry)
            previous = set_tracer(tracer)
            try:
                result = route_gated(
                    case.sinks,
                    tech,
                    case.oracle,
                    die=case.die,
                    candidate_limit=16,
                )
            finally:
                set_tracer(previous)
                set_registry(previous_reg)
            out[name] = (len(case.sinks), tracer, registry, result)
        return out

    traced = run_once(measure)

    # Every traced route also lands in the run ledger, so the sentinel
    # can diff bench runs across commits the same way it diffs CLI runs.
    for name, (num_sinks, tracer, registry, result) in traced.items():
        ledger.save(
            record_from_trace(
                kind="bench",
                label="phase_profile:%s" % name,
                config={
                    "benchmark": name,
                    "sinks": num_sinks,
                    "candidate_limit": 16,
                },
                tracer=tracer,
                pins=result.pins(),
                registry=registry,
                root_name="flow.route_gated",
            )
        )

    rows = []
    tables = []
    for name, (num_sinks, tracer, _, _) in traced.items():
        spans = tracer.spans
        profile = phase_profile(
            spans,
            root_name="flow.route_gated",
            detail_names=DME_DETAIL_SPANS,
        )
        assert profile.coverage >= 0.95, (
            "span tree covers %.1f%% of %s's wall clock; a phase is "
            "missing instrumentation" % (100 * profile.coverage, name)
        )
        rows.append(
            {
                "benchmark": name,
                "sinks": num_sinks,
                **profile.as_dict(),
                # DME sub-phases ride along for merge-loop attribution.
                "dme_spans": [
                    s.as_dict()
                    for s in spans
                    if s.name.startswith("dme.") and s.name != "dme.merge"
                ],
            }
        )
        tables.append(
            format_phase_times(
                profile, title="Phase profile: %s (N=%d)" % (name, num_sinks)
            )
        )

    payload = {"candidate_limit": 16, "rows": rows}
    write_bench_json(ROOT / "BENCH_phase_profile.json", "phase_profile", payload)
    record("phase_profile", "\n\n".join(tables))
