"""Per-phase wall-clock attribution of the gated routing flow.

Every perf-oriented PR should land with a trace, not an anecdote: this
bench routes each benchmark with the span tracer on, aggregates the
trace into per-phase totals (topology / gating / controller star /
measurement, with the DME sub-phases alongside) and persists them to
``BENCH_phase_profile.json`` at the repo root, so the perf trajectory
across PRs is attributable to phases instead of a single end-to-end
number.

The span tree must cover >= 95% of the wall clock of every routed
flow -- untraced time means a phase is missing instrumentation.

Outputs:

* ``benchmarks/results/phase_profile.txt`` -- one phase table per
  benchmark (via :func:`repro.analysis.report.format_phase_times`);
* ``BENCH_phase_profile.json`` -- machine-readable per-phase rows.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.report import format_phase_times
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.obs import DME_DETAIL_SPANS, Tracer, phase_profile, set_tracer

ROOT = Path(__file__).resolve().parent.parent

#: All five paper benchmarks; ``REPRO_BENCH_SCALE`` keeps the CI run
#: small while the full-scale r3-r5 rows document the flow-level
#: speedup trajectory (the JSON schema is identical at every scale).
BENCHES = ("r1", "r2", "r3", "r4", "r5")


@pytest.mark.benchmark(group="observability")
def test_phase_profile(run_once, tech, scale, record):
    """Trace gated routes; persist phase totals; require 95% coverage."""

    def measure():
        out = {}
        for name in BENCHES:
            case = load_benchmark(name, scale=scale)
            tracer = Tracer(enabled=True)
            previous = set_tracer(tracer)
            try:
                route_gated(
                    case.sinks,
                    tech,
                    case.oracle,
                    die=case.die,
                    candidate_limit=16,
                )
            finally:
                set_tracer(previous)
            out[name] = (len(case.sinks), tracer.spans)
        return out

    traced = run_once(measure)

    rows = []
    tables = []
    for name, (num_sinks, spans) in traced.items():
        profile = phase_profile(
            spans,
            root_name="flow.route_gated",
            detail_names=DME_DETAIL_SPANS,
        )
        assert profile.coverage >= 0.95, (
            "span tree covers %.1f%% of %s's wall clock; a phase is "
            "missing instrumentation" % (100 * profile.coverage, name)
        )
        rows.append(
            {
                "benchmark": name,
                "sinks": num_sinks,
                **profile.as_dict(),
                # DME sub-phases ride along for merge-loop attribution.
                "dme_spans": [
                    s.as_dict()
                    for s in spans
                    if s.name.startswith("dme.") and s.name != "dme.merge"
                ],
            }
        )
        tables.append(
            format_phase_times(
                profile, title="Phase profile: %s (N=%d)" % (name, num_sinks)
            )
        )

    payload = {"bench": "phase_profile", "candidate_limit": 16, "rows": rows}
    (ROOT / "BENCH_phase_profile.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record("phase_profile", "\n\n".join(tables))
