"""Validation V1: cycle-accurate replay vs the statistical model.

The paper's entire methodology rests on replacing clock-by-clock
simulation with IFT/IMATT statistics.  This bench runs the expensive
simulation anyway and reports both:

* **in-sample**: replaying the construction trace must reproduce the
  analytic W(T)/W(S) exactly;
* **out-of-sample**: replaying fresh traces from the same CPU measures
  the statistical model's generalization error.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.sim import ClockNetworkSimulator


@pytest.mark.benchmark(group="validation")
def test_validation_simulation(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)

    def study():
        rows = []
        for label, reduction in (
            ("gated", None),
            ("gate-red", GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)),
        ):
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=reduction,
            )
            sim = ClockNetworkSimulator(
                result.tree, tech, case.cpu.isa, routing=result.routing
            )
            in_sample = sim.run(case.stream)
            fresh_means = [
                sim.run(case.cpu.stream(len(case.stream), seed=1000 + i)).mean_total
                for i in range(3)
            ]
            analytic = result.switched_cap.total
            rows.append(
                [
                    label,
                    analytic,
                    in_sample.mean_total,
                    abs(in_sample.mean_total - analytic) / analytic,
                    sum(fresh_means) / len(fresh_means),
                    max(abs(m - analytic) / analytic for m in fresh_means),
                    in_sample.peak_total,
                ]
            )
        return rows

    rows = run_once(study)
    record(
        "validation_simulation",
        format_table(
            [
                "method",
                "analytic W",
                "replayed W",
                "in-sample err",
                "fresh-trace W (avg of 3)",
                "max fresh err",
                "peak W (1 cycle)",
            ],
            rows,
            title="Validation: cycle-accurate replay vs statistics (r1, scale=%.2f)"
            % scale,
        ),
    )

    for row in rows:
        assert row[3] < 1e-9  # in-sample: exact
        assert row[5] < 0.10  # out-of-sample: within 10%
