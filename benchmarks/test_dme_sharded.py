"""Scaling of sharded routing vs. the single-process gated flow.

The acceptance bar: at scale with 8 workers the sharded flow must run
>= 2x faster end-to-end than the single-process gated flow, the
stitched tree must pass the full network audit with zero findings,
and the switched-capacitance premium of sharding (the top tree is
stitched along the partition's cut tree instead of greedily) must
stay small.  On a single-core host the 2x bar binds at N=100k, where
the greedy's superlinear per-merge cost dominates; in the mid range
the two arms share the same flat per-merge cost and the honest
single-core expectation is neutrality (see the floor tiers below).

Sizes come from ``REPRO_SHARD_BENCH_SINKS`` (comma list) so CI smokes
a sub-second size while the committed curve is regenerated at full
scale out-of-band::

    REPRO_SHARD_BENCH_SINKS=10000,30000,100000 \
    REPRO_SHARD_BENCH_WORKERS=8 \
    pytest benchmarks/test_dme_sharded.py --benchmark-only

Inputs are seeded synthetic workloads (:mod:`repro.bench.synthetic`),
so nothing at sharding scale is committed.  Note the host truth is
recorded in the payload (``cpu_count``): on a single-core runner the
speedup is purely algorithmic -- K shards of N/K sinks side-step the
greedy's superlinear growth -- and worker processes add real
parallelism on top wherever cores exist.

Outputs: ``benchmarks/results/dme_sharded.txt`` and
``BENCH_dme_sharded.json`` at the repo root (CI floor-checked).
"""

import os
from pathlib import Path

import pytest

from repro.analysis.report import format_table
from repro.bench.synthetic import generate_synthetic_case
from repro.check.auditor import audit_network
from repro.core.flow import route_gated, route_sharded
from repro.obs import Tracer, set_tracer, write_bench_json

ROOT = Path(__file__).resolve().parent.parent

#: Comma list of sink counts; the tiny default keeps tier-1/CI fast.
SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_SHARD_BENCH_SINKS", "800").split(",")
    if s.strip()
)

#: Worker processes for the sharded arm (8 for the committed curve).
#: The smoke default routes shards inline: at sub-second sizes the
#: pool's fork+pickle cost exceeds the work it parallelises.
WORKERS = int(os.environ.get("REPRO_SHARD_BENCH_WORKERS", "1"))

#: Shards are sized toward this many sinks each (but never fewer than
#: eight shards, so the smoke size still exercises a real cut tree).
TARGET_SHARD_SINKS = 1500

#: Smoke floor: sharding must already win at the CI size, where the
#: shards are tiny relative to the greedy's frontier.
SPEEDUP_FLOOR = 1.05
SPEEDUP_FLOOR_AT = 800

#: Above this the smoke floor gives way to a neutrality guard: on a
#: single-core host the mid range (~10k-30k) is bounded by the flat
#: per-merge cost, identical in both arms, so the honest expectation
#: is "no pathological slowdown" (measured 0.95-1.4x), not a win.
MID_FLOOR = 0.75
MID_FLOOR_AT = 4000

#: The acceptance floor at scale: where the single-process greedy's
#: superlinear per-merge cost dominates, sharding must at least halve
#: the wall clock even with zero worker parallelism (cpu_count == 1;
#: with real cores the parallel term moves this bar far left).
FULL_SPEEDUP_FLOOR = 2.0
FULL_SPEEDUP_FLOOR_AT = 100000

#: Ceiling on the stitch's switched-capacitance premium.
CAP_RATIO_CEILING = 1.15

CANDIDATE_LIMIT = 16
SEED = 2


def _num_shards(n: int) -> int:
    return max(8, round(n / TARGET_SHARD_SINKS))


def _span_seconds(tracer: Tracer, name: str) -> float:
    (span,) = [s for s in tracer.spans if s.name == name]
    return span.duration_ns / 1e9


def _route_arm(case, tech, sharded: bool, num_shards: int):
    """One end-to-end route under a private tracer; fresh oracle per
    arm so LRU memos never leak work across measurements."""
    oracle = case.oracle()
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        if sharded:
            result = route_sharded(
                case.sinks,
                tech,
                oracle,
                die=case.die,
                num_shards=num_shards,
                num_workers=WORKERS,
                candidate_limit=CANDIDATE_LIMIT,
            )
        else:
            result = route_gated(
                case.sinks,
                tech,
                oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
            )
    finally:
        set_tracer(previous)
    name = "flow.route_sharded" if sharded else "flow.route_gated"
    return result, _span_seconds(tracer, name)


@pytest.mark.benchmark(group="sharded")
def test_sharded_scaling(run_once, tech, record):
    """Sharded vs single-process full flow at every configured size."""

    def measure():
        rows = []
        for n in SIZES:
            case = generate_synthetic_case(n, seed=SEED)
            k = _num_shards(n)
            single_r, single_t = _route_arm(case, tech, sharded=False, num_shards=k)
            sharded_r, sharded_t = _route_arm(case, tech, sharded=True, num_shards=k)
            report = audit_network(sharded_r.tree, routing=sharded_r.routing)
            assert report.ok, report.summary()
            rows.append(
                {
                    "sinks": n,
                    "shards": k,
                    "workers": WORKERS,
                    "seconds_single": single_t,
                    "seconds_sharded": sharded_t,
                    "speedup": single_t / max(sharded_t, 1e-9),
                    "switched_cap_single": single_r.switched_cap.total,
                    "switched_cap_sharded": sharded_r.switched_cap.total,
                    "cap_ratio": sharded_r.switched_cap.total
                    / single_r.switched_cap.total,
                    "skew_sharded": sharded_r.skew,
                    "audit_findings": len(report.findings),
                }
            )
        return rows

    rows = run_once(measure)

    payload = {
        "span_single": "flow.route_gated",
        "span_sharded": "flow.route_sharded",
        "candidate_limit": CANDIDATE_LIMIT,
        "seed": SEED,
        "target_shard_sinks": TARGET_SHARD_SINKS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "sizes": list(SIZES),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_at": SPEEDUP_FLOOR_AT,
        "mid_floor": MID_FLOOR,
        "mid_floor_at": MID_FLOOR_AT,
        "full_speedup_floor": FULL_SPEEDUP_FLOOR,
        "full_speedup_floor_at": FULL_SPEEDUP_FLOOR_AT,
        "cap_ratio_ceiling": CAP_RATIO_CEILING,
        "rows": rows,
    }
    write_bench_json(ROOT / "BENCH_dme_sharded.json", "dme_sharded", payload)

    record(
        "dme_sharded",
        format_table(
            [
                "N",
                "K",
                "W",
                "s (single)",
                "s (sharded)",
                "speedup",
                "cap ratio",
            ],
            [
                [
                    r["sinks"],
                    r["shards"],
                    r["workers"],
                    r["seconds_single"],
                    r["seconds_sharded"],
                    r["speedup"],
                    r["cap_ratio"],
                ]
                for r in rows
            ],
            title="Sharded routing scaling (partition -> worker pool -> "
            "exact zero-skew stitch)",
        ),
    )

    for r in rows:
        assert r["audit_findings"] == 0
        assert r["cap_ratio"] <= CAP_RATIO_CEILING, (
            "switched-cap premium of sharding above ceiling at N=%d: %.3f"
            % (r["sinks"], r["cap_ratio"])
        )
        if r["sinks"] >= FULL_SPEEDUP_FLOOR_AT:
            floor = FULL_SPEEDUP_FLOOR
        elif r["sinks"] >= MID_FLOOR_AT:
            floor = MID_FLOOR
        elif r["sinks"] >= SPEEDUP_FLOOR_AT:
            floor = SPEEDUP_FLOOR
        else:
            continue
        assert r["speedup"] >= floor, (
            "sharded flow must be >= %gx faster at N=%d (got %.2fx)"
            % (floor, r["sinks"], r["speedup"])
        )
