"""Fig. 4: average module activity vs switched capacitance (r1).

The paper plots the gate-reduced tree against the buffered one while
sweeping how busy the modules are: the gap shrinks as activity grows
("gated clock routing is more effective when the module activity is
low"), and the gated clock tree's power floors at roughly the average
activity fraction of the ungated tree.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.switched_cap import masking_efficiency

ACTIVITIES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.55, 0.7, 0.85)


@pytest.mark.benchmark(group="fig4")
def test_fig4_activity_sweep(run_once, scale, tech, record):
    def sweep():
        rows = []
        for activity in ACTIVITIES:
            case = load_benchmark("r1", scale=scale, target_activity=activity)
            buffered = route_buffered(case.sinks, tech, candidate_limit=CANDIDATE_LIMIT)
            reduced = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=GateReductionPolicy.from_knob(DEFAULT_KNOB, tech),
            )
            rows.append(
                {
                    "target": activity,
                    "measured": case.tables.average_module_activity(),
                    "w_buffered": buffered.switched_cap.total,
                    "w_reduced": reduced.switched_cap.total,
                    "ratio": reduced.switched_cap.total / buffered.switched_cap.total,
                    "mask": masking_efficiency(reduced.tree, tech),
                }
            )
        return rows

    rows = run_once(sweep)
    record(
        "fig4_activity_sweep",
        format_table(
            ["activity", "measured", "W buffered", "W gate-red", "ratio", "clk mask"],
            [
                [r["target"], r["measured"], r["w_buffered"], r["w_reduced"], r["ratio"], r["mask"]]
                for r in rows
            ],
            title="Fig. 4: module activity vs switched capacitance (r1, scale=%.2f)" % scale,
        ),
    )

    ratios = [r["ratio"] for r in rows]
    # Savings shrink as activity grows (allow small local noise by
    # comparing the sweep's ends and a midpoint).
    assert ratios[0] < ratios[3] < max(ratios[5:])
    # Strong gating at very low activity.
    assert ratios[0] < 0.6
    # Masking floor tracks the measured average activity.
    for r in rows:
        assert r["mask"] >= 0.5 * r["measured"]
