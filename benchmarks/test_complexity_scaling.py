"""Section 4.2's complexity claim: O(B + K^2 * N^2).

Three scaling probes:

* table construction is linear in the stream length B,
* per-query probability computation is polynomial in K (O(K) signal /
  O(K^2) transition),
* the full exact-greedy router scales near-quadratically in N.

Wall-clock ratios on a shared machine are noisy, so the assertions are
loose upper bounds ruling out a *worse* complexity class, not exact
exponents.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.sinks import SinkGenerator
from repro.activity.tables import ActivityTables
from repro.activity.probability import ActivityOracle
from repro.core.flow import route_gated


def _time(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="complexity")
def test_stream_scan_linear_in_b(run_once, record):
    cpu = CpuModel(CpuModelConfig(num_modules=64, num_instructions=16, seed=0))
    streams = {b: cpu.stream(b) for b in (20000, 80000)}

    def measure():
        return {
            b: _time(lambda s=s: ActivityTables.from_stream(cpu.isa, s))
            for b, s in streams.items()
        }

    times = run_once(measure)
    record(
        "complexity_stream_scan",
        format_table(
            ["B", "seconds"], [[b, t] for b, t in times.items()],
            title="Table-building time vs stream length (O(B))",
        ),
    )
    # 4x the stream should cost clearly less than ~12x the time.
    assert times[80000] < 12 * max(times[20000], 1e-5)


@pytest.mark.benchmark(group="complexity")
def test_router_scales_near_quadratic_in_n(run_once, tech, record):
    sizes = (40, 80, 160)

    def measure():
        times = {}
        for n in sizes:
            sinks = SinkGenerator(num_sinks=n, seed=1).generate()
            cpu = CpuModel(CpuModelConfig(num_modules=n, num_instructions=16, seed=1))
            oracle = ActivityOracle(cpu.tables_from_stream(4000))
            times[n] = _time(
                lambda s=sinks, o=oracle: route_gated(s, tech, oracle=o)
            )
        return times

    times = run_once(measure)
    record(
        "complexity_router_scaling",
        format_table(
            ["N", "seconds"], [[n, t] for n, t in times.items()],
            title="Exact-greedy routing time vs sink count (O(K N^2) regime)",
        ),
    )
    # Doubling N should not cost more than ~10x (quadratic would be 4x).
    assert times[80] < 10 * max(times[40], 1e-4)
    assert times[160] < 10 * max(times[80], 1e-4)
