"""Ablation A3: how the section-4.3 rules are applied.

``merge``  -- decide gates during bottom-up merging (topology
             co-optimizes with the gate count; library default);
``demote`` -- build fully gated, tie off pruned gates (embedding and
             phase delay untouched);
``remove`` -- build fully gated, physically delete pruned gates and
             re-embed (wire snaking re-balances the skew).

The readout shows why ``merge`` is the default and what the re-embed
path costs in snaking wirelength.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy

MODES = ("merge", "demote", "remove")


@pytest.mark.benchmark(group="ablation-reduction")
def test_ablation_reduction_modes(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)
    policy = GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)

    def sweep():
        return {
            mode: route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=policy,
                reduction_mode=mode,
            )
            for mode in MODES
        }

    results = run_once(sweep)
    record(
        "ablation_reduction_modes",
        format_table(
            ["mode", "W total", "W clock", "W ctrl", "wirelength", "gates", "phase delay"],
            [
                [
                    mode,
                    r.switched_cap.total,
                    r.switched_cap.clock_tree,
                    r.switched_cap.controller_tree,
                    r.wirelength,
                    r.gate_count,
                    r.phase_delay,
                ]
                for mode, r in results.items()
            ],
            title="Ablation: gate-reduction application modes (r1, scale=%.2f)" % scale,
        ),
    )

    for mode, result in results.items():
        assert result.skew <= 1e-6 * max(result.phase_delay, 1.0), mode
    # Physical removal pays snaking wire relative to tie-off demotion
    # on the identical topology.
    assert results["remove"].wirelength >= results["demote"].wirelength - 1e-6
    # The co-optimized merge mode wins (or ties) on total W here.
    best = min(r.switched_cap.total for r in results.values())
    assert results["merge"].switched_cap.total <= 1.05 * best
