"""Ablation A2: merge-cost formulations.

Compares four greedy objectives on identical sinks/workload:

* ``eq3``         -- the paper's literal Eq. 3;
* ``incremental`` -- the count-once re-attribution (library default);
* ``distance``    -- activity-blind nearest-neighbour (topology from
  geometry only, gates still placed/filtered by the same policy);
* ``distance+no-oracle`` -- the buffered baseline for reference.

The interesting readout is the split between clock-tree and
controller-tree switched capacitance: activity-aware orders spend
wirelength to keep enables cold (cheaper stars), geometric order
minimizes wire but pays for hot, toggling enables.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.controller import ControllerLayout, route_enables
from repro.core.cost import (
    incremental_switched_capacitance_cost,
    switched_capacitance_cost,
)
from repro.core.flow import _measure, route_buffered
from repro.core.gate_reduction import GateReductionPolicy
from repro.cts.dme import BottomUpMerger, nearest_neighbor_cost


@pytest.mark.benchmark(group="ablation-cost")
def test_ablation_cost_terms(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)
    policy = GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)
    layout = ControllerLayout.centralized(case.die)
    costs = {
        "eq3": switched_capacitance_cost,
        "incremental": incremental_switched_capacitance_cost,
        "distance": nearest_neighbor_cost,
    }

    def sweep():
        results = {}
        for label, cost in costs.items():
            merger = BottomUpMerger(
                case.sinks,
                tech,
                cost=cost,
                cell_policy=policy,
                oracle=case.oracle,
                controller_point=case.die.center,
                candidate_limit=CANDIDATE_LIMIT,
            )
            tree = merger.run()
            routing = route_enables(tree, layout, tech)
            results[label] = _measure(label, tree, tech, routing)
        results["buffered"] = route_buffered(
            case.sinks, tech, candidate_limit=CANDIDATE_LIMIT
        )
        return results

    results = run_once(sweep)
    record(
        "ablation_cost_terms",
        format_table(
            ["objective", "W total", "W clock", "W ctrl", "wirelength", "gates"],
            [
                [
                    label,
                    r.switched_cap.total,
                    r.switched_cap.clock_tree,
                    r.switched_cap.controller_tree,
                    r.wirelength,
                    r.gate_count,
                ]
                for label, r in results.items()
            ],
            title="Ablation: merge-cost formulations (r1, scale=%.2f)" % scale,
        ),
    )

    # All gated objectives must beat the buffered baseline here.
    for label in ("eq3", "incremental", "distance"):
        assert (
            results[label].switched_cap.total
            < results["buffered"].switched_cap.total
        ), label
    # The incremental form should not lose to the literal Eq. 3.
    assert (
        results["incremental"].switched_cap.total
        <= 1.05 * results["eq3"].switched_cap.total
    )
    # Activity-aware orders buy cheaper controllers than pure geometry.
    assert (
        results["incremental"].switched_cap.controller_tree
        <= results["distance"].switched_cap.controller_tree + 1e-9
    )
