"""Ablation A1: k-nearest candidate restriction of the greedy.

The paper's greedy considers *every* active pair (O(N^2) evaluations
per round).  Restricting each subtree's merge candidates to its k
geometric nearest neighbours is the standard practical speedup; this
bench measures what it costs in solution quality and buys in runtime.
"""

import time

import pytest

from benchmarks.conftest import DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy

LIMITS = (4, 8, 16, None)  # None = exact greedy


@pytest.mark.benchmark(group="ablation-knn")
def test_ablation_knn_candidates(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=min(scale, 0.5))
    reduction = GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)

    def sweep():
        rows = []
        for limit in LIMITS:
            start = time.perf_counter()
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=limit,
                reduction=reduction,
            )
            rows.append((limit, time.perf_counter() - start, result))
        return rows

    rows = run_once(sweep)
    record(
        "ablation_knn_candidates",
        format_table(
            ["candidates", "seconds", "W total", "wirelength", "gates"],
            [
                [
                    "exact" if limit is None else limit,
                    seconds,
                    r.switched_cap.total,
                    r.wirelength,
                    r.gate_count,
                ]
                for limit, seconds, r in rows
            ],
            title="Ablation: greedy candidate restriction (r1)",
        ),
    )

    exact = rows[-1][2]
    for limit, _, result in rows[:-1]:
        # Restricted greedies stay within 40% of the exact objective.
        assert result.switched_cap.total <= 1.4 * exact.switched_cap.total
        # And never blow up the wirelength beyond the exact greedy's.
        assert result.wirelength <= 1.2 * exact.wirelength
