"""Greedy merge vs. annealing refinement across the r1-r5 corpus.

The acceptance bar for the ``--refine`` post-pass: at a fixed move
budget and seed the refined tree must never switch more capacitance
than the greedy one (the keep-best clone makes regression impossible
by construction -- this re-checks it end to end through the flow), and
it must *strictly* improve on at least ``IMPROVED_FLOOR`` of the five
benchmarks.  Every refined network must also pass the full audit with
exact zero skew.

The move budget comes from ``REPRO_REFINE_BENCH_MOVES`` (default 200,
the CLI default) so the committed numbers can be regenerated at a
larger budget out-of-band::

    REPRO_REFINE_BENCH_MOVES=1000 \
    pytest benchmarks/test_refine.py --benchmark-only

Outputs: ``benchmarks/results/refine.txt`` and ``BENCH_refine.json``
at the repo root (CI floor-checked).
"""

import os
from pathlib import Path

import pytest

from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.check.auditor import audit_network
from repro.core.flow import route_gated
from repro.cts import RefineConfig
from repro.obs import write_bench_json

ROOT = Path(__file__).resolve().parent.parent

BENCHES = ("r1", "r2", "r3", "r4", "r5")

#: Fixed annealing budget of the committed numbers (the CLI default).
MOVES = int(os.environ.get("REPRO_REFINE_BENCH_MOVES", "200"))

SEED = 1

CANDIDATE_LIMIT = 16

#: On at least this many of the five benchmarks the refined tree must
#: switch strictly less capacitance than the greedy one.
IMPROVED_FLOOR = 3


@pytest.mark.benchmark(group="refine")
def test_refine_vs_greedy(run_once, scale, tech, record):
    """Route every benchmark greedily, refine, compare Eq. 3 totals."""

    def measure():
        rows = []
        for bench in BENCHES:
            case = load_benchmark(bench, scale=scale)
            greedy = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
            )
            refined = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                refine=RefineConfig(moves=MOVES, seed=SEED),
            )
            report = audit_network(refined.tree, routing=refined.routing)
            assert report.ok, report.summary()
            rows.append(
                {
                    "bench": bench,
                    "sinks": case.num_sinks,
                    "moves": MOVES,
                    "seed": SEED,
                    "switched_cap_greedy": greedy.switched_cap.total,
                    "switched_cap_refined": refined.switched_cap.total,
                    "improvement_pct": 100.0
                    * (1.0 - refined.switched_cap.total / greedy.switched_cap.total),
                    "gates_greedy": greedy.gate_count,
                    "gates_refined": refined.gate_count,
                    "skew_refined": refined.skew,
                    "audit_findings": len(report.findings),
                }
            )
        return rows

    rows = run_once(measure)

    improved = sum(
        1 for r in rows if r["switched_cap_refined"] < r["switched_cap_greedy"]
    )
    payload = {
        "moves": MOVES,
        "seed": SEED,
        "candidate_limit": CANDIDATE_LIMIT,
        "scale": scale,
        "improved_floor": IMPROVED_FLOOR,
        "improved": improved,
        "rows": rows,
    }
    write_bench_json(ROOT / "BENCH_refine.json", "refine", payload)

    record(
        "refine",
        format_table(
            ["bench", "sinks", "W greedy (pF)", "W refined (pF)", "impr %", "gates"],
            [
                [
                    r["bench"],
                    r["sinks"],
                    r["switched_cap_greedy"],
                    r["switched_cap_refined"],
                    r["improvement_pct"],
                    "%d -> %d" % (r["gates_greedy"], r["gates_refined"]),
                ]
                for r in rows
            ],
            title="Annealing refinement vs greedy merge (%d moves, seed %d)"
            % (MOVES, SEED),
        ),
    )

    for r in rows:
        assert r["audit_findings"] == 0
        assert r["switched_cap_refined"] <= r["switched_cap_greedy"], (
            "refinement regressed %s: %.6g -> %.6g"
            % (r["bench"], r["switched_cap_greedy"], r["switched_cap_refined"])
        )
    assert improved >= IMPROVED_FLOOR, (
        "refinement must strictly improve >= %d of %d benchmarks (got %d)"
        % (IMPROVED_FLOOR, len(BENCHES), improved)
    )
