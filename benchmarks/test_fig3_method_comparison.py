"""Fig. 3: buffered vs gated vs gate-reduced, switched cap and area.

The paper's headline comparison over r1-r5.  Expected shape (checked
as assertions): the fully gated tree is *worse* than the buffered
baseline -- the star-routed controller dominates -- while the
gate-reduced tree is *better*; both gated variants pay routing area.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import ComparisonRow, format_comparison
from repro.bench.suite import benchmark_names, load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("name", benchmark_names())
def test_fig3_method_comparison(run_once, scale, tech, record, name):
    case = load_benchmark(name, scale=scale)

    def route_all():
        return [
            route_buffered(case.sinks, tech, candidate_limit=CANDIDATE_LIMIT),
            route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
            ),
            route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=GateReductionPolicy.from_knob(DEFAULT_KNOB, tech),
            ),
        ]

    results = run_once(route_all)
    rows = [ComparisonRow.from_result(name, r) for r in results]
    record(
        "fig3_%s" % name,
        format_comparison(rows, title="Fig. 3 (%s, scale=%.2f)" % (name, scale)),
    )

    buffered, gated, reduced = results
    # Paper shape: gated-all > buffered > gate-reduced in switched cap.
    assert gated.switched_cap.total > buffered.switched_cap.total
    assert reduced.switched_cap.total < buffered.switched_cap.total
    # Area overhead stays (section 5.1's closing observation).
    assert reduced.area.total > buffered.area.total
    # Zero skew everywhere.
    for result in results:
        assert result.skew <= 1e-6 * max(result.phase_delay, 1.0)
