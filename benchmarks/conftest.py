"""Shared fixtures for the paper-regeneration benchmarks.

Every bench regenerates one table or figure of Oh & Pedram (DATE 1998)
and prints the corresponding text table; a copy is written to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's
output capturing.

Sink counts are scaled by ``REPRO_BENCH_SCALE`` (default 0.25 -- about
half a minute for the whole suite; set 1.0 for the full r1-r5 sizes,
which takes several minutes for the biggest benchmarks).  Scales below
~0.2 leave too few sinks for the statistical shape assertions (the
star-routing overhead only dominates once a benchmark has a few dozen
gates) -- use the default or larger.
"""

from pathlib import Path

import pytest

from repro.bench.suite import bench_scale
from repro.obs import RunLedger
from repro.tech import date98_technology

RESULTS_DIR = Path(__file__).parent / "results"

LEDGER_DIR = Path(__file__).parent.parent / ".repro-runs"

#: k-nearest candidate restriction used by the figure benches; the
#: knn ablation bench measures its effect against the exact greedy.
CANDIDATE_LIMIT = 16

#: Reduction knob used wherever a single "gate reduced" configuration
#: is reported (Fig. 5 shows the whole sweep).
DEFAULT_KNOB = 0.5


@pytest.fixture(scope="session")
def scale():
    return bench_scale(default=0.25)


@pytest.fixture(scope="session")
def tech():
    return date98_technology()


@pytest.fixture(scope="session")
def record():
    """Print a result table and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n", encoding="utf-8")
        print("\n" + text)

    return _record


@pytest.fixture(scope="session")
def ledger():
    """The repo-root run ledger bench RunRecords append to.

    The same ``.repro-runs/`` store the CLI's ``--ledger`` flag uses,
    so ``gated-cts obs diff/trend/check`` sees bench and CLI runs side
    by side (records are content-addressed; re-runs that measure the
    same thing collapse onto one file).
    """
    return RunLedger(LEDGER_DIR)


@pytest.fixture()
def run_once(benchmark):
    """Run a flow exactly once under pytest-benchmark timing."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
