"""Ablation A4: spatial/activity correlation of the placement.

Real designs place the modules of one functional unit together, so
activity clusters are also placement clusters -- exactly the situation
gated clock routing exploits.  This bench sweeps the placement spread
from tight blobs to fully uniform (activity-blind) placement and
reports how much of the gated router's advantage survives.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy

SPREADS = (0.04, 0.12, 0.3, None)  # None = uniform placement


@pytest.mark.benchmark(group="ablation-placement")
def test_ablation_placement_correlation(run_once, scale, tech, record):
    def sweep():
        rows = []
        for spread in SPREADS:
            case = load_benchmark("r1", scale=scale, placement_spread=spread)
            buffered = route_buffered(
                case.sinks, tech, candidate_limit=CANDIDATE_LIMIT
            )
            reduced = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=GateReductionPolicy.from_knob(DEFAULT_KNOB, tech),
            )
            rows.append(
                (
                    spread,
                    buffered.switched_cap.total,
                    reduced.switched_cap.total,
                    reduced.switched_cap.total / buffered.switched_cap.total,
                )
            )
        return rows

    rows = run_once(sweep)
    record(
        "ablation_placement_correlation",
        format_table(
            ["spread", "W buffered", "W gate-red", "ratio"],
            [
                ["uniform" if s is None else s, wb, wr, ratio]
                for s, wb, wr, ratio in rows
            ],
            title="Ablation: placement correlation (r1, scale=%.2f)" % scale,
        ),
    )

    # Tight functional placement gives the gated router its largest
    # advantage; the trend may be noisy in the middle but the tightest
    # placement must beat the uniform one.
    ratios = [ratio for *_, ratio in rows]
    assert ratios[0] < ratios[-1]
    # The gated router still works on tight placements.
    assert ratios[0] < 0.9
