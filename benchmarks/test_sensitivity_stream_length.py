"""Sensitivity S1: how long a trace do the statistics need?

The paper uses traces of tens of thousands of cycles and argues the
brute-force alternative gets "very expensive" because rare
instructions need long streams.  This bench quantifies the trade: the
routed design's W is evaluated under a long (100k-cycle) reference
trace while the tables that *drove the routing* come from
progressively shorter ones.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.activity.probability import ActivityOracle
from repro.activity.tables import ActivityTables
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.sim import ClockNetworkSimulator

LENGTHS = (100, 1000, 10000)
REFERENCE_CYCLES = 100000


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_stream_length(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)
    reference = case.cpu.stream(REFERENCE_CYCLES, seed=31337)

    def sweep():
        rows = []
        for length in LENGTHS:
            oracle = ActivityOracle(
                ActivityTables.from_stream(case.cpu.isa, case.cpu.stream(length))
            )
            result = route_gated(
                case.sinks,
                tech,
                oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=GateReductionPolicy.from_knob(DEFAULT_KNOB, tech),
            )
            sim = ClockNetworkSimulator(
                result.tree, tech, case.cpu.isa, routing=result.routing
            )
            replayed = sim.run(reference).mean_total
            rows.append(
                [
                    length,
                    result.switched_cap.total,
                    replayed,
                    abs(replayed - result.switched_cap.total)
                    / max(replayed, 1e-12),
                ]
            )
        return rows

    rows = run_once(sweep)
    record(
        "sensitivity_stream_length",
        format_table(
            [
                "training cycles",
                "W per its own tables",
                "W replayed on 100k-cycle reference",
                "model error",
            ],
            rows,
            title="Sensitivity: training-trace length (r1, scale=%.2f)" % scale,
        ),
    )

    errors = [row[3] for row in rows]
    # Longer training traces give a more faithful model; the paper's
    # 10k-cycle regime must be within a few percent of ground truth.
    assert errors[-1] < 0.05
    assert errors[-1] <= errors[0] + 1e-9