"""Plan-cache / pruning / index effectiveness of the DME merger.

The greedy merger's work is dominated by ``plan()`` evaluations (one
zero-skew split plus oracle probes each).  The caching layer -- plan
memoization per active pair, cost lower-bound pruning, and the grid
candidate index -- must cut those evaluations by at least 3x on a
128-sink instance *without changing a single greedy decision*: the
merge traces are asserted byte-identical before any counter is read.

Outputs:

* ``benchmarks/results/complexity_dme_cache.txt`` -- MergerStats rows
  per configuration (via :func:`repro.analysis.report.format_merger_stats`);
* ``BENCH_dme_scaling.json`` at the repo root -- wall-clock and plan
  counts for cached vs uncached runs over several sizes.
"""

import time
from pathlib import Path

import pytest

from repro.analysis.report import format_merger_stats, format_table
from repro.obs import write_bench_json
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.sinks import SinkGenerator
from repro.core.cost import incremental_switched_capacitance_cost
from repro.cts import BottomUpMerger
from repro.cts.dme import GateEveryEdgePolicy

ROOT = Path(__file__).resolve().parent.parent
SIZES = (64, 128, 256)

#: Flags reproducing the seed engine: every probe replans from scratch.
UNCACHED = dict(plan_cache=False, cost_pruning=False, spatial_index=False)


def _instance(n):
    gen = SinkGenerator(num_sinks=n, seed=1)
    cpu = CpuModel(CpuModelConfig(num_modules=n, num_instructions=16, seed=1))
    oracle = cpu.oracle(4000)
    return gen.generate(), oracle, gen.die()


def _merge(sinks, oracle, die, tech, candidate_limit=None, **flags):
    merger = BottomUpMerger(
        sinks,
        tech,
        cost=incremental_switched_capacitance_cost,
        cell_policy=GateEveryEdgePolicy(),
        oracle=oracle,
        controller_point=die.center,
        candidate_limit=candidate_limit,
        **flags,
    )
    start = time.perf_counter()
    tree = merger.run()
    elapsed = time.perf_counter() - start
    return merger, tree, elapsed


@pytest.mark.benchmark(group="complexity")
def test_cache_cuts_plan_evaluations_3x(run_once, tech, record):
    """The ISSUE acceptance bar: >= 3x fewer ``plan()`` calls at N=128."""
    sinks, oracle, die = _instance(128)

    def measure():
        out = {}
        for limit in (None, 16):
            tag = "exact" if limit is None else "knn%d" % limit
            out["%s/uncached" % tag] = _merge(
                sinks, oracle, die, tech, candidate_limit=limit, **UNCACHED
            )
            out["%s/cached" % tag] = _merge(
                sinks, oracle, die, tech, candidate_limit=limit
            )
        return out

    runs = run_once(measure)

    for limit in (None, 16):
        tag = "exact" if limit is None else "knn%d" % limit
        plain_m, plain_tree, _ = runs["%s/uncached" % tag]
        fast_m, fast_tree, _ = runs["%s/cached" % tag]
        # Accelerations must be invisible: identical traces and trees.
        assert fast_m.merge_trace == plain_m.merge_trace
        assert fast_tree.total_wirelength() == plain_tree.total_wirelength()
        assert (
            plain_m.stats.plans_computed >= 3 * fast_m.stats.plans_computed
        ), "plan cache + pruning must cut plan() evaluations by >= 3x"

    record(
        "complexity_dme_cache",
        format_merger_stats(
            {name: m.stats for name, (m, _, _) in runs.items()},
            title="DME merger work at N=128, cached vs uncached",
        ),
    )


@pytest.mark.benchmark(group="complexity")
def test_scaling_report(run_once, tech, record):
    """Wall-clock and plan-count scaling, persisted to the repo root."""

    def measure():
        rows = []
        for n in SIZES:
            sinks, oracle, die = _instance(n)
            plain_m, plain_tree, plain_t = _merge(
                sinks, oracle, die, tech, **UNCACHED
            )
            fast_m, fast_tree, fast_t = _merge(sinks, oracle, die, tech)
            assert fast_m.merge_trace == plain_m.merge_trace
            assert fast_tree.total_wirelength() == plain_tree.total_wirelength()
            rows.append(
                {
                    "sinks": n,
                    "plans_uncached": plain_m.stats.plans_computed,
                    "plans_cached": fast_m.stats.plans_computed,
                    "plan_reduction": plain_m.stats.plans_computed
                    / max(1, fast_m.stats.plans_computed),
                    "seconds_uncached": plain_t,
                    "seconds_cached": fast_t,
                    "speedup": plain_t / max(fast_t, 1e-9),
                    "cache_hits": fast_m.stats.plan_cache_hits,
                    "pruned_probes": fast_m.stats.pruned_probes,
                }
            )
        return rows

    rows = run_once(measure)

    payload = {
        "cost": "incremental_switched_capacitance_cost",
        "candidate_limit": None,
        "sizes": list(SIZES),
        "rows": rows,
    }
    write_bench_json(
        ROOT / "BENCH_dme_scaling.json", "dme_plan_cache_scaling", payload
    )

    record(
        "complexity_dme_cache_scaling",
        format_table(
            [
                "N",
                "plans (seed)",
                "plans (cached)",
                "reduction",
                "s (seed)",
                "s (cached)",
                "speedup",
            ],
            [
                [
                    r["sinks"],
                    r["plans_uncached"],
                    r["plans_cached"],
                    r["plan_reduction"],
                    r["seconds_uncached"],
                    r["seconds_cached"],
                    r["speedup"],
                ]
                for r in rows
            ],
            title="DME plan-cache scaling (exact greedy, gated tree)",
        ),
    )
    for r in rows:
        assert r["plan_reduction"] >= 3.0
