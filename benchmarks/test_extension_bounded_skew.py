"""Extension E1: skew budget vs wirelength and switched capacitance.

The paper routes with exact zero skew.  Real flows allow a small skew
bound; the deferred-merge machinery generalizes directly (see
:mod:`repro.cts.bounded`).  This bench sweeps the budget and reports
how much wire and switched capacitance it buys back -- mostly by
avoiding the snaking that balances gated/ungated sibling merges.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT, DEFAULT_KNOB
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy


@pytest.mark.benchmark(group="ext-bounded-skew")
def test_extension_bounded_skew(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)
    reduction = GateReductionPolicy.from_knob(DEFAULT_KNOB, tech)

    # Budgets as fractions of the zero-skew phase delay.
    def sweep():
        zero = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=CANDIDATE_LIMIT,
            reduction=reduction,
        )
        rows = [(0.0, zero)]
        for fraction in (0.02, 0.05, 0.15):
            bound = fraction * zero.phase_delay
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=reduction,
                skew_bound=bound,
            )
            rows.append((bound, result))
        return rows

    rows = run_once(sweep)
    zero = rows[0][1]
    record(
        "extension_bounded_skew",
        format_table(
            ["bound", "skew", "wirelength", "wl vs zero-skew", "W total"],
            [
                [
                    bound,
                    r.skew,
                    r.wirelength,
                    r.wirelength / zero.wirelength,
                    r.switched_cap.total,
                ]
                for bound, r in rows
            ],
            title="Extension: skew budget vs wire and W (r1, scale=%.2f)" % scale,
        ),
    )

    for bound, result in rows:
        assert result.skew <= bound * (1 + 1e-6) + 1e-9
    # A non-trivial budget must not cost wire, and the largest budget
    # should show real savings.
    wl = [r.wirelength for _, r in rows]
    assert wl[-1] <= wl[0] * 1.001
    assert wl[-1] < wl[0]
