"""Per-phase memory attribution of the gated routing flow.

Companion to the phase wall-clock bench: routes each benchmark with
the tracemalloc sampler attached, so every phase row carries its peak
heap growth and net allocated blocks alongside the timing.  The rows
(plus the process peak RSS) persist to ``BENCH_memory_profile.json``
at the repo root so memory regressions are attributable to phases the
same way time regressions are.

Two assertions make this a smoke gate rather than a report:

* the sampler must actually attribute memory -- the dominant phase
  (``topology.gated``) has to show a nonzero peak on every benchmark;
* process peak RSS stays under :data:`RSS_CEILING_BYTES`; CI re-checks
  the persisted value so a memory blowup fails the build even if the
  bench itself survived it.

Outputs:

* ``benchmarks/results/memory_profile.txt`` -- phase tables with the
  memory columns (via :func:`repro.analysis.report.format_phase_times`);
* ``BENCH_memory_profile.json`` -- per-phase peaks + peak RSS.
"""

from pathlib import Path

import pytest

from repro.analysis.report import format_phase_times
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.obs import (
    DME_DETAIL_SPANS,
    MemorySampler,
    RunLedger,
    Tracer,
    load_json,
    peak_rss_bytes,
    phase_profile,
    record_from_trace,
    set_tracer,
    write_bench_json,
    write_json,
)
from repro.obs.jsonio import round_floats

ROOT = Path(__file__).resolve().parent.parent

#: Same benchmark set as the wall-clock profile so the two artifacts
#: stay row-for-row comparable.
BENCHES = ("r1", "r2", "r3", "r4", "r5")

#: Hard cap on process peak RSS after routing all five benchmarks at
#: the CI scale (0.25).  The suite currently peaks well under 400 MiB;
#: 1.5 GiB flags a genuine blowup (leaked trees, unbounded caches)
#: without tripping on allocator noise across platforms.
RSS_CEILING_BYTES = 1_536 * 1024 * 1024


@pytest.mark.benchmark(group="observability")
def test_memory_profile(run_once, tech, scale, record):
    """Route with the memory sampler on; persist per-phase peaks."""

    def measure():
        out = {}
        for name in BENCHES:
            case = load_benchmark(name, scale=scale)
            tracer = Tracer(enabled=True)
            sampler = MemorySampler()
            tracer.set_sampler(sampler)
            sampler.start()
            previous = set_tracer(tracer)
            try:
                route_gated(
                    case.sinks,
                    tech,
                    case.oracle,
                    die=case.die,
                    candidate_limit=16,
                )
            finally:
                set_tracer(previous)
                sampler.stop()
            out[name] = (len(case.sinks), tracer.spans)
        return out

    traced = run_once(measure)
    rss_peak = peak_rss_bytes()

    rows = []
    tables = []
    for name, (num_sinks, spans) in traced.items():
        profile = phase_profile(
            spans,
            root_name="flow.route_gated",
            detail_names=DME_DETAIL_SPANS,
        )
        assert profile.has_memory, "sampler attached but no memory attrs"
        peaks = {
            row.name: row.mem_peak_bytes
            for row in profile.rows
            if row.mem_peak_bytes is not None
        }
        assert peaks.get("topology.gated", 0) > 0, (
            "the dominant phase of %s shows no heap growth; the "
            "sampler is not attributing memory" % name
        )
        rows.append(
            {
                "benchmark": name,
                "sinks": num_sinks,
                **profile.as_dict(),
            }
        )
        tables.append(
            format_phase_times(
                profile,
                title="Memory profile: %s (N=%d)" % (name, num_sinks),
            )
        )

    assert rss_peak < RSS_CEILING_BYTES, (
        "peak RSS %.1f MiB exceeds the %.0f MiB ceiling"
        % (rss_peak / 2**20, RSS_CEILING_BYTES / 2**20)
    )

    payload = {
        "candidate_limit": 16,
        "rss_peak_bytes": rss_peak,
        "rss_ceiling_bytes": RSS_CEILING_BYTES,
        "rows": rows,
    }
    write_bench_json(
        ROOT / "BENCH_memory_profile.json", "memory_profile", payload
    )
    record("memory_profile", "\n\n".join(tables))


#: Generous in-bench ceiling for the traced-vs-ledgered root-span
#: ratio: the true overhead is ~0 by construction (see below), so the
#: margin only absorbs scheduler noise on a ~50 ms span.
OVERHEAD_CEILING = 1.05

OVERHEAD_ROUNDS = 5


@pytest.mark.benchmark(group="observability")
def test_ledger_overhead(run_once, tech, scale, tmp_path):
    """Ledger recording must not tax the flow it records.

    A :class:`~repro.obs.ledger.RunRecord` is assembled *after* the
    ``flow.route_gated`` root span closed, and the memory hooks on
    ``Span.__enter__``/``__exit__`` collapse to one attribute check
    when no sampler is attached -- so the root span of a ledgered run
    must time the same as a plainly traced one.  Measured as a
    min-of-N ratio on r1 and persisted into the memory-profile
    artifact (the acceptance bar is <= 2%; the asserted ceiling adds
    noise margin).
    """
    case = load_benchmark("r1", scale=scale)
    ledger = RunLedger(tmp_path / "ledger")

    def _root_ns(with_ledger):
        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=16,
            )
        finally:
            set_tracer(previous)
        (root,) = [s for s in tracer.spans if s.name == "flow.route_gated"]
        if with_ledger:
            ledger.save(
                record_from_trace(
                    kind="bench",
                    label="overhead:r1",
                    config={"benchmark": "r1", "candidate_limit": 16},
                    tracer=tracer,
                    pins=result.pins(),
                    root_name="flow.route_gated",
                )
            )
        return root.duration_ns

    def measure():
        traced = min(_root_ns(False) for _ in range(OVERHEAD_ROUNDS))
        ledgered = min(_root_ns(True) for _ in range(OVERHEAD_ROUNDS))
        return traced, ledgered

    traced_ns, ledgered_ns = run_once(measure)
    ratio = ledgered_ns / max(traced_ns, 1)
    assert ratio <= OVERHEAD_CEILING, (
        "ledger recording inflated the r1 root span %.1f%% (ceiling %.0f%%)"
        % (100 * (ratio - 1), 100 * (OVERHEAD_CEILING - 1))
    )

    # Extend the memory-profile artifact written by test_memory_profile
    # (definition order runs it first; a standalone run starts fresh).
    path = ROOT / "BENCH_memory_profile.json"
    try:
        payload = load_json(path)
    except OSError:
        payload = {}
    payload["ledger_overhead"] = {
        "benchmark": "r1",
        "rounds": OVERHEAD_ROUNDS,
        "root_ns_traced": traced_ns,
        "root_ns_ledgered": ledgered_ns,
        "ratio": ratio,
        "ceiling": OVERHEAD_CEILING,
    }
    write_json(path, round_floats(payload))
