"""Extension E2: gate sizing instead of wire snaking.

The paper remarks that the masking gates "can be sized to adjust the
phase delay" without evaluating it.  This bench quantifies the effect:
on reduced-gate trees (where gated/ungated sibling merges are
unbalanced and would otherwise snake), letting the router choose cell
sizes reduces the routed wirelength and with it the raw clock-tree
capacitance.
"""

import pytest

from benchmarks.conftest import CANDIDATE_LIMIT
from repro.analysis.report import format_table
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.gate_sizing import GateSizingPolicy

KNOBS = (0.3, 0.6)


@pytest.mark.benchmark(group="ext-gate-sizing")
def test_extension_gate_sizing(run_once, scale, tech, record):
    case = load_benchmark("r1", scale=scale)

    def sweep():
        rows = []
        for knob in KNOBS:
            reduction = GateReductionPolicy.from_knob(knob, tech)
            plain = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=reduction,
            )
            sized = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=CANDIDATE_LIMIT,
                reduction=reduction,
                gate_sizing=GateSizingPolicy(),
            )
            rows.append((knob, plain, sized))
        return rows

    rows = run_once(sweep)
    record(
        "extension_gate_sizing",
        format_table(
            [
                "knob",
                "wl (fixed size)",
                "wl (sized)",
                "saved %",
                "W (fixed)",
                "W (sized)",
                "cell area (fixed)",
                "cell area (sized)",
            ],
            [
                [
                    knob,
                    plain.wirelength,
                    sized.wirelength,
                    100 * (1 - sized.wirelength / plain.wirelength),
                    plain.switched_cap.total,
                    sized.switched_cap.total,
                    plain.area.cells,
                    sized.area.cells,
                ]
                for knob, plain, sized in rows
            ],
            title="Extension: gate sizing vs snaking (r1, scale=%.2f)" % scale,
        ),
    )

    for knob, plain, sized in rows:
        assert sized.skew <= 1e-6 * max(sized.phase_delay, 1.0)
        # Sizing may only shorten the tree.
        assert sized.wirelength <= plain.wirelength * (1 + 1e-9)
