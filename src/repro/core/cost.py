"""Minimum-switched-capacitance merge costs.

When subtrees ``v_i`` and ``v_j`` are merged, the switched capacitance
added to the design per paper Eq. 3 is

* the two new clock edges:  ``(c e_i + C_i) P(EN_i)`` each, scaled by
  the clock activity factor, and
* the two new enable wires: ``(c |EN_i| + C_g) P_tr(EN_i)`` each,

with the enable wirelength estimated -- exactly as in the paper -- as
the distance from the controller point to the *middle of the child's
merging segment* (the Steiner point's final location is not known
during the bottom-up phase).

Two cost functions are provided:

``switched_capacitance_cost``
    The literal Eq. 3.
``incremental_switched_capacitance_cost``
    A count-once re-attribution of the same total (see its docstring);
    it avoids a greedy pathology of the literal form and is the
    default objective of :func:`repro.core.gated_routing.build_gated_tree`.
    The cost-term ablation bench compares the two.

Extensions beyond the literal Eq. 3, used only when the corresponding
feature is active:

* an edge the cell policy left ungated contributes its clock term
  weighted by the merged node's enable probability (its switching will
  be governed by the nearest gated ancestor; the merged node is the
  best bottom-up estimate) and no controller term;
* a buffered (non-maskable cell) edge contributes with weight 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cts.dme import BottomUpMerger, CellDecision, MergePlan
from repro.cts.topology import ClockNode
from repro.quantity import LengthUm, Probability, SwitchedCap

try:  # NumPy backs the optional batched bound; scalar costs work without it.
    import numpy as np

    from repro.cts import kernels as _kernels
except ImportError:  # pragma: no cover - NumPy present in CI images
    np = None
    _kernels = None


def _edge_weight(decision: CellDecision, child: ClockNode, plan: MergePlan) -> Probability:
    """Switching probability of the new clock edge above ``child``."""
    if decision.maskable:
        return child.enable_probability
    if decision.cell is not None:
        return 1.0  # buffer: never masked
    if plan.merged_probability is not None:
        return plan.merged_probability
    return 1.0


def _decision_weight(
    decision: CellDecision, child: ClockNode, merged_probability: Optional[Probability]
) -> Probability:
    """:func:`_edge_weight` without a plan (for cost lower bounds)."""
    if decision.maskable:
        return child.enable_probability
    if decision.cell is not None:
        return 1.0
    if merged_probability is not None:
        return merged_probability
    return 1.0


def _uniform_screen_ready(merger: BottomUpMerger) -> bool:
    """Can the batch hooks below cover *every* candidate lane exactly?

    The ``batch_cost_ready`` protocol: the merger calls this once at
    construction before enabling its exact kernel screen.  The hooks
    need a constant cell decision (so no per-pair ``decide`` calls) and
    -- when the cost reads the merged enable probability -- an oracle
    whose activation signatures fit the ``int64`` signature column
    (ISAs up to 63 instructions; wider ones stay on the scalar path).
    """
    if _kernels is None or merger.node_arrays is None:
        return False
    if merger.cell_policy.uniform_decision(merger.tech) is None:
        return False
    if merger._needs_merged_probability and merger.oracle is not None:
        return merger._signatures_ok
    return True


def _batch_merged_probability(merger, nid, others):
    """Batched ``plan.merged_probability`` per candidate lane.

    ``None`` when the plan would not compute one (cost/policy does not
    need it, or there is no oracle) -- matching :meth:`plan` exactly.
    Merged-pair signatures are one ``np.bitwise_or`` over the signature
    column; the oracle answers them through the same signature memo the
    scalar ``signal_probability`` routes through, so each lane is
    bit-identical to the scalar lookup.
    """
    if not merger._needs_merged_probability or merger.oracle is None:
        return None
    sigs = merger.node_arrays.sig
    return merger.oracle.batch_probabilities(np.bitwise_or(sigs[nid], sigs[others]))


def _uniform_pair_weights(uniform, merger, na, others, merged_p):
    """Batched :func:`_edge_weight` pair under a uniform decision.

    Returns ``(w_a, w_b)`` -- scalars or per-lane arrays -- mirroring
    the scalar weight rules: maskable edges switch with the child's own
    enable probability, buffered edges always, ungated wires with the
    merged probability when one is computed.
    """
    if uniform.maskable:
        return na.enable_probability, merger.node_arrays.enable_p[others]
    if uniform.cell is not None:
        return 1.0, 1.0
    if merged_p is not None:
        return merged_p, merged_p
    return 1.0, 1.0


def _bound_decisions(
    merger: BottomUpMerger, na: ClockNode, nb: ClockNode, distance: LengthUm
) -> Tuple[Optional[Probability], CellDecision, CellDecision]:
    """The merged probability and cell decisions :meth:`plan` would take.

    Everything here is recomputed exactly as the full plan does (the
    cell policy is pure and the oracle memoizes per mask), so a lower
    bound built from these values differs from the true cost only in
    the wire-length split -- which the bound handles with
    ``e_a + e_b >= distance``.
    """
    merged_probability = merger.merged_probability(na, nb)
    decision_a = merger.cell_policy.decide(na, merged_probability, distance, merger.tech)
    decision_b = merger.cell_policy.decide(nb, merged_probability, distance, merger.tech)
    return merged_probability, decision_a, decision_b


def switched_capacitance_cost(plan: MergePlan, merger: BottomUpMerger) -> SwitchedCap:
    """Paper Eq. 3: switched capacitance added by this merge."""
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point

    total = 0.0
    for child_id, decision, edge_len in (
        (plan.a_id, plan.decision_a, plan.split.length_a),
        (plan.b_id, plan.decision_b, plan.split.length_b),
    ):
        child = merger.tree.node(child_id)
        clock_cap = c * edge_len + child.subtree_cap
        total += a_clk * clock_cap * _edge_weight(decision, child, plan)
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    return total


def _eq3_lower_bound(
    merger: BottomUpMerger, na: ClockNode, nb: ClockNode, distance: LengthUm
) -> SwitchedCap:
    """Cheap lower bound of :func:`switched_capacitance_cost`.

    Exact except for the wire split: the subtree-capacitance, gate-pin,
    and enable-star terms depend only on the two children, and the new
    wire contributes at least ``distance`` length (splits cover the
    merging distance; snaking only adds), charged at the smaller of the
    two edge weights.
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    merged_p, decision_a, decision_b = _bound_decisions(merger, na, nb, distance)

    total = 0.0
    weights = []
    for child, decision in ((na, decision_a), (nb, decision_b)):
        weight = _decision_weight(decision, child, merged_p)
        weights.append(weight)
        total += a_clk * child.subtree_cap * weight
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    total += a_clk * c * distance * min(weights)
    return total


def _eq3_batch_lower_bound(merger, nid, others, distance):
    """Batched :func:`_eq3_lower_bound` over a candidate id array.

    Mirrors the scalar bound's float chain term for term (same
    association order, ``np.minimum`` for the rounding-free ``min``),
    so every lane is bit-identical to the scalar call -- the pruning
    decisions, and therefore every downstream greedy choice, cannot
    differ between the vectorized and scalar paths.

    Returns ``None`` (declining the batch, which falls back to the
    scalar scan) whenever a per-pair quantity enters the bound: a
    cell policy without a uniform decision, or a cost/policy needing
    the merged enable probability (pair-dependent oracle lookups).
    """
    if _kernels is None or merger.node_arrays is None:
        return None
    if merger._needs_merged_probability:
        return None
    uniform = merger.cell_policy.uniform_decision(merger.tech)
    if uniform is None:
        return None
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    na = merger.tree.node(nid)
    arrays = merger.node_arrays
    maskable = uniform.maskable

    w_a = na.enable_probability if maskable else 1.0
    total = a_clk * na.subtree_cap * w_a
    if maskable:
        star_a = cp.manhattan_to(na.merging_segment.center())
        total = total + (c * star_a + gate_in) * na.enable_transition_probability
    w_b = arrays.enable_p[others] if maskable else 1.0
    total = total + a_clk * arrays.cap[others] * w_b
    if maskable:
        star_b = _kernels.batch_star_length(
            cp.x,
            cp.y,
            arrays.ulo[others],
            arrays.uhi[others],
            arrays.vlo[others],
            arrays.vhi[others],
        )
        total = total + (c * star_b + gate_in) * arrays.enable_ptr[others]
    return total + a_clk * c * distance * np.minimum(w_a, w_b)


def _batch_sides(merger, nid, others, uniform, merged_p, swapped):
    """Per-side quantities for the batched costs, in plan-side order.

    Returns ``((cap, weight, star, ptr), ...)`` for the plan's a-side
    then b-side.  ``swapped=False`` evaluates pairs ``(nid, other)``
    (``nid`` is the a-side); ``swapped=True`` evaluates the canonical
    pairs ``(other, nid)`` the initialization scan needs when
    ``other < nid`` -- the array-backed quantities move to the a-side,
    and NumPy broadcasting keeps every per-lane float chain identical
    to the scalar orientation's.
    """
    tech = merger.tech
    cp = merger.controller_point
    arrays = merger.node_arrays
    na = merger.tree.node(nid)
    w_nid, w_oth = _uniform_pair_weights(uniform, merger, na, others, merged_p)
    star_nid = ptr_nid = star_oth = ptr_oth = None
    if uniform.maskable:
        star_nid = cp.manhattan_to(na.merging_segment.center())
        ptr_nid = na.enable_transition_probability
        star_oth = _kernels.batch_star_length(
            cp.x,
            cp.y,
            arrays.ulo[others],
            arrays.uhi[others],
            arrays.vlo[others],
            arrays.vhi[others],
        )
        ptr_oth = arrays.enable_ptr[others]
    side_nid = (na.subtree_cap, w_nid, star_nid, ptr_nid)
    side_oth = (arrays.cap[others], w_oth, star_oth, ptr_oth)
    if swapped:
        return side_oth, side_nid
    return side_nid, side_oth


def _eq3_batch_cost(merger, nid, others, distance, split, swapped=False):
    """Exact batched Eq. 3 costs over a candidate id array.

    Called only under the merger's exact kernel screen, whose
    ``batch_cost_ready`` gate (:func:`_uniform_screen_ready`) guarantees
    a uniform cell decision; ``split`` carries the cell-aware batched
    zero-skew splits (computed in the same orientation as ``swapped``,
    see :func:`_batch_sides`).  Mirrors
    :func:`switched_capacitance_cost`'s accumulation order term for
    term, so in-range lanes are bit-identical to the scalar
    ``cost(plan(...))`` of the oriented pair; snaking lanes are
    re-planned scalar by the merger (``kernel_scalar_fallbacks``).
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    uniform = merger.cell_policy.uniform_decision(tech)
    merged_p = _batch_merged_probability(merger, nid, others)
    sides = _batch_sides(merger, nid, others, uniform, merged_p, swapped)

    total = None
    for length, (cap, weight, star, ptr) in zip(
        (split.length_a, split.length_b), sides
    ):
        clock_cap = c * length + cap
        term = a_clk * clock_cap * weight
        total = term if total is None else total + term
        if uniform.maskable:
            total = total + (c * star + gate_in) * ptr
    return total


switched_capacitance_cost.lower_bound = _eq3_lower_bound
switched_capacitance_cost.batch_lower_bound = _eq3_batch_lower_bound
switched_capacitance_cost.batch_cost = _eq3_batch_cost
switched_capacitance_cost.batch_cost_needs_split = True
switched_capacitance_cost.batch_cost_orientable = True
switched_capacitance_cost.batch_cost_ready = _uniform_screen_ready


def incremental_switched_capacitance_cost(
    plan: MergePlan, merger: BottomUpMerger
) -> SwitchedCap:
    """Count-once variant of Eq. 3 (the default router objective).

    Summed over a whole construction this equals the final
    ``W(T) + W(S)`` up to per-sink constants -- exactly like Eq. 3 --
    but each capacitance is attributed to the merge whose *choice*
    controls it:

    * the two new edge wires, weighted by their enables,
    * the new cells' input pins, which hang at the merge node and
      switch with the merged enable's probability,
    * the two new enable star edges.

    The difference from the literal Eq. 3 is the child subtree
    capacitance ``C_i``: it consists of pins committed by the child's
    *own* creation (where this cost already charged them) and is
    identical for every candidate partner.  Including it per Eq. 3
    biases the greedy toward pairs of "cheap" nodes regardless of the
    wirelength the pairing commits, which inflates the routed tree.

    The merged enable probability -- a per-pair oracle lookup over
    module-mask unions -- is batched through activation signatures
    (:meth:`~repro.activity.probability.ActivityOracle.batch_probabilities`):
    signatures of mask unions are bitwise ORs of the per-node
    signatures, so whole candidate sets resolve their merged
    probabilities in one vectorized call through the same memo the
    scalar path uses.  ``batch_cost`` / ``batch_lower_bound`` below
    build on that; they engage only when :func:`_uniform_screen_ready`
    holds (uniform cell decision, signatures fit ``int64``).
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    merged_p = plan.merged_probability if plan.merged_probability is not None else 1.0

    total = 0.0
    for child_id, decision, edge_len in (
        (plan.a_id, plan.decision_a, plan.split.length_a),
        (plan.b_id, plan.decision_b, plan.split.length_b),
    ):
        child = merger.tree.node(child_id)
        total += a_clk * c * edge_len * _edge_weight(decision, child, plan)
        if decision.cell is not None:
            pin_weight = merged_p if decision.maskable else 1.0
            total += a_clk * decision.cell.input_cap * pin_weight
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    return total


incremental_switched_capacitance_cost.needs_merged_probability = True


def _incremental_lower_bound(
    merger: BottomUpMerger, na: ClockNode, nb: ClockNode, distance: LengthUm
) -> SwitchedCap:
    """Cheap lower bound of :func:`incremental_switched_capacitance_cost`.

    The pin and enable-star terms are computed exactly (they need no
    split); the two wire terms are bounded below by the merging
    distance at the smaller edge weight.
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    merged_p, decision_a, decision_b = _bound_decisions(merger, na, nb, distance)
    pin_p = merged_p if merged_p is not None else 1.0

    total = 0.0
    weights = []
    for child, decision in ((na, decision_a), (nb, decision_b)):
        weights.append(_decision_weight(decision, child, merged_p))
        if decision.cell is not None:
            pin_weight = pin_p if decision.maskable else 1.0
            total += a_clk * decision.cell.input_cap * pin_weight
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    total += a_clk * c * distance * min(weights)
    return total


def _incremental_batch_cost(merger, nid, others, distance, split, swapped=False):
    """Exact batched count-once costs over a candidate id array.

    The batched mirror of
    :func:`incremental_switched_capacitance_cost`, engaged by the
    merger's exact kernel screen when :func:`_uniform_screen_ready`
    holds.  Accumulation order matches the scalar loop (a-wire, a-pin,
    a-star, b-wire, b-pin, b-star) for the pair orientation selected by
    ``swapped`` (see :func:`_batch_sides`), so in-range lanes are
    bit-identical to the scalar ``cost(plan(...))``.
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    uniform = merger.cell_policy.uniform_decision(tech)
    merged_p = _batch_merged_probability(merger, nid, others)
    pin_p = merged_p if merged_p is not None else 1.0
    sides = _batch_sides(merger, nid, others, uniform, merged_p, swapped)

    total = None
    for length, (cap, weight, star, ptr) in zip(
        (split.length_a, split.length_b), sides
    ):
        term = a_clk * c * length * weight
        total = term if total is None else total + term
        if uniform.cell is not None:
            pin_weight = pin_p if uniform.maskable else 1.0
            total = total + a_clk * uniform.cell.input_cap * pin_weight
        if uniform.maskable:
            total = total + (c * star + gate_in) * ptr
    return total


def _incremental_batch_lower_bound(merger, nid, others, distance):
    """Batched :func:`_incremental_lower_bound` over a candidate array.

    Mirrors the scalar bound's float chain term for term (same
    association order, ``np.minimum`` for the rounding-free ``min``)
    with the merged probabilities batched through activation
    signatures, so every lane is bit-identical to the scalar call and
    pruning decisions cannot differ between the paths.  Returns
    ``None`` (falling back to the scalar scan) when the policy has no
    uniform decision or signatures do not apply.
    """
    if not _uniform_screen_ready(merger):
        return None
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    uniform = merger.cell_policy.uniform_decision(tech)
    arrays = merger.node_arrays
    na = merger.tree.node(nid)
    merged_p = _batch_merged_probability(merger, nid, others)
    pin_p = merged_p if merged_p is not None else 1.0
    w_a, w_b = _uniform_pair_weights(uniform, merger, na, others, merged_p)

    total = None
    if uniform.cell is not None:
        pin_weight = pin_p if uniform.maskable else 1.0
        total = a_clk * uniform.cell.input_cap * pin_weight
    if uniform.maskable:
        star_a = cp.manhattan_to(na.merging_segment.center())
        total = total + (c * star_a + gate_in) * na.enable_transition_probability
    if uniform.cell is not None:
        pin_weight = pin_p if uniform.maskable else 1.0
        term = a_clk * uniform.cell.input_cap * pin_weight
        total = term if total is None else total + term
    if uniform.maskable:
        star_b = _kernels.batch_star_length(
            cp.x,
            cp.y,
            arrays.ulo[others],
            arrays.uhi[others],
            arrays.vlo[others],
            arrays.vhi[others],
        )
        total = total + (c * star_b + gate_in) * arrays.enable_ptr[others]
    term = a_clk * c * distance * np.minimum(w_a, w_b)
    return term if total is None else total + term


incremental_switched_capacitance_cost.lower_bound = _incremental_lower_bound
incremental_switched_capacitance_cost.batch_lower_bound = (
    _incremental_batch_lower_bound
)
incremental_switched_capacitance_cost.batch_cost = _incremental_batch_cost
incremental_switched_capacitance_cost.batch_cost_needs_split = True
incremental_switched_capacitance_cost.batch_cost_orientable = True
incremental_switched_capacitance_cost.batch_cost_ready = _uniform_screen_ready
