"""Minimum-switched-capacitance merge costs.

When subtrees ``v_i`` and ``v_j`` are merged, the switched capacitance
added to the design per paper Eq. 3 is

* the two new clock edges:  ``(c e_i + C_i) P(EN_i)`` each, scaled by
  the clock activity factor, and
* the two new enable wires: ``(c |EN_i| + C_g) P_tr(EN_i)`` each,

with the enable wirelength estimated -- exactly as in the paper -- as
the distance from the controller point to the *middle of the child's
merging segment* (the Steiner point's final location is not known
during the bottom-up phase).

Two cost functions are provided:

``switched_capacitance_cost``
    The literal Eq. 3.
``incremental_switched_capacitance_cost``
    A count-once re-attribution of the same total (see its docstring);
    it avoids a greedy pathology of the literal form and is the
    default objective of :func:`repro.core.gated_routing.build_gated_tree`.
    The cost-term ablation bench compares the two.

Extensions beyond the literal Eq. 3, used only when the corresponding
feature is active:

* an edge the cell policy left ungated contributes its clock term
  weighted by the merged node's enable probability (its switching will
  be governed by the nearest gated ancestor; the merged node is the
  best bottom-up estimate) and no controller term;
* a buffered (non-maskable cell) edge contributes with weight 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cts.dme import BottomUpMerger, CellDecision, MergePlan
from repro.cts.topology import ClockNode

try:  # NumPy backs the optional batched bound; scalar costs work without it.
    import numpy as np

    from repro.cts import kernels as _kernels
except ImportError:  # pragma: no cover - NumPy present in CI images
    np = None
    _kernels = None


def _edge_weight(decision: CellDecision, child: ClockNode, plan: MergePlan) -> float:
    """Switching probability of the new clock edge above ``child``."""
    if decision.maskable:
        return child.enable_probability
    if decision.cell is not None:
        return 1.0  # buffer: never masked
    if plan.merged_probability is not None:
        return plan.merged_probability
    return 1.0


def _decision_weight(
    decision: CellDecision, child: ClockNode, merged_probability: Optional[float]
) -> float:
    """:func:`_edge_weight` without a plan (for cost lower bounds)."""
    if decision.maskable:
        return child.enable_probability
    if decision.cell is not None:
        return 1.0
    if merged_probability is not None:
        return merged_probability
    return 1.0


def _bound_decisions(
    merger: BottomUpMerger, na: ClockNode, nb: ClockNode, distance: float
) -> Tuple[Optional[float], CellDecision, CellDecision]:
    """The merged probability and cell decisions :meth:`plan` would take.

    Everything here is recomputed exactly as the full plan does (the
    cell policy is pure and the oracle memoizes per mask), so a lower
    bound built from these values differs from the true cost only in
    the wire-length split -- which the bound handles with
    ``e_a + e_b >= distance``.
    """
    merged_probability = merger.merged_probability(na, nb)
    decision_a = merger.cell_policy.decide(na, merged_probability, distance, merger.tech)
    decision_b = merger.cell_policy.decide(nb, merged_probability, distance, merger.tech)
    return merged_probability, decision_a, decision_b


def switched_capacitance_cost(plan: MergePlan, merger: BottomUpMerger) -> float:
    """Paper Eq. 3: switched capacitance added by this merge."""
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point

    total = 0.0
    for child_id, decision, edge_len in (
        (plan.a_id, plan.decision_a, plan.split.length_a),
        (plan.b_id, plan.decision_b, plan.split.length_b),
    ):
        child = merger.tree.node(child_id)
        clock_cap = c * edge_len + child.subtree_cap
        total += a_clk * clock_cap * _edge_weight(decision, child, plan)
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    return total


def _eq3_lower_bound(
    merger: BottomUpMerger, na: ClockNode, nb: ClockNode, distance: float
) -> float:
    """Cheap lower bound of :func:`switched_capacitance_cost`.

    Exact except for the wire split: the subtree-capacitance, gate-pin,
    and enable-star terms depend only on the two children, and the new
    wire contributes at least ``distance`` length (splits cover the
    merging distance; snaking only adds), charged at the smaller of the
    two edge weights.
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    merged_p, decision_a, decision_b = _bound_decisions(merger, na, nb, distance)

    total = 0.0
    weights = []
    for child, decision in ((na, decision_a), (nb, decision_b)):
        weight = _decision_weight(decision, child, merged_p)
        weights.append(weight)
        total += a_clk * child.subtree_cap * weight
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    total += a_clk * c * distance * min(weights)
    return total


def _eq3_batch_lower_bound(merger, nid, others, distance):
    """Batched :func:`_eq3_lower_bound` over a candidate id array.

    Mirrors the scalar bound's float chain term for term (same
    association order, ``np.minimum`` for the rounding-free ``min``),
    so every lane is bit-identical to the scalar call -- the pruning
    decisions, and therefore every downstream greedy choice, cannot
    differ between the vectorized and scalar paths.

    Returns ``None`` (declining the batch, which falls back to the
    scalar scan) whenever a per-pair quantity enters the bound: a
    cell policy without a uniform decision, or a cost/policy needing
    the merged enable probability (pair-dependent oracle lookups).
    """
    if _kernels is None or merger.node_arrays is None:
        return None
    if merger._needs_merged_probability:
        return None
    uniform = merger.cell_policy.uniform_decision(merger.tech)
    if uniform is None:
        return None
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    na = merger.tree.node(nid)
    arrays = merger.node_arrays
    maskable = uniform.maskable

    w_a = na.enable_probability if maskable else 1.0
    total = a_clk * na.subtree_cap * w_a
    if maskable:
        star_a = cp.manhattan_to(na.merging_segment.center())
        total = total + (c * star_a + gate_in) * na.enable_transition_probability
    w_b = arrays.enable_p[others] if maskable else 1.0
    total = total + a_clk * arrays.cap[others] * w_b
    if maskable:
        star_b = _kernels.batch_star_length(
            cp.x,
            cp.y,
            arrays.ulo[others],
            arrays.uhi[others],
            arrays.vlo[others],
            arrays.vhi[others],
        )
        total = total + (c * star_b + gate_in) * arrays.enable_ptr[others]
    return total + a_clk * c * distance * np.minimum(w_a, w_b)


switched_capacitance_cost.lower_bound = _eq3_lower_bound
switched_capacitance_cost.batch_lower_bound = _eq3_batch_lower_bound


def incremental_switched_capacitance_cost(
    plan: MergePlan, merger: BottomUpMerger
) -> float:
    """Count-once variant of Eq. 3 (the default router objective).

    Summed over a whole construction this equals the final
    ``W(T) + W(S)`` up to per-sink constants -- exactly like Eq. 3 --
    but each capacitance is attributed to the merge whose *choice*
    controls it:

    * the two new edge wires, weighted by their enables,
    * the new cells' input pins, which hang at the merge node and
      switch with the merged enable's probability,
    * the two new enable star edges.

    The difference from the literal Eq. 3 is the child subtree
    capacitance ``C_i``: it consists of pins committed by the child's
    *own* creation (where this cost already charged them) and is
    identical for every candidate partner.  Including it per Eq. 3
    biases the greedy toward pairs of "cheap" nodes regardless of the
    wirelength the pairing commits, which inflates the routed tree.

    This cost exposes no batch kernels: it needs the merged enable
    probability, a per-pair oracle lookup over module-mask unions that
    has no array form, so vectorized runs keep it on the scalar path.
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    merged_p = plan.merged_probability if plan.merged_probability is not None else 1.0

    total = 0.0
    for child_id, decision, edge_len in (
        (plan.a_id, plan.decision_a, plan.split.length_a),
        (plan.b_id, plan.decision_b, plan.split.length_b),
    ):
        child = merger.tree.node(child_id)
        total += a_clk * c * edge_len * _edge_weight(decision, child, plan)
        if decision.cell is not None:
            pin_weight = merged_p if decision.maskable else 1.0
            total += a_clk * decision.cell.input_cap * pin_weight
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    return total


incremental_switched_capacitance_cost.needs_merged_probability = True


def _incremental_lower_bound(
    merger: BottomUpMerger, na: ClockNode, nb: ClockNode, distance: float
) -> float:
    """Cheap lower bound of :func:`incremental_switched_capacitance_cost`.

    The pin and enable-star terms are computed exactly (they need no
    split); the two wire terms are bounded below by the merging
    distance at the smaller edge weight.
    """
    tech = merger.tech
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    gate_in = tech.masking_gate.input_cap
    cp = merger.controller_point
    merged_p, decision_a, decision_b = _bound_decisions(merger, na, nb, distance)
    pin_p = merged_p if merged_p is not None else 1.0

    total = 0.0
    weights = []
    for child, decision in ((na, decision_a), (nb, decision_b)):
        weights.append(_decision_weight(decision, child, merged_p))
        if decision.cell is not None:
            pin_weight = pin_p if decision.maskable else 1.0
            total += a_clk * decision.cell.input_cap * pin_weight
        if decision.maskable:
            star_len = cp.manhattan_to(child.merging_segment.center())
            total += (c * star_len + gate_in) * child.enable_transition_probability
    total += a_clk * c * distance * min(weights)
    return total


incremental_switched_capacitance_cost.lower_bound = _incremental_lower_bound
