"""Gate sizing to balance skew without wire snaking.

The paper notes that the masking gates "also serve as buffers and can
be sized to adjust the phase delay of the clock signal" but leaves the
mechanism unexplored.  This module implements it: when the zero-skew
split of a merge would need *snaking* (detour wire on the fast side),
try resizing the cells on the two new edges instead -- a larger gate
drives its subtree faster, a smaller one slower -- and keep the
assignment that balances the delays with the least total wirelength.

Sizing only engages on merges whose unit-size split snakes, so the
extra split evaluations cost almost nothing on balanced merges; the
gate-sizing bench measures the wirelength it saves on reduced-gate
trees (where gated/ungated sibling imbalance is the snaking source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.check.errors import ContractError
from repro.cts.dme import CellDecision
from repro.cts.merge import SkewBalanceError, SplitResult, Tap, zero_skew_split
from repro.obs import get_registry
from repro.tech.parameters import Technology

#: Discrete drive strengths, relative to the technology's unit cell.
DEFAULT_SIZES = (0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class GateSizingPolicy:
    """Chooses cell sizes for the two edges of one merge."""

    sizes: Tuple[float, ...] = DEFAULT_SIZES

    def __post_init__(self):
        if not self.sizes or any(s <= 0 for s in self.sizes):
            raise ContractError("sizes must be positive")
        if 1.0 not in self.sizes:
            raise ContractError("the unit size must be available")

    def _options(self, decision: CellDecision):
        if decision.cell is None:
            yield None, decision
            return
        base = decision.cell
        for size in self.sizes:
            cell = base if size == 1.0 else base.scaled(size)
            yield size, CellDecision(cell=cell, maskable=decision.maskable)

    def resolve(
        self,
        distance: float,
        cap_a: float,
        delay_a: float,
        decision_a: CellDecision,
        cap_b: float,
        delay_b: float,
        decision_b: CellDecision,
        tech: Technology,
        base_split: SplitResult,
    ) -> Tuple[CellDecision, CellDecision, SplitResult]:
        """Pick the sizing with the shortest balanced wiring.

        ``base_split`` is the unit-size split; it is returned unchanged
        when it does not snake (sizing cannot shorten an exact split:
        the edges already sum to the merging distance).
        """
        if base_split.snaked is None:
            return decision_a, decision_b, base_split

        # Sizing only engages on snaked merges; count how often.
        get_registry().counter("sizing.engaged").inc()
        best = (decision_a, decision_b, base_split)
        best_key = self._key(base_split, decision_a, decision_b)
        for size_a, option_a in self._options(decision_a):
            for size_b, option_b in self._options(decision_b):
                if size_a in (None, 1.0) and size_b in (None, 1.0):
                    continue  # that is base_split
                try:
                    split = zero_skew_split(
                        distance,
                        Tap(cap=cap_a, delay=delay_a, cell=option_a.cell),
                        Tap(cap=cap_b, delay=delay_b, cell=option_b.cell),
                        tech,
                    )
                except SkewBalanceError:
                    continue
                key = self._key(split, option_a, option_b)
                if key < best_key:
                    best_key = key
                    best = (option_a, option_b, split)
        if best[2] is not base_split:
            get_registry().counter("sizing.resized").inc()
        return best

    @staticmethod
    def _key(split: SplitResult, a: CellDecision, b: CellDecision):
        """Rank candidate sizings: least wire, then least cell area."""
        area = (a.cell.area if a.cell else 0.0) + (b.cell.area if b.cell else 0.0)
        return (split.total_length, area)
