"""Enable-signal routing from the gate controller(s).

The paper assumes a centralized controller at the center of the chip;
every gate's enable is routed as a dedicated star edge (Fig. 1).
Section 6 sketches the extension this module also implements: divide
the die into ``k`` equal partitions, give each its own controller at
the partition center, and connect each gate to its partition's
controller -- the expected total star wirelength falls as
``G * D / (4 sqrt(k))``.

A gate physically sits at the *top* of its edge, i.e. at the placement
of the edge's parent node; that is where the enable wire terminates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.errors import ContractError
from repro.cts.topology import ClockNode, ClockTree
from repro.geometry.point import Point
from repro.obs import get_registry, get_tracer
from repro.quantity import AreaUm2, LengthUm, NodeId, Probability, SwitchedCap
from repro.tech.parameters import Technology


@dataclass(frozen=True)
class Die:
    """The chip outline (axis-aligned rectangle)."""

    x0: LengthUm
    y0: LengthUm
    x1: LengthUm
    y1: LengthUm

    def __post_init__(self):
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ContractError("die corners out of order")

    @property
    def width(self) -> LengthUm:
        return self.x1 - self.x0

    @property
    def height(self) -> LengthUm:
        return self.y1 - self.y0

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @staticmethod
    def bounding(points: Sequence[Point]) -> "Die":
        """Smallest die containing the given points."""
        if not points:
            raise ContractError("need at least one point")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return Die(min(xs), min(ys), max(xs), max(ys))


def _grid_shape(k: int) -> Tuple[int, int]:
    """Split count k (a power of two) into a near-square grid."""
    if k < 1 or (k & (k - 1)) != 0:
        raise ContractError("number of controllers must be a power of two")
    j = k.bit_length() - 1
    nx = 1 << ((j + 1) // 2)
    ny = 1 << (j // 2)
    return nx, ny


@dataclass(frozen=True)
class ControllerLayout:
    """Locations of the gate controller(s) and their partitions."""

    die: Die
    points: Tuple[Point, ...]
    grid: Tuple[int, int]

    @property
    def count(self) -> int:
        return len(self.points)

    @staticmethod
    def centralized(die: Die) -> "ControllerLayout":
        """The paper's default: one controller at the chip center."""
        return ControllerLayout(die=die, points=(die.center,), grid=(1, 1))

    @staticmethod
    def distributed(die: Die, k: int) -> "ControllerLayout":
        """``k`` controllers at the centers of a grid of partitions."""
        nx, ny = _grid_shape(k)
        points = []
        for iy in range(ny):
            for ix in range(nx):
                points.append(
                    Point(
                        die.x0 + (ix + 0.5) * die.width / nx,
                        die.y0 + (iy + 0.5) * die.height / ny,
                    )
                )
        return ControllerLayout(die=die, points=tuple(points), grid=(nx, ny))

    def controller_for(self, p: Point) -> Tuple[int, Point]:
        """The partition controller owning point ``p``.

        Points outside the die are clamped onto it (gates can sit
        marginally outside the sink bounding box after embedding).
        """
        nx, ny = self.grid
        fx = 0.0 if self.die.width == 0 else (p.x - self.die.x0) / self.die.width
        fy = 0.0 if self.die.height == 0 else (p.y - self.die.y0) / self.die.height
        ix = min(max(int(fx * nx), 0), nx - 1)
        iy = min(max(int(fy * ny), 0), ny - 1)
        index = iy * nx + ix
        return index, self.points[index]


@dataclass(frozen=True)
class EnableRoute:
    """One star edge: controller -> gate enable pin."""

    node_id: NodeId
    controller_index: int
    length: LengthUm
    transition_probability: Probability


@dataclass(frozen=True)
class EnableRouting:
    """The routed controller tree S."""

    layout: ControllerLayout
    routes: Tuple[EnableRoute, ...]
    switched_cap: SwitchedCap
    wirelength: LengthUm
    explicit_assignment: bool = False
    """True when gates were routed to explicitly assigned controllers
    (refinement output) rather than their partition owners."""

    @property
    def gate_count(self) -> int:
        return len(self.routes)

    def wire_area(self, tech: Technology) -> AreaUm2:
        return tech.wire_area(self.wirelength)


def gate_location(tree: ClockTree, node: ClockNode) -> Point:
    """Physical location of the gate on the edge above ``node``.

    The gate sits immediately after the parent Steiner node, so its
    enable pin is at the parent's placement.
    """
    if node.parent is None:
        raise ContractError("the root has no edge, hence no gate")
    parent = tree.node(node.parent)
    if parent.location is None:
        raise ContractError("tree is not embedded yet")
    return parent.location


def route_enables(
    tree: ClockTree,
    layout: ControllerLayout,
    tech: Technology,
    assignment: Optional[Dict[int, int]] = None,
) -> EnableRouting:
    """Star-route every gate's enable; compute W(S).

    ``W(S) = sum (c |EN_i| + C_g) P_tr(EN_i)`` over the gated edges,
    with ``C_g`` the AND gate's (enable) input capacitance.

    ``assignment`` maps gate node ids to controller indices and
    overrides the partition owner for those gates (refinement output);
    unlisted gates still route to their partition's controller.
    """
    with get_tracer().span("controller.star", controllers=layout.count) as span:
        c = tech.unit_wire_capacitance
        gate_in = tech.masking_gate.input_cap
        routes: List[EnableRoute] = []
        switched = 0.0
        wirelength = 0.0
        edge_lengths = get_registry().histogram("controller.star_edge_length")
        for node in tree.gates():
            pin = gate_location(tree, node)
            index, ctrl = layout.controller_for(pin)
            if assignment is not None and node.id in assignment:
                index = assignment[node.id]
                if not 0 <= index < layout.count:
                    raise ContractError(
                        "gate %d assigned controller %d; layout has %d"
                        % (node.id, index, layout.count)
                    )
                ctrl = layout.points[index]
            length = pin.manhattan_to(ctrl)
            ptr = node.enable_transition_probability
            routes.append(
                EnableRoute(
                    node_id=node.id,
                    controller_index=index,
                    length=length,
                    transition_probability=ptr,
                )
            )
            switched += (c * length + gate_in) * ptr
            wirelength += length
            edge_lengths.observe(length)
        span.set(gates=len(routes), wirelength=wirelength)
        return EnableRouting(
            layout=layout,
            routes=tuple(routes),
            switched_cap=switched,
            wirelength=wirelength,
            explicit_assignment=assignment is not None,
        )


def expected_star_wirelength(die_side: LengthUm, num_gates: int, k: int = 1) -> LengthUm:
    """Section 6's analytical star wirelength: ``G D / (4 sqrt(k))``.

    Assumes gates spread uniformly over a square die of side ``D``:
    the longest centralized star edge is ``D/2``, the average is taken
    as half of that, and partitioning into ``k`` parts scales the
    average edge by ``1/sqrt(k)``.
    """
    if die_side < 0 or num_gates < 0:
        raise ContractError("die side and gate count must be non-negative")
    if k < 1:
        raise ContractError("k must be positive")
    return num_gates * die_side / (4.0 * math.sqrt(k))
