"""Gate reduction (paper section 4.3).

Inserting a masking gate on *every* edge maximizes clock-tree masking
but explodes the star-routed controller tree -- section 5.1 shows the
fully-gated tree is actually worse than the buffered baseline.  Three
rules identify edges where a gate buys (almost) nothing:

1. the node's activity is close to 1 (it can never be shut off),
2. the node's switched capacitance is very small,
3. the activity of the masking parent is almost the same as the
   node's activity (the gate above already masks almost as well --
   "only the parent will have a gate").

Removing too many gates exposes large subtree capacitances and blows
up the phase delay, so a fourth rule *forces* a gate whenever the
capacitance the edge would otherwise expose reaches a multiple of the
gate input capacitance.

Three application modes are provided:

* :func:`apply_gate_reduction` with ``mode="demote"`` -- the
  recommended **post-pass**: build the fully gated tree, then walk it
  top-down pruning gates, with rule 3 evaluated against the *nearest
  kept gate above* (so pruning a parent's gate automatically protects
  the children's).  A pruned gate becomes an electrically identical
  always-on buffer, so zero skew is untouched.
* ``mode="remove"`` -- physical deletion with forced re-insertion and
  re-embedding (wire snaking re-balances the skew); ablation.
* :class:`GateReductionPolicy` as a merge-time
  :class:`~repro.cts.dme.CellPolicy` -- decisions taken during
  bottom-up merging, using the merged node's activity as the parent
  estimate.  Cheaper (single pass) but rule 3 can cascade and strip
  whole gate chains (e.g. every gate of an activity cluster); ablation.

A scalar *knob* in [0, 1] scales all thresholds at once; sweeping it
regenerates Fig. 5 ("gate reduction % vs switched capacitance/area").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.check.errors import ContractError
from repro.tech.parameters import GateModel

from repro.cts.dme import CellDecision, CellPolicy
from repro.cts.reembed import reembed
from repro.cts.topology import ClockNode, ClockTree
from repro.obs import get_registry, get_tracer
from repro.tech.parameters import Technology

#: Rule-at-full-knob scales (knob = 1 maps to these extremes).
_FULL_KNOB_ACTIVITY_THRESHOLD = 0.35
_FULL_KNOB_PARENT_DELTA = 0.5
_FULL_KNOB_CAP_UNITS = 3.0
_BASE_FORCE_CAP_RATIO = 10.0
_FULL_KNOB_FORCE_CAP_RATIO = 100.0


@dataclass(frozen=True)
class GateReductionPolicy(CellPolicy):
    """Thresholds for the section-4.3 rules.

    Parameters
    ----------
    activity_threshold:
        Rule 1: drop the gate when ``P(EN) >= activity_threshold``
        (1.0 effectively disables the rule).
    switched_cap_threshold:
        Rule 2: drop the gate when the edge's switched capacitance
        (pF per cycle, clock activity factor included) is at or below
        this (0 disables).
    parent_delta_threshold:
        Rule 3: drop the gate when
        ``P(EN_masking_parent) - P(EN) <= parent_delta_threshold``
        (negative disables; the difference is always >= 0 because an
        ancestor's enable is the OR of its descendants').
    force_cap_ratio:
        Override: always gate when the capacitance the edge would
        expose reaches ``force_cap_ratio * C_g``; keeps the phase delay
        from growing without bound.  ``None`` disables the override.
    """

    activity_threshold: float = 1.0
    switched_cap_threshold: float = 0.0
    parent_delta_threshold: float = -1.0
    force_cap_ratio: Optional[float] = _BASE_FORCE_CAP_RATIO

    needs_merged_probability = True

    def __post_init__(self):
        if not 0.0 <= self.activity_threshold <= 1.0 + 1e-9:
            raise ContractError("activity_threshold must lie in [0, 1]")
        if self.switched_cap_threshold < 0:
            raise ContractError("switched_cap_threshold must be non-negative")
        if self.force_cap_ratio is not None and self.force_cap_ratio <= 0:
            raise ContractError("force_cap_ratio must be positive")

    @staticmethod
    def from_knob(knob: float, tech: Technology) -> "GateReductionPolicy":
        """Map a scalar aggressiveness in [0, 1] onto the thresholds.

        knob 0 removes no gates (the fully gated tree); knob 1 removes
        aggressively.  The mapping is monotone: a larger knob's rules
        dominate a smaller knob's, so the achieved reduction percentage
        grows monotonically along the sweep.
        """
        if not 0.0 <= knob <= 1.0:
            raise ContractError("knob must lie in [0, 1]")
        gate_cap = tech.masking_gate.input_cap
        force = _BASE_FORCE_CAP_RATIO + knob * (
            _FULL_KNOB_FORCE_CAP_RATIO - _BASE_FORCE_CAP_RATIO
        )
        return GateReductionPolicy(
            activity_threshold=1.0 - knob * (1.0 - _FULL_KNOB_ACTIVITY_THRESHOLD),
            switched_cap_threshold=knob * _FULL_KNOB_CAP_UNITS * gate_cap,
            parent_delta_threshold=knob * _FULL_KNOB_PARENT_DELTA,
            force_cap_ratio=force,
        )

    # ------------------------------------------------------------------
    # the rules
    # ------------------------------------------------------------------
    def should_keep(
        self,
        enable_probability: float,
        mask_probability: float,
        exposed_cap: float,
        tech: Technology,
        honor_force: bool = True,
    ) -> bool:
        """Apply the rules to one gate site.

        ``mask_probability`` is the activity of whatever would mask the
        edge if this gate were removed (the nearest kept gate above, or
        1.0 for the raw clock); ``exposed_cap`` the capacitance the
        edge presents when ungated (wire plus decoupled subtree).
        ``honor_force=False`` skips the forced-insertion override (used
        when pruning cannot expose capacitance, i.e. demote mode).
        """
        gate = tech.masking_gate
        if (
            honor_force
            and self.force_cap_ratio is not None
            and exposed_cap >= self.force_cap_ratio * gate.input_cap
        ):
            return True
        if enable_probability >= self.activity_threshold:
            return False  # rule 1: never idle
        edge_switched_cap = (
            tech.clock_transitions_per_cycle * exposed_cap * enable_probability
        )
        if 0.0 < self.switched_cap_threshold >= edge_switched_cap:
            return False  # rule 2: nothing to save (0 disables the rule)
        if mask_probability - enable_probability <= self.parent_delta_threshold:
            return False  # rule 3: the gate above masks as well
        return True

    # ------------------------------------------------------------------
    # CellPolicy interface (merge-time mode, kept as an ablation)
    # ------------------------------------------------------------------
    def decide(
        self,
        child: ClockNode,
        merged_probability: Optional[float],
        distance: float,
        tech: Technology,
    ) -> CellDecision:
        # The final edge length is not known before the zero-skew
        # split; half the merging distance is the unbiased estimate.
        exposed_cap = tech.wire_cap(distance / 2.0) + child.subtree_cap
        mask = merged_probability if merged_probability is not None else 1.0
        if self.should_keep(child.enable_probability, mask, exposed_cap, tech):
            return CellDecision(cell=tech.masking_gate, maskable=True)
        return CellDecision(cell=None)


def apply_gate_reduction(
    tree: ClockTree, policy: GateReductionPolicy, mode: str = "demote"
) -> int:
    """Prune gates from a fully (or partially) gated tree, in place.

    Top-down pass: every gated edge is tested with
    :meth:`GateReductionPolicy.should_keep` against the activity of the
    nearest gate kept *above* it -- so pruning a parent's gate
    automatically protects its descendants' gates from rule 3, which a
    merge-time decision cannot guarantee.

    Modes
    -----
    ``"demote"`` (default)
        A pruned gate is swapped for an *electrically identical*
        always-on buffer (its enable tied high): same input cap, drive
        and delay, half the cell area.  The tree's embedding -- hence
        its exact zero skew -- is untouched; only the enable star edge
        and the masking disappear.  The forced-insertion rule is moot
        (nothing gets exposed) so the sweep reaches 100% reduction.
    ``"remove"``
        The gate is physically deleted.  Subtree capacitances are
        exposed upstream, so the force rule re-inserts gates bottom-up
        and the tree is re-embedded (with wire snaking re-balancing
        the now-asymmetric siblings).  Kept for the ablation bench;
        snaking makes it markedly worse on large benchmarks.

    Returns the number of gates pruned (net of forced re-insertions).
    """
    if mode not in ("demote", "remove"):
        raise ContractError("mode must be 'demote' or 'remove'")
    with get_tracer().span("gating.reduce", mode=mode) as span:
        removed = _apply_gate_reduction(tree, policy, mode)
        span.set(pruned=removed)
    get_registry().counter("gating.gates_pruned").inc(max(removed, 0))
    return removed


def _apply_gate_reduction(
    tree: ClockTree, policy: GateReductionPolicy, mode: str
) -> int:
    tech = tree.tech
    removed = 0

    # -- top-down pruning against the nearest kept gate -----------------
    mask_prob: Dict[int, float] = {tree.root_id: 1.0}
    for node in tree.preorder():
        if node.id == tree.root_id:
            continue
        above = mask_prob[node.parent]
        if node.has_gate:
            exposed = tech.wire_cap(node.edge_length) + node.subtree_cap
            # Demoting never exposes capacitance upstream, so the
            # forced-insertion override only applies to removal.
            keep = policy.should_keep(
                node.enable_probability,
                above,
                exposed,
                tech,
                honor_force=(mode == "remove"),
            )
            if keep:
                mask_prob[node.id] = node.enable_probability
            else:
                if mode == "demote":
                    node.edge_cell = _demoted(node.edge_cell, tech)
                else:
                    node.edge_cell = None
                node.edge_maskable = False
                removed += 1
                mask_prob[node.id] = above
        else:
            mask_prob[node.id] = above

    if mode == "demote":
        return removed

    # -- bottom-up repair: honor the forced-insertion rule -------------
    if policy.force_cap_ratio is not None:
        limit = policy.force_cap_ratio * tech.masking_gate.input_cap
        changed = True
        while changed:
            changed = False
            exposed_below: Dict[int, float] = {}
            for node_id in _postorder(tree):
                node = tree.node(node_id)
                if node.is_sink:
                    below = node.sink.load_cap
                else:
                    below = 0.0
                    for child_id in node.children:
                        child = tree.node(child_id)
                        if child.edge_cell is not None:
                            below += child.edge_cell.input_cap
                        else:
                            below += (
                                tech.wire_cap(child.edge_length)
                                + exposed_below[child_id]
                            )
                exposed_below[node_id] = below
                if node.id == tree.root_id or node.edge_cell is not None:
                    continue
                if tech.wire_cap(node.edge_length) + below >= limit:
                    node.edge_cell = tech.masking_gate
                    node.edge_maskable = True
                    removed -= 1
                    changed = True

    reembed(tree)
    return removed


def _demoted(gate: GateModel, tech: Technology) -> GateModel:
    """The always-on buffer a pruned gate is swapped for.

    Electrically identical to the gate (so skew is untouched); the cell
    area drops to the baseline buffer's, modelling the layout swap of a
    tied-high AND gate for an equivalent buffer.
    """
    return replace(gate, area=tech.buffer.area)


def _postorder(tree: ClockTree) -> List[int]:
    order: List[int] = []
    stack = [tree.root_id]
    while stack:
        node = tree.node(stack.pop())
        order.append(node.id)
        stack.extend(node.children)
    order.reverse()
    return order


def reduction_fraction(num_gates: int, num_sinks: int) -> float:
    """Fraction of gate sites left empty (the x-axis of Fig. 5).

    A fully gated tree over ``N`` sinks has a gate on every edge:
    ``2N - 2`` gates.
    """
    if num_sinks < 1:
        raise ContractError("need at least one sink")
    sites = 2 * num_sinks - 2
    if sites == 0:
        return 0.0
    if not 0 <= num_gates <= sites:
        raise ContractError("gate count outside [0, %d]" % sites)
    return 1.0 - num_gates / sites
