"""Switched capacitance to dynamic power (paper Eq. 1).

The layout algorithms work in switched capacitance because ``V_dd``
and ``f`` are fixed during layout synthesis; this module applies
``P = W * f * V_dd^2`` at the end, so results can be reported in mW
for a concrete operating point.

Convention: the switched-capacitance figures produced by
:mod:`repro.core.switched_cap` and :mod:`repro.core.controller`
already include each net's activity factor (the clock's two
transitions per cycle, the enables' measured transition
probabilities), so the conversion is ``P = W * f * Vdd^2 / 2`` with
the 1/2 accounting for energy drawn on charging transitions only --
Eq. 1 of the paper with its alpha folded into W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.errors import ContractError
from repro.core.flow import ClockRoutingResult
from repro.quantity import SwitchedCap


@dataclass(frozen=True)
class OperatingPoint:
    """Clock frequency and supply voltage."""

    frequency_hz: float
    vdd: float

    def __post_init__(self):
        if self.frequency_hz <= 0 or self.vdd <= 0:
            raise ContractError("frequency and Vdd must be positive")


#: A representative late-90s operating point: 200 MHz at 3.3 V.
DATE98_OPERATING_POINT = OperatingPoint(frequency_hz=200e6, vdd=3.3)


def switched_cap_to_watts(
    switched_cap_pf: SwitchedCap, point: OperatingPoint = DATE98_OPERATING_POINT
) -> float:
    """Dynamic power in watts for a per-cycle switched capacitance.

    ``switched_cap_pf`` is in pF switched per clock cycle (the unit all
    accounting in this library uses); the result is
    ``W * f * Vdd^2 / 2`` with the 1/2 from charging *or* discharging
    per counted transition.
    """
    if switched_cap_pf < 0:
        raise ContractError("switched capacitance must be non-negative")
    return switched_cap_pf * 1e-12 * point.frequency_hz * point.vdd**2 / 2.0


@dataclass(frozen=True)
class PowerReport:
    """Dynamic power of one routed clock network, watts."""

    clock_tree: float
    controller_tree: float

    @property
    def total(self) -> float:
        return self.clock_tree + self.controller_tree

    @property
    def total_milliwatts(self) -> float:
        return self.total * 1e3


def power_report(
    result: ClockRoutingResult, point: OperatingPoint = DATE98_OPERATING_POINT
) -> PowerReport:
    """Convert a routing result's switched capacitance to power."""
    return PowerReport(
        clock_tree=switched_cap_to_watts(result.switched_cap.clock_tree, point),
        controller_tree=switched_cap_to_watts(
            result.switched_cap.controller_tree, point
        ),
    )
