"""One-call routing flows with uniform result records.

Everything the paper's evaluation compares -- switched capacitance
split into clock/controller trees, routing and cell area, skew, phase
delay, wirelength, gate counts -- is collected into
:class:`ClockRoutingResult` so benches and examples can treat the
buffered baseline and the gated variants interchangeably.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.activity.probability import ActivityOracle
from repro.check.errors import InputError
from repro.check.validate import validate_sinks, validate_technology
from repro.core.controller import ControllerLayout, Die, EnableRouting, route_enables
from repro.core.gated_routing import build_gated_tree
from repro.core.gate_reduction import (
    GateReductionPolicy,
    apply_gate_reduction,
    reduction_fraction,
)
from repro.core.switched_cap import (
    SwitchedCapBreakdown,
    clock_tree_switched_cap,
    masking_efficiency,
)
from repro.cts.buffered import build_buffered_tree
from repro.cts.dme import CellPolicy
from repro.cts.refine import RefineConfig, refine_tree
from repro.cts.topology import ClockTree, Sink
from repro.obs import get_registry, get_tracer, publish_oracle_cache
from repro.tech.parameters import Technology

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class AreaBreakdown:
    """Layout area in lambda^2, split the way Fig. 3 and Fig. 5 plot it."""

    clock_wire: float
    controller_wire: float
    cells: float

    @property
    def routing(self) -> float:
        """Wiring area only (clock + controller)."""
        return self.clock_wire + self.controller_wire

    @property
    def total(self) -> float:
        return self.clock_wire + self.controller_wire + self.cells


@dataclass(frozen=True)
class ClockRoutingResult:
    """Everything measured about one routed clock network."""

    method: str
    tree: ClockTree
    routing: Optional[EnableRouting]
    switched_cap: SwitchedCapBreakdown
    area: AreaBreakdown
    skew: float
    phase_delay: float
    wirelength: float
    gate_count: int
    cell_count: int
    num_sinks: int

    @property
    def gate_reduction(self) -> float:
        """Fraction of gate sites left empty (Fig. 5 x-axis)."""
        return reduction_fraction(self.gate_count, self.num_sinks)

    def pins(self) -> dict:
        """The exact result pins a :class:`~repro.obs.ledger.RunRecord`
        persists.

        Pins are the regression contract: the sentinel compares them
        byte-for-byte (through their canonical JSON encoding), so this
        dict must contain only values that are deterministic for a
        fixed (sinks, tech, workload, flags) configuration -- floats
        land unrounded.
        """
        return {
            "method": self.method,
            "num_sinks": self.num_sinks,
            "gate_count": self.gate_count,
            "cell_count": self.cell_count,
            "wirelength": self.wirelength,
            "switched_cap_total": self.switched_cap.total,
            "switched_cap_clock": self.switched_cap.clock_tree,
            "switched_cap_controller": self.switched_cap.controller_tree,
            "area_total": self.area.total,
            "skew": self.skew,
            "phase_delay": self.phase_delay,
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            "%-10s  W=%.3f pF (clk %.3f + ctrl %.3f)  area=%.3fe6 l^2  "
            "gates=%d/%d  skew=%.2e"
            % (
                self.method,
                self.switched_cap.total,
                self.switched_cap.clock_tree,
                self.switched_cap.controller_tree,
                self.area.total / 1e6,
                self.gate_count,
                2 * self.num_sinks - 2,
                self.skew,
            )
        )


def _measure(
    method: str,
    tree: ClockTree,
    tech: Technology,
    routing: Optional[EnableRouting],
) -> ClockRoutingResult:
    with get_tracer().span("flow.measure", method=method):
        controller_cap = routing.switched_cap if routing is not None else 0.0
        controller_wire = routing.wirelength if routing is not None else 0.0
        switched = SwitchedCapBreakdown(
            clock_tree=clock_tree_switched_cap(tree, tech),
            controller_tree=controller_cap,
        )
        # One wirelength walk and one Elmore evaluation serve all the
        # derived fields (wire area, wirelength, skew, phase delay).
        wirelength = tree.total_wirelength()
        delays = [s.delay for s in tree.elmore_evaluator().sink_delays()]
        area = AreaBreakdown(
            clock_wire=tech.wire_area(wirelength),
            controller_wire=tech.wire_area(controller_wire),
            cells=tree.cell_area(),
        )
        return ClockRoutingResult(
            method=method,
            tree=tree,
            routing=routing,
            switched_cap=switched,
            area=area,
            skew=max(delays) - min(delays),
            phase_delay=max(delays),
            wirelength=wirelength,
            gate_count=tree.gate_count(),
            cell_count=tree.cell_count(),
            num_sinks=len(tree.sinks()),
        )


def _die_for(sinks: Sequence[Sink], die: Optional[Die]) -> Die:
    return die if die is not None else Die.bounding([s.location for s in sinks])


def _validate_inputs(sinks, tech, num_modules=None) -> None:
    """Strict entry gate: reject bad sinks/tech before any routing."""
    validate_sinks(sinks, num_modules=num_modules)
    validate_technology(tech, strict=True)


def _maybe_refine(
    tree: ClockTree,
    tech: Technology,
    oracle: ActivityOracle,
    layout: ControllerLayout,
    refine: Optional[RefineConfig],
    skew_bound: float,
) -> Tuple[ClockTree, Optional[Dict[int, int]]]:
    """Run the annealing post-pass when configured.

    Returns the (possibly improved) tree and the explicit controller
    assignment for :func:`route_enables` -- ``None`` when the greedy
    tree survived unbeaten, so un-refined runs stay byte-identical.
    """
    if refine is None or refine.moves == 0:
        return tree, None
    if skew_bound != 0:
        raise InputError(
            "refinement repairs moves with exact zero-skew splits; "
            "it cannot run under a bounded-skew budget",
            field="refine",
        )
    best, assignment, _stats = refine_tree(tree, tech, oracle, layout, refine)
    return best, assignment


def _maybe_audit(result: ClockRoutingResult, audit: bool, skew_bound: float):
    """Opt-in post-flow hook: re-verify every network invariant.

    Raises a typed :class:`~repro.check.errors.AuditError` naming the
    first offending node when the routed network fails verification.
    """
    if not audit:
        return result
    from repro.check.auditor import audit_network

    with get_tracer().span("flow.audit", method=result.method):
        report = audit_network(result.tree, routing=result.routing, skew_bound=skew_bound)
        report.raise_if_failed()
    return result


def route_buffered(
    sinks: Sequence[Sink],
    tech: Technology,
    die: Optional[Die] = None,
    candidate_limit: Optional[int] = None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
    audit: bool = False,
) -> ClockRoutingResult:
    """The paper's baseline: buffered nearest-neighbour zero-skew tree.

    ``audit=True`` re-verifies every network invariant after routing
    (see :func:`repro.check.auditor.audit_network`) and raises a typed
    error on the first violation.
    """
    _validate_inputs(sinks, tech)
    tracer = get_tracer()
    with tracer.span("flow.route_buffered", n=len(sinks)):
        # build_buffered_tree opens its own "topology.buffered" span.
        tree = build_buffered_tree(
            sinks,
            tech,
            candidate_limit=candidate_limit,
            skew_bound=skew_bound,
            vectorize=vectorize,
        )
        result = _measure("buffered", tree, tech, routing=None)
        return _maybe_audit(result, audit, skew_bound)


def route_gated(
    sinks: Sequence[Sink],
    tech: Technology,
    oracle: ActivityOracle,
    die: Optional[Die] = None,
    reduction: Optional[GateReductionPolicy] = None,
    reduction_mode: str = "merge",
    cell_policy: Optional[CellPolicy] = None,
    num_controllers: int = 1,
    candidate_limit: Optional[int] = None,
    gate_sizing=None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
    audit: bool = False,
    refine: Optional[RefineConfig] = None,
) -> ClockRoutingResult:
    """The paper's gated router, with or without gate reduction.

    ``reduction`` selects the section-4.3 policy (``None`` = gate on
    every edge).  ``reduction_mode`` picks how it is applied:
    ``"merge"`` (default) decides gates during bottom-up merging, so
    the topology co-optimizes with the gate count; ``"demote"`` and
    ``"remove"`` build the fully gated tree first and prune it
    afterwards -- see :mod:`repro.core.gate_reduction` for the
    trade-offs.  ``num_controllers`` > 1 activates the distributed
    controllers of section 6.  ``cell_policy`` overrides ``reduction``
    when both are given.  ``refine`` runs the annealing post-pass
    (:mod:`repro.cts.refine`) over the finished tree; the measured
    result is never worse than the greedy tree's.
    """
    if reduction_mode not in ("demote", "remove", "merge"):
        raise InputError(
            "reduction_mode must be 'demote', 'remove' or 'merge'",
            field="reduction_mode",
        )
    _validate_inputs(sinks, tech, num_modules=oracle.isa.num_modules)
    die = _die_for(sinks, die)
    layout = (
        ControllerLayout.centralized(die)
        if num_controllers == 1
        else ControllerLayout.distributed(die, num_controllers)
    )
    policy = cell_policy
    if policy is None and reduction is not None and reduction_mode == "merge":
        policy = reduction
    tracer = get_tracer()
    with tracer.span(
        "flow.route_gated",
        n=len(sinks),
        reduction_mode=reduction_mode,
        controllers=num_controllers,
    ):
        # "demote"/"remove" build fully gated, then prune below.
        # build_gated_tree opens its own "topology.gated" span.
        tree = build_gated_tree(
            sinks,
            tech,
            oracle,
            controller_point=die.center,
            cell_policy=policy,
            candidate_limit=candidate_limit,
            gate_sizing=gate_sizing,
            skew_bound=skew_bound,
            vectorize=vectorize,
        )
        if reduction is not None and policy is None:
            # apply_gate_reduction opens its own "gating.reduce" span.
            apply_gate_reduction(tree, reduction, mode=reduction_mode)
        # refine_tree opens its own "refine.anneal" span.
        tree, assignment = _maybe_refine(
            tree, tech, oracle, layout, refine, skew_bound
        )
        # route_enables opens its own "controller.star" span.
        routing = route_enables(tree, layout, tech, assignment=assignment)
        method = "gated" if reduction is None and cell_policy is None else "gate-red"
        result = _measure(method, tree, tech, routing=routing)
        publish_oracle_cache(oracle)
        return _maybe_audit(result, audit, skew_bound)


def route_sharded(
    sinks: Sequence[Sink],
    tech: Technology,
    oracle: ActivityOracle,
    die: Optional[Die] = None,
    num_shards: int = 4,
    num_workers: int = 1,
    reduction: Optional[GateReductionPolicy] = None,
    reduction_mode: str = "demote",
    cell_policy: Optional[CellPolicy] = None,
    num_controllers: int = 1,
    candidate_limit: Optional[int] = None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
    audit: bool = False,
    refine: Optional[RefineConfig] = None,
) -> ClockRoutingResult:
    """Partition -> per-shard gated DME -> exact zero-skew stitch.

    The scale-out variant of :func:`route_gated`: the sink set is cut
    into ``num_shards`` spatial shards, each shard's gated subtree is
    routed independently (inline, or across ``num_workers`` processes
    when > 1), and the shard roots are merged by the exact zero-skew
    top-tree stitch (:mod:`repro.cts.sharded`).  ``num_shards=1``
    reproduces :func:`route_gated`'s tree byte-for-byte.

    ``num_shards`` above the sink count is clamped (with a warning)
    rather than rejected: the flow caller asked for "as parallel as
    possible", and one-sink shards are that.  Direct users of
    :func:`repro.cts.sharded.partition_sinks` still get the strict
    ``InputError``.

    Gate reduction is applied to the stitched tree (``"demote"`` or
    ``"remove"``); ``"merge"``-mode reduction couples gating decisions
    to the global merge order and is rejected -- it cannot be
    replicated shard-locally.  ``refine`` anneals the stitched
    (post-reduction) tree, exactly as in :func:`route_gated`.
    """
    from repro.cts.sharded import partition_sinks, route_shards, stitch_shards

    if reduction is not None and reduction_mode not in ("demote", "remove"):
        raise InputError(
            "sharded routing applies reduction post-stitch; "
            "reduction_mode must be 'demote' or 'remove'",
            field="reduction_mode",
        )
    _validate_inputs(sinks, tech, num_modules=oracle.isa.num_modules)
    if num_shards > len(sinks):
        logger.warning(
            "clamping num_shards from %d to the sink count %d",
            num_shards,
            len(sinks),
        )
        num_shards = len(sinks)
    die = _die_for(sinks, die)
    layout = (
        ControllerLayout.centralized(die)
        if num_controllers == 1
        else ControllerLayout.distributed(die, num_controllers)
    )
    tracer = get_tracer()
    registry = get_registry()
    with tracer.span(
        "flow.route_sharded",
        n=len(sinks),
        shards=num_shards,
        workers=num_workers,
    ):
        with tracer.span("shard.partition", n=len(sinks), shards=num_shards):
            plan = partition_sinks(sinks, num_shards)
        registry.counter("shard.count").inc(plan.num_shards)
        registry.gauge("shard.workers").set(num_workers)
        for members in plan.shards:
            registry.histogram("shard.sinks").observe(len(members))
        with tracer.span("shard.route", shards=plan.num_shards, workers=num_workers):
            shards = route_shards(
                sinks,
                plan,
                tech,
                oracle,
                controller_point=die.center,
                num_workers=num_workers,
                cell_policy=cell_policy,
                candidate_limit=candidate_limit,
                skew_bound=skew_bound,
                vectorize=vectorize,
            )
        for shard in shards:
            registry.histogram("shard.route_seconds").observe(shard.seconds)
        with tracer.span("shard.stitch", shards=plan.num_shards):
            tree = stitch_shards(
                shards,
                plan,
                tech,
                oracle,
                cell_policy=cell_policy,
                skew_bound=skew_bound,
            )
        if reduction is not None:
            # apply_gate_reduction opens its own "gating.reduce" span.
            apply_gate_reduction(tree, reduction, mode=reduction_mode)
        # refine_tree opens its own "refine.anneal" span.
        tree, assignment = _maybe_refine(
            tree, tech, oracle, layout, refine, skew_bound
        )
        # route_enables opens its own "controller.star" span.
        routing = route_enables(tree, layout, tech, assignment=assignment)
        result = _measure("sharded", tree, tech, routing=routing)
        publish_oracle_cache(oracle)
        return _maybe_audit(result, audit, skew_bound)


def gated_vs_ungated_floor(result: ClockRoutingResult, tech: Technology) -> float:
    """Fig. 4's floor: gated W(T) as a fraction of the ungated W(T)."""
    return masking_efficiency(result.tree, tech)
