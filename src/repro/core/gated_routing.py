"""GatedClockRouting (paper section 4.2).

The procedure, verbatim from the paper's outline:

1. scan the instruction stream once, building IFT and IMATT
   (:mod:`repro.activity.tables`);
2. find ``P(EN)`` and ``P_tr(EN)`` for every sink;
3. repeatedly merge the pair of subtrees whose merge adds the least
   switched capacitance (Eq. 3), each time performing an exact
   zero-skew split, computing the merged node's enable statistics and
   its merging segment;
4. place internal nodes top-down within their merging segments.

This module wires those steps together; all the machinery lives in
:mod:`repro.cts.dme` (the greedy engine) and :mod:`repro.core.cost`
(the Eq. 3 objective).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.activity.probability import ActivityOracle
from repro.check.errors import ContractError
from repro.cts.dme import BottomUpMerger, CellPolicy, GateEveryEdgePolicy
from repro.cts.topology import ClockTree, Sink
from repro.geometry.point import Point
from repro.obs import phase_span
from repro.tech.parameters import Technology


def build_gated_tree(
    sinks: Sequence[Sink],
    tech: Technology,
    oracle: ActivityOracle,
    controller_point: Optional[Point] = None,
    cell_policy: Optional[CellPolicy] = None,
    candidate_limit: Optional[int] = None,
    objective: str = "incremental",
    gate_sizing=None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
) -> ClockTree:
    """Build a zero-skew gated clock tree minimizing switched capacitance.

    Parameters
    ----------
    sinks:
        Module clock pins; each sink's ``module`` index keys into the
        activity oracle.
    tech:
        Technology constants (wire RC, gate model, activity factor).
    oracle:
        Table-driven ``P(EN)`` / ``P_tr(EN)`` source built from the
        instruction stream (or analytically from a Markov model).
    controller_point:
        Gate controller location; defaults to the sink bounding-box
        center, the paper's "center of the chip".
    cell_policy:
        Gate placement policy.  Defaults to a gate on every edge (the
        paper's base configuration); pass a
        :class:`~repro.core.gate_reduction.GateReductionPolicy` for the
        merge-time reduced-gate variant.
    candidate_limit:
        Optional k-nearest-neighbour restriction of the greedy
        candidate pairs (exact greedy when ``None``).
    objective:
        ``"incremental"`` (default) uses the count-once switched-
        capacitance cost; ``"eq3"`` uses the paper's literal Eq. 3.
        See :mod:`repro.core.cost` for why they differ and the
        cost-term ablation bench for measurements.
    gate_sizing:
        Optional :class:`repro.core.gate_sizing.GateSizingPolicy`;
        resizes cells instead of snaking wire on unbalanced merges.
    vectorize:
        Toggles the NumPy kernel screens of the greedy engine
        (decision-neutral; see :class:`~repro.cts.dme.BottomUpMerger`).
    """
    from repro.core.cost import (
        incremental_switched_capacitance_cost,
        switched_capacitance_cost,
    )

    if objective == "incremental":
        cost = incremental_switched_capacitance_cost
    elif objective == "eq3":
        cost = switched_capacitance_cost
    else:
        raise ContractError("objective must be 'incremental' or 'eq3'")
    with phase_span("topology.gated", n=len(sinks)):
        merger = BottomUpMerger(
            sinks=sinks,
            tech=tech,
            cost=cost,
            cell_policy=cell_policy or GateEveryEdgePolicy(),
            oracle=oracle,
            controller_point=controller_point,
            candidate_limit=candidate_limit,
            cell_sizer=gate_sizing,
            skew_bound=skew_bound,
            vectorize=vectorize,
        )
        return merger.run()
