"""Switched-capacitance accounting over a finished clock tree.

``W(T)``: every edge's wire capacitance, plus the capacitance attached
at its bottom node (sink load or the input pins of the cells it
drives), switches with the clock activity factor times the *effective*
enable probability of the edge -- the signal probability of the
nearest maskable gate at or above it (1.0 when no gate masks it, as in
the buffered baseline).

The attachment convention avoids double counting with partially gated
trees: an ungated child edge's wire is accounted by that edge's own
term (at the same effective probability), so a node only contributes
the input capacitance of *cells* it directly drives plus its own sink
load.

``W(S)`` is computed by :mod:`repro.core.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cts.topology import ClockTree
from repro.quantity import CapacitanceFF, NodeId, Probability, SwitchedCap
from repro.tech.parameters import Technology


@dataclass(frozen=True)
class SwitchedCapBreakdown:
    """W(T), W(S) and their sum, in pF per clock cycle."""

    clock_tree: SwitchedCap
    controller_tree: SwitchedCap

    @property
    def total(self) -> SwitchedCap:
        return self.clock_tree + self.controller_tree


def effective_enable_probabilities(tree: ClockTree) -> Dict[int, Probability]:
    """Per-node switching probability of the net feeding that node.

    The root's net is the raw clock (probability 1).  A maskable gated
    edge switches with its own enable's signal probability; any other
    edge inherits the probability of its parent's net.
    """
    eff: Dict[int, Probability] = {tree.root_id: 1.0}
    for node in tree.preorder():
        if node.id == tree.root_id:
            continue
        if node.has_gate:
            eff[node.id] = node.enable_probability
        else:
            eff[node.id] = eff[node.parent]
    return eff


def _attached_cap(tree: ClockTree, node_id: NodeId) -> CapacitanceFF:
    """Capacitance hanging directly at a node: sink load + child cell pins."""
    node = tree.node(node_id)
    if node.is_sink:
        return node.sink.load_cap
    total = 0.0
    for child_id in node.children:
        cell = tree.node(child_id).edge_cell
        if cell is not None:
            total += cell.input_cap
    return total


def clock_tree_switched_cap(tree: ClockTree, tech: Technology) -> SwitchedCap:
    """``W(T)`` of an embedded (possibly gated, possibly buffered) tree."""
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    eff = effective_enable_probabilities(tree)
    total = eff[tree.root_id] * _attached_cap(tree, tree.root_id) * a_clk
    for node in tree.edges():
        cap = c * node.edge_length + _attached_cap(tree, node.id)
        total += a_clk * eff[node.id] * cap
    return total


def ungated_clock_tree_switched_cap(tree: ClockTree, tech: Technology) -> float:
    """``W(T)`` of the same tree with every enable stuck at 1.

    The paper's Fig. 4 observation -- "the power consumption of the
    gated clock tree will be at least 40% of the ungated clock tree" --
    is checked against this quantity.
    """
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    total = _attached_cap(tree, tree.root_id) * a_clk
    for node in tree.edges():
        total += a_clk * (c * node.edge_length + _attached_cap(tree, node.id))
    return total


def masking_efficiency(tree: ClockTree, tech: Technology) -> float:
    """Gated over ungated clock-tree switched capacitance, in (0, 1]."""
    ungated = ungated_clock_tree_switched_cap(tree, tech)
    if ungated <= 0:
        return 1.0
    return clock_tree_switched_cap(tree, tech) / ungated
