"""The paper's contribution: gated zero-skew clock routing.

Built on the substrates (:mod:`repro.geometry`, :mod:`repro.rc`,
:mod:`repro.activity`, :mod:`repro.cts`), this package provides:

* :mod:`repro.core.cost` -- the minimum-switched-capacitance pair cost
  (paper Eq. 3) that drives the greedy merge order;
* :mod:`repro.core.gate_reduction` -- the three gate-removal rules of
  section 4.3 plus the forced-insertion override, with a scalar knob
  for the Fig. 5 sweep;
* :mod:`repro.core.controller` -- star routing of the enable signals
  from a centralized controller (or the distributed controllers of
  section 6);
* :mod:`repro.core.switched_cap` -- the final W(T) / W(S) accounting
  over a finished tree, including enable inheritance across ungated
  edges;
* :mod:`repro.core.gated_routing` -- ``build_gated_tree``: the
  GatedClockRouting procedure of section 4.2;
* :mod:`repro.core.flow` -- one-call flows producing comparable result
  records for the buffered baseline and the gated routers.
"""

from repro.core.cost import switched_capacitance_cost
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.controller import ControllerLayout, EnableRouting, route_enables
from repro.core.switched_cap import (
    SwitchedCapBreakdown,
    clock_tree_switched_cap,
    effective_enable_probabilities,
)
from repro.core.gated_routing import build_gated_tree
from repro.core.flow import AreaBreakdown, ClockRoutingResult, route_buffered, route_gated

__all__ = [
    "switched_capacitance_cost",
    "GateReductionPolicy",
    "ControllerLayout",
    "EnableRouting",
    "route_enables",
    "SwitchedCapBreakdown",
    "clock_tree_switched_cap",
    "effective_enable_probabilities",
    "build_gated_tree",
    "AreaBreakdown",
    "ClockRoutingResult",
    "route_buffered",
    "route_gated",
]
