"""The gate controller's internal OR logic.

The paper observes that "the control signal of a gate is the OR
function of the control signals of its descendant gates" and closes
with the design complexity of the controller logic "currently under
investigation".  This module models that logic so its cost can be
studied:

* every *kept* gate needs an enable; the enables form a hierarchy
  (each gate's nearest gated descendants are its OR inputs; gates with
  no gated descendants are ORs over their subtree's module-activity
  lines);
* the controller realizes the hierarchy with 2-input OR gates -- an
  n-input OR costs ``n - 1`` of them;
* each internal OR output toggles exactly like the enable it computes,
  so its switched capacitance is ``C_or * P_tr(EN)``.

This yields controller gate count, logic area, and internal switched
capacitance -- the terms the paper's W(S) (wiring-only) leaves out --
and lets the distributed-controller study report logic duplication
costs honestly (module-activity lines must be distributed to every
partition controller, but the OR tree itself partitions cleanly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.activity.isa import mask_to_modules
from repro.cts.topology import ClockTree
from repro.tech.parameters import GateModel, Technology


@dataclass(frozen=True)
class EnableTerm:
    """One enable signal the controller must produce."""

    node_id: int
    fan_in: int
    """Number of OR inputs (gated descendants, or module lines)."""

    transition_probability: float


@dataclass(frozen=True)
class ControllerLogic:
    """Synthesized controller-logic summary."""

    terms: List[EnableTerm]
    or_gate_count: int
    area: float
    switched_cap: float
    module_lines: int
    """Distinct module-activity inputs the controller consumes."""

    @property
    def enable_count(self) -> int:
        return len(self.terms)


def synthesize_controller_logic(
    tree: ClockTree, tech: Technology, or_gate: GateModel = None
) -> ControllerLogic:
    """Build the OR hierarchy for a routed (gated) tree.

    ``or_gate`` models one 2-input OR; defaults to the technology's
    buffer-sized cell (a reasonable stand-in for a small standard
    cell).
    """
    if or_gate is None:
        or_gate = tech.buffer

    # For every gated node: its OR inputs are the enables of its
    # nearest gated descendants; where a subtree below has no gate at
    # all, the inputs are that subtree's raw module lines.
    terms: List[EnableTerm] = []
    used_modules = 0

    def gated_cover(node_id: int) -> List[int]:
        """Nearest gated descendants below (or at) each child edge."""
        cover: List[int] = []
        stack = list(tree.node(node_id).children)
        while stack:
            current = stack.pop()
            node = tree.node(current)
            if node.has_gate:
                cover.append(current)
            elif node.is_sink:
                cover.append(-(current + 1))  # marker: raw module lines
            else:
                stack.extend(node.children)
        return cover

    for node in tree.gates():
        if node.is_sink:
            # A leaf gate's enable is the OR of its module's activity
            # lines (usually a single wire, no OR gate needed).
            fan_in = len(mask_to_modules(node.module_mask))
            used_modules |= node.module_mask
            terms.append(
                EnableTerm(
                    node_id=node.id,
                    fan_in=max(fan_in, 1),
                    transition_probability=node.enable_transition_probability,
                )
            )
            continue
        cover = gated_cover(node.id)
        fan_in = 0
        for entry in cover:
            if entry >= 0:
                fan_in += 1
            else:
                leaf = tree.node(-entry - 1)
                fan_in += len(mask_to_modules(leaf.module_mask))
                used_modules |= leaf.module_mask
        fan_in = max(fan_in, 1)
        terms.append(
            EnableTerm(
                node_id=node.id,
                fan_in=fan_in,
                transition_probability=node.enable_transition_probability,
            )
        )

    or_gates = sum(max(t.fan_in - 1, 0) for t in terms)
    switched = sum(
        or_gate.input_cap * t.transition_probability * max(t.fan_in - 1, 0)
        for t in terms
    )
    return ControllerLogic(
        terms=terms,
        or_gate_count=or_gates,
        area=or_gates * or_gate.area,
        switched_cap=switched,
        module_lines=len(mask_to_modules(used_modules)),
    )
