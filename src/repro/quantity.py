"""Quantity-kind vocabulary: ``Annotated`` aliases for physical kinds.

Every scalar the routing flow computes is a *quantity* of one physical
kind -- a wirelength, a capacitance, an enable probability, a switched
capacitance per cycle.  The paper's objective (Eq. 3) multiplies and
adds these kinds in exactly one legal way; mixing them (adding a
resistance to a capacitance, passing a delay where a length is due) is
a silent bug the type system cannot see, because every kind is a plain
``float``.

This module gives each kind a name the static analyzer understands.
Annotating a parameter, return value, dataclass field or variable with
one of the aliases below declares its kind to ``repro.lint.quantity``
(rules REP008..REP010) without changing runtime behaviour at all:
``Annotated[float, QuantityKind("length_um")]`` *is* ``float`` to the
interpreter and to mypy.

Unit conventions follow :mod:`repro.tech.parameters`: lengths are in
layout units (lambda, the analyzer's ``length_um`` scale unit),
capacitances in pF (``capacitance_fF`` scale unit), resistances in ohm
and delays in ohm*pF Elmore products.  The kind names are scale-free
labels -- the analyzer checks *kinds*, not magnitudes.

The full kind lattice, the composition algebra and the seed catalog
format are documented in ``DESIGN.md`` section 7 (REP008 rule entry).
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # Python >= 3.9 always has Annotated; keep the guard for clarity.
    from typing import Annotated
except ImportError:  # pragma: no cover - repro requires >= 3.9
    raise

__all__ = [
    "AreaUm2",
    "CapPerLength",
    "CapacitanceFF",
    "Count",
    "DelayPs",
    "Dimensionless",
    "LengthUm",
    "NodeId",
    "Probability",
    "QuantityKind",
    "ResPerLength",
    "ResistanceOhm",
    "SwitchedCap",
]


@dataclass(frozen=True)
class QuantityKind:
    """Annotation marker naming the physical kind of a value.

    Instances carry no behaviour; they exist so the quantity analyzer
    (and any future runtime checker) can read the kind name out of
    ``typing.get_type_hints(..., include_extras=True)``.
    """

    name: str


#: Manhattan wirelength / coordinate, layout units (lambda).
LengthUm = Annotated[float, QuantityKind("length_um")]

#: Layout area, lambda^2.
AreaUm2 = Annotated[float, QuantityKind("area_um2")]

#: Lumped capacitance, pF.
CapacitanceFF = Annotated[float, QuantityKind("capacitance_fF")]

#: Wire capacitance per unit length, pF / lambda.
CapPerLength = Annotated[float, QuantityKind("cap_per_length")]

#: Lumped resistance, ohm.
ResistanceOhm = Annotated[float, QuantityKind("resistance_ohm")]

#: Wire resistance per unit length, ohm / lambda.
ResPerLength = Annotated[float, QuantityKind("res_per_length")]

#: Elmore delay, ohm * pF products.
DelayPs = Annotated[float, QuantityKind("delay_ps")]

#: A probability in [0, 1] (signal / transition / enable activity).
Probability = Annotated[float, QuantityKind("probability")]

#: Switched capacitance per clock cycle: probability-weighted pF.
SwitchedCap = Annotated[float, QuantityKind("switched_cap")]

#: Index of a node in a :class:`~repro.cts.topology.ClockTree`.
NodeId = Annotated[int, QuantityKind("node_id")]

#: A cardinality (numbers of sinks, gates, iterations, ...).
Count = Annotated[int, QuantityKind("count")]

#: A declared pure number (ratios, activity factors, weights).
Dimensionless = Annotated[float, QuantityKind("dimensionless")]
