"""ISA and instruction-trace file formats.

Lets users drive the router from their own instruction-level simulator
output instead of the synthetic CPU model:

* **ISA file** (JSON): the RTL usage description (paper Table 1) --
  instruction names mapped to the modules they exercise, plus the
  module universe size.
* **Trace file** (text): one instruction name per line (comments with
  ``#``), i.e. the executed stream the simulator recorded.

``load_workload`` reads both and returns the ready-to-use
:class:`~repro.activity.probability.ActivityOracle`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, TextIO, Union

import numpy as np

from repro.activity.isa import InstructionSet
from repro.activity.probability import ActivityOracle
from repro.activity.stream import InstructionStream
from repro.activity.tables import ActivityTables
from repro.check.errors import InputError

PathLike = Union[str, Path]

ISA_FORMAT_VERSION = 1


def write_isa(isa: InstructionSet, target: Union[PathLike, TextIO]) -> None:
    """Write an ISA description as JSON."""
    data = {
        "format_version": ISA_FORMAT_VERSION,
        "num_modules": isa.num_modules,
        "instructions": {
            instr.name: sorted(instr.modules) for instr in isa.instructions
        },
    }
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1)
        return
    json.dump(data, target, indent=1)


def read_isa(source: Union[PathLike, TextIO]) -> InstructionSet:
    """Read an ISA description written by :func:`write_isa`.

    Malformed files (invalid JSON, wrong version, missing keys, empty
    or out-of-universe instructions) raise a located
    :class:`~repro.check.errors.InputError`.
    """
    if isinstance(source, (str, Path)):
        name = str(source)
        with open(source, "r", encoding="utf-8") as handle:
            return _parse_isa(handle, name)
    return _parse_isa(source, getattr(source, "name", None))


def _parse_isa(handle: TextIO, source) -> InstructionSet:
    try:
        data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise InputError(
            "invalid ISA JSON: %s" % exc, source=source, line=exc.lineno
        ) from exc
    if not isinstance(data, dict):
        raise InputError("ISA file must hold a JSON object", source=source)
    if data.get("format_version") != ISA_FORMAT_VERSION:
        raise InputError(
            "unsupported ISA format version %r" % data.get("format_version"),
            source=source,
            field="format_version",
        )
    try:
        instructions = data["instructions"]
        num_modules = int(data["num_modules"])
    except (KeyError, TypeError, ValueError) as exc:
        raise InputError(
            "ISA file is missing or corrupts a required key: %s" % exc,
            source=source,
        ) from exc
    try:
        return InstructionSet.from_usage_lists(
            usage=[set(mods) for mods in instructions.values()],
            num_modules=num_modules,
            names=list(instructions),
        )
    except (TypeError, ValueError) as exc:
        raise InputError("invalid ISA: %s" % exc, source=source) from exc


def write_trace(
    isa: InstructionSet, stream: InstructionStream, target: Union[PathLike, TextIO]
) -> None:
    """Write a trace as one instruction name per line."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_trace(isa, stream, handle)
        return
    names = isa.names
    target.write("# instruction trace, %d cycles\n" % len(stream))
    for instr_id in stream.ids:
        target.write(names[instr_id] + "\n")


def read_trace(isa: InstructionSet, source: Union[PathLike, TextIO]) -> InstructionStream:
    """Read a trace of instruction names against a known ISA."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_trace(isa, handle)
    name = getattr(source, "name", None)
    index = {instr_name: k for k, instr_name in enumerate(isa.names)}
    ids: List[int] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line not in index:
            raise InputError(
                "line %d: unknown instruction %r" % (lineno, line),
                source=name,
                line=lineno,
            )
        ids.append(index[line])
    if not ids:
        raise InputError("trace contains no instructions", source=name)
    return InstructionStream(ids=np.array(ids, dtype=np.int64))


def load_workload(isa_path: PathLike, trace_path: PathLike) -> ActivityOracle:
    """ISA + trace files -> ready-to-route activity oracle."""
    isa = read_isa(isa_path)
    stream = read_trace(isa, trace_path)
    return ActivityOracle(ActivityTables.from_stream(isa, stream))


def save_workload(
    isa: InstructionSet,
    stream: InstructionStream,
    isa_path: PathLike,
    trace_path: PathLike,
) -> None:
    """Persist a workload so a run can be reproduced bit-for-bit."""
    write_isa(isa, isa_path)
    write_trace(isa, stream, trace_path)
