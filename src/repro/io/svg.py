"""SVG rendering of routed clock networks.

Produces a self-contained SVG picture in the style of the paper's
Fig. 1: the die outline, the embedded clock tree (rectilinear edge
routes from :mod:`repro.cts.routes`, including the actual serpentine
detours of snaked edges, drawn dashed), sinks, masking gates (at the
top of their edge), the controller(s), and optionally the enable star
wiring.
"""

from __future__ import annotations

from typing import List, Optional

from repro.check.errors import ContractError
from repro.core.controller import ControllerLayout, EnableRouting, gate_location
from repro.cts.topology import ClockTree
from repro.geometry.point import Point

_STYLE = {
    "wire": 'stroke="#1565c0" stroke-width="{w}" fill="none"',
    "snaked": 'stroke="#1565c0" stroke-width="{w}" fill="none" stroke-dasharray="{d},{d}"',
    "enable": 'stroke="#9e9e9e" stroke-width="{w}" fill="none" opacity="0.5"',
    "sink": 'fill="#2e7d32"',
    "gate": 'fill="#c62828"',
    "steiner": 'fill="#1565c0"',
    "controller": 'fill="#6a1b9a"',
    "die": 'stroke="#616161" stroke-width="{w}" fill="none"',
}


def _l_route(a: Point, b: Point) -> str:
    """SVG path for an L-shaped (horizontal-then-vertical) route."""
    return "M %.1f %.1f L %.1f %.1f L %.1f %.1f" % (a.x, a.y, b.x, a.y, b.x, b.y)


def render_svg(
    tree: ClockTree,
    routing: Optional[EnableRouting] = None,
    layout: Optional[ControllerLayout] = None,
    width: int = 800,
    show_enables: bool = True,
) -> str:
    """Render the routed network; returns the SVG document as a string."""
    points = [n.location for n in tree.nodes() if n.location is not None]
    if not points:
        raise ContractError("tree is not embedded; nothing to draw")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    if layout is not None:
        xs += [layout.die.x0, layout.die.x1]
        ys += [layout.die.y0, layout.die.y1]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    span = max(x1 - x0, y1 - y0, 1.0)
    margin = 0.03 * span
    view = "%.1f %.1f %.1f %.1f" % (
        x0 - margin,
        y0 - margin,
        (x1 - x0) + 2 * margin,
        (y1 - y0) + 2 * margin,
    )
    wire_w = span / 400.0
    dot = span / 150.0

    parts: List[str] = [
        '<svg xmlns="http://www.w3.org/2000/svg" width="%d" viewBox="%s">'
        % (width, view)
    ]
    if layout is not None:
        die = layout.die
        parts.append(
            '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" %s/>'
            % (die.x0, die.y0, die.width, die.height, _STYLE["die"].format(w=wire_w))
        )

    if routing is not None and show_enables and layout is not None:
        for route in routing.routes:
            node = tree.node(route.node_id)
            pin = gate_location(tree, node)
            ctrl = layout.points[route.controller_index]
            parts.append(
                '<path d="%s" %s/>'
                % (_l_route(ctrl, pin), _STYLE["enable"].format(w=wire_w * 0.8))
            )

    from repro.cts.routes import edge_route

    root_id = tree.root_id
    for node in tree.nodes():
        if node.id == root_id or node.parent is None or node.location is None:
            continue
        route = edge_route(tree, node)
        style = _STYLE["snaked"] if route.snaked else _STYLE["wire"]
        path = "M " + " L ".join("%.1f %.1f" % (p.x, p.y) for p in route.points)
        parts.append('<path d="%s" %s/>' % (path, style.format(w=wire_w, d=dot)))

    for node in tree.nodes():
        if node.location is None:
            continue
        if node.is_sink:
            parts.append(
                '<circle cx="%.1f" cy="%.1f" r="%.1f" %s/>'
                % (node.location.x, node.location.y, dot, _STYLE["sink"])
            )
        elif node.id != root_id:
            parts.append(
                '<circle cx="%.1f" cy="%.1f" r="%.1f" %s/>'
                % (node.location.x, node.location.y, dot * 0.6, _STYLE["steiner"])
            )
        if node.has_gate and node.parent is not None:
            pin = gate_location(tree, node)
            parts.append(
                '<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" %s/>'
                % (pin.x - dot * 0.7, pin.y - dot * 0.7, dot * 1.4, dot * 1.4, _STYLE["gate"])
            )

    if layout is not None:
        for ctrl in layout.points:
            parts.append(
                '<circle cx="%.1f" cy="%.1f" r="%.1f" %s/>'
                % (ctrl.x, ctrl.y, dot * 1.6, _STYLE["controller"])
            )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    tree: ClockTree,
    path: str,
    routing: Optional[EnableRouting] = None,
    layout: Optional[ControllerLayout] = None,
    **kwargs,
) -> None:
    """Render and write to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(tree, routing=routing, layout=layout, **kwargs))
