"""Plain-text sink lists.

Format (whitespace-separated, ``#`` comments)::

    # name  x  y  load_cap  [module]
    s0  1200.0  340.5  0.05  0
    s1  8000.0  910.0  0.03  1

``module`` defaults to the line's position so external sink files
(e.g. converted Tsay benchmarks) can omit it.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Sequence, TextIO, Union

from repro.cts.topology import Sink
from repro.geometry.point import Point

PathLike = Union[str, Path]


def _parse(handle: TextIO) -> List[Sink]:
    sinks: List[Sink] = []
    for lineno, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (4, 5):
            raise ValueError(
                "line %d: expected 'name x y cap [module]', got %r" % (lineno, raw)
            )
        name = parts[0]
        try:
            x, y, cap = (float(p) for p in parts[1:4])
            module = int(parts[4]) if len(parts) == 5 else len(sinks)
        except ValueError as exc:
            raise ValueError("line %d: %s" % (lineno, exc)) from exc
        sinks.append(
            Sink(name=name, location=Point(x, y), load_cap=cap, module=module)
        )
    if not sinks:
        raise ValueError("sink file contains no sinks")
    return sinks


def read_sinks(source: Union[PathLike, TextIO]) -> List[Sink]:
    """Read a sink file (path or open text handle)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle)
    return _parse(source)


def write_sinks(sinks: Sequence[Sink], target: Union[PathLike, TextIO]) -> None:
    """Write sinks in the format :func:`read_sinks` accepts."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_sinks(sinks, handle)
        return
    target.write("# name x y load_cap module\n")
    for sink in sinks:
        target.write(
            "%s %.6f %.6f %.9f %d\n"
            % (sink.name, sink.location.x, sink.location.y, sink.load_cap, sink.module)
        )


def sinks_to_text(sinks: Sequence[Sink]) -> str:
    """The sink file contents as a string."""
    buffer = io.StringIO()
    write_sinks(sinks, buffer)
    return buffer.getvalue()
