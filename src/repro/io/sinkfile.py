"""Plain-text sink lists.

Format (whitespace-separated, ``#`` comments)::

    # name  x  y  load_cap  [module]
    s0  1200.0  340.5  0.05  0
    s1  8000.0  910.0  0.03  1

``module`` defaults to the line's position so external sink files
(e.g. converted Tsay benchmarks) can omit it.
"""

from __future__ import annotations

import io
import math
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

from repro.check.errors import InputError
from repro.cts.topology import Sink
from repro.geometry.point import Point

PathLike = Union[str, Path]


def _parse(handle: TextIO, source: Optional[str] = None) -> List[Sink]:
    sinks: List[Sink] = []
    seen = {}
    for lineno, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (4, 5):
            raise InputError(
                "line %d: expected 'name x y cap [module]', got %r" % (lineno, raw),
                source=source,
                line=lineno,
            )
        name = parts[0]
        try:
            x, y, cap = (float(p) for p in parts[1:4])
            module = int(parts[4]) if len(parts) == 5 else len(sinks)
        except ValueError as exc:
            raise InputError(
                "line %d: %s" % (lineno, exc), source=source, line=lineno
            ) from exc
        for field, value in (("x", x), ("y", y)):
            if not math.isfinite(value):
                raise InputError(
                    "coordinate %s is %r; coordinates must be finite"
                    % (field, value),
                    source=source,
                    line=lineno,
                    field=field,
                )
        if not math.isfinite(cap) or cap < 0:
            raise InputError(
                "load cap is %r; load capacitance must be finite "
                "and non-negative" % cap,
                source=source,
                line=lineno,
                field="load_cap",
            )
        if module < 0:
            raise InputError(
                "module id is %d; module ids must be non-negative" % module,
                source=source,
                line=lineno,
                field="module",
            )
        if name in seen:
            raise InputError(
                "duplicate sink name %r (first defined on line %d); "
                "sink names must be unique" % (name, seen[name]),
                source=source,
                line=lineno,
                field="name",
            )
        seen[name] = lineno
        sinks.append(
            Sink(name=name, location=Point(x, y), load_cap=cap, module=module)
        )
    if not sinks:
        raise InputError("sink file contains no sinks", source=source)
    return sinks


def read_sinks(source: Union[PathLike, TextIO]) -> List[Sink]:
    """Read a sink file (path or open text handle).

    Malformed lines raise :class:`~repro.check.errors.InputError` with
    the offending file, line, and field; NaN/inf coordinates, negative
    or non-finite load caps, negative module ids, and duplicate sink
    names are all rejected here rather than deep inside the DME merge.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle, source=str(source))
    return _parse(source, source=getattr(source, "name", None))


def write_sinks(sinks: Sequence[Sink], target: Union[PathLike, TextIO]) -> None:
    """Write sinks in the format :func:`read_sinks` accepts."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_sinks(sinks, handle)
        return
    target.write("# name x y load_cap module\n")
    for sink in sinks:
        target.write(
            "%s %.6f %.6f %.9f %d\n"
            % (sink.name, sink.location.x, sink.location.y, sink.load_cap, sink.module)
        )


def sinks_to_text(sinks: Sequence[Sink]) -> str:
    """The sink file contents as a string."""
    buffer = io.StringIO()
    write_sinks(sinks, buffer)
    return buffer.getvalue()
