"""JSON (de)serialization of embedded clock trees.

The dictionary form is a faithful dump of every node: topology,
merging segments, placements, electrical edge data, cells and activity
annotations.  ``tree_from_dict(tree_to_dict(t))`` reproduces the tree
exactly (the round-trip property is tested), so routed results can be
archived and re-audited without re-running the router.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.check.errors import InputError
from repro.cts.topology import ClockNode, ClockTree, Sink
from repro.geometry.point import Point
from repro.geometry.trr import Trr
from repro.tech.parameters import GateModel, Technology

FORMAT_VERSION = 1


def _cell_to_dict(cell: Optional[GateModel]) -> Optional[Dict[str, float]]:
    if cell is None:
        return None
    return {
        "input_cap": cell.input_cap,
        "drive_resistance": cell.drive_resistance,
        "intrinsic_delay": cell.intrinsic_delay,
        "area": cell.area,
    }


def _cell_from_dict(data: Optional[Dict[str, float]]) -> Optional[GateModel]:
    if data is None:
        return None
    return GateModel(**data)


def _node_to_dict(node: ClockNode) -> Dict[str, Any]:
    seg = node.merging_segment
    return {
        "id": node.id,
        "children": list(node.children),
        "sink": (
            None
            if node.sink is None
            else {
                "name": node.sink.name,
                "x": node.sink.location.x,
                "y": node.sink.location.y,
                "load_cap": node.sink.load_cap,
                "module": node.sink.module,
            }
        ),
        "merging_segment": [seg.ulo, seg.uhi, seg.vlo, seg.vhi],
        "edge_length": node.edge_length,
        "edge_cell": _cell_to_dict(node.edge_cell),
        "edge_maskable": node.edge_maskable,
        "location": None if node.location is None else [node.location.x, node.location.y],
        "module_mask": hex(node.module_mask),
        "enable_probability": node.enable_probability,
        "enable_transition_probability": node.enable_transition_probability,
        "subtree_cap": node.subtree_cap,
        "sink_delay": node.sink_delay,
        "sink_delay_min": node.sink_delay_min,
        "snaked": node.snaked,
    }


def tree_to_dict(tree: ClockTree) -> Dict[str, Any]:
    """Dump a tree (and the technology it was built with) to a dict."""
    tech = tree.tech
    return {
        "format_version": FORMAT_VERSION,
        "technology": {
            "unit_wire_resistance": tech.unit_wire_resistance,
            "unit_wire_capacitance": tech.unit_wire_capacitance,
            "masking_gate": _cell_to_dict(tech.masking_gate),
            "buffer": _cell_to_dict(tech.buffer),
            "clock_transitions_per_cycle": tech.clock_transitions_per_cycle,
            "wire_width": tech.wire_width,
        },
        "root": tree.root_id,
        "nodes": [_node_to_dict(n) for n in tree.nodes()],
    }


def tree_from_dict(data: Dict[str, Any]) -> ClockTree:
    """Rebuild a tree from :func:`tree_to_dict` output.

    Structural problems (wrong version, missing keys, sparse node ids)
    raise :class:`~repro.check.errors.InputError`.
    """
    if not isinstance(data, dict):
        raise InputError("tree file must hold a JSON object")
    if data.get("format_version") != FORMAT_VERSION:
        raise InputError(
            "unsupported tree format version %r" % data.get("format_version"),
            field="format_version",
        )
    try:
        return _tree_from_dict(data)
    except (KeyError, TypeError) as exc:
        raise InputError(
            "tree file is missing or corrupts a required key: %r" % exc
        ) from exc


def _tree_from_dict(data: Dict[str, Any]) -> ClockTree:
    tdata = data["technology"]
    tech = Technology(
        unit_wire_resistance=tdata["unit_wire_resistance"],
        unit_wire_capacitance=tdata["unit_wire_capacitance"],
        masking_gate=_cell_from_dict(tdata["masking_gate"]),
        buffer=_cell_from_dict(tdata["buffer"]),
        clock_transitions_per_cycle=tdata["clock_transitions_per_cycle"],
        wire_width=tdata["wire_width"],
    )
    tree = ClockTree(tech)
    nodes = sorted(data["nodes"], key=lambda n: n["id"])
    for record in nodes:
        if record["id"] != len(tree):
            raise InputError("node ids must be dense and ordered", node=record["id"])
        if record["sink"] is not None:
            sdata = record["sink"]
            node = tree.add_leaf(
                Sink(
                    name=sdata["name"],
                    location=Point(sdata["x"], sdata["y"]),
                    load_cap=sdata["load_cap"],
                    module=sdata["module"],
                )
            )
        else:
            left, right = record["children"]
            node = tree.add_internal(
                left, right, Trr(*record["merging_segment"])
            )
        node.merging_segment = Trr(*record["merging_segment"])
        node.edge_length = record["edge_length"]
        node.edge_cell = _cell_from_dict(record["edge_cell"])
        node.edge_maskable = record["edge_maskable"]
        if record["location"] is not None:
            node.location = Point(*record["location"])
        node.module_mask = int(record["module_mask"], 16)
        node.enable_probability = record["enable_probability"]
        node.enable_transition_probability = record["enable_transition_probability"]
        node.subtree_cap = record["subtree_cap"]
        node.sink_delay = record["sink_delay"]
        node.sink_delay_min = record.get("sink_delay_min", record["sink_delay"])
        node.snaked = record["snaked"]
    tree.set_root(data["root"])
    return tree


def save_tree(tree: ClockTree, path: Union[str, Path]) -> None:
    """Write a tree to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(tree_to_dict(tree), handle, indent=1)


def load_tree(path: Union[str, Path]) -> ClockTree:
    """Read a tree from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise InputError(
                "invalid tree JSON: %s" % exc, source=str(path), line=exc.lineno
            ) from exc
    try:
        return tree_from_dict(data)
    except InputError as exc:
        if exc.source is not None:
            raise
        raise InputError(
            exc.message,
            source=str(path),
            line=exc.line,
            field=exc.field,
            node=exc.node,
        ) from exc
