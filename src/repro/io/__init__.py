"""File formats: sink lists, tree JSON, SVG layout rendering."""

from repro.io.sinkfile import read_sinks, write_sinks
from repro.io.treejson import tree_from_dict, tree_to_dict, load_tree, save_tree
from repro.io.svg import render_svg

__all__ = [
    "read_sinks",
    "write_sinks",
    "tree_from_dict",
    "tree_to_dict",
    "load_tree",
    "save_tree",
    "render_svg",
]
