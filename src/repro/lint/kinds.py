"""The quantity-kind lattice and its composition algebra.

A :class:`Kind` is a dimension vector over the base dimensions of the
routing flow's cost algebra:

===========  ====================================================
``L``        length (layout units)
``C``        capacitance (pF)
``R``        resistance (ohm)
``P``        probability / activity weighting
``N``        node identity (discrete, never composed)
``K``        cardinality (discrete multiplier)
===========  ====================================================

Named kinds are points in that vector space: ``capacitance_fF`` is
``C^1``, ``delay_ps`` is ``R^1 C^1`` (an Elmore product),
``switched_cap`` is ``P^1 C^1`` (probability-weighted capacitance per
cycle), ``cap_per_length`` is ``C^1 L^-1``, and so on.  The algebra
then falls out of exponent arithmetic:

* ``mul`` / ``div`` add / subtract exponents, so
  ``cap_per_length * length_um -> capacitance_fF`` and
  ``probability * capacitance_fF -> switched_cap`` hold by
  construction.  The ``P`` exponent saturates at one (a product of
  probabilities is still a probability) and the discrete count
  dimension ``K`` is dropped (multiplying by a cardinality rescales a
  quantity, it does not change its kind).  ``node_id`` never composes
  multiplicatively; any product involving it is ``None`` (unknown).
* ``add`` / ``sub`` / ``compare`` require matching vectors.
  ``dimensionless`` (the empty vector) is additively compatible with
  everything -- literal offsets, epsilons and accumulator seeds like
  ``total = 0.0`` must not fire -- and the discrete kinds
  ``node_id`` / ``count`` mix freely with each other (id arithmetic:
  ``nid + offset``, ``nid_a - nid_b``).
* ``unknown`` is represented by ``None`` and is absorbing: anything
  composed with an unknown stays unknown, and compatibility checks
  involving an unknown never fire.  This is what keeps the analysis
  quiet on unannotated code ("unknown propagates without cascading
  noise").

The functions in this module are pure and total; they are exercised
directly by the hypothesis property tests in
``tests/test_lint_kinds.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "DIMENSIONLESS",
    "Kind",
    "NAMED_KINDS",
    "add",
    "comparable",
    "display",
    "divide",
    "join",
    "multiply",
    "named",
    "power",
    "sqrt",
]

#: Base dimensions, in canonical display order.
_BASES = ("L", "C", "R", "P", "N", "K")

#: Discrete dimensions: identity-like, excluded from the vector algebra.
_DISCRETE = ("N", "K")


@dataclass(frozen=True)
class Kind:
    """A quantity kind: a sorted, zero-free dimension-exponent vector."""

    dims: Tuple[Tuple[str, int], ...] = ()

    def exponent(self, base: str) -> int:
        for dim, exp in self.dims:
            if dim == base:
                return exp
        return 0

    @property
    def is_dimensionless(self) -> bool:
        return not self.dims

    @property
    def is_discrete(self) -> bool:
        """A pure ``node_id`` / ``count`` kind (no physical dimension)."""
        return bool(self.dims) and all(dim in _DISCRETE for dim, _ in self.dims)

    def __str__(self) -> str:
        return display(self)


def _make(exponents: Dict[str, int]) -> Kind:
    dims = tuple(
        (base, exponents[base])
        for base in _BASES
        if exponents.get(base, 0) != 0
    )
    return Kind(dims=dims)


#: The empty vector: a declared pure number.
DIMENSIONLESS = Kind()

#: Every named kind of the lattice, as seeded by ``repro.quantity``.
NAMED_KINDS: Dict[str, Kind] = {
    "dimensionless": DIMENSIONLESS,
    "length_um": _make({"L": 1}),
    "area_um2": _make({"L": 2}),
    "capacitance_fF": _make({"C": 1}),
    "cap_per_length": _make({"C": 1, "L": -1}),
    "resistance_ohm": _make({"R": 1}),
    "res_per_length": _make({"R": 1, "L": -1}),
    "delay_ps": _make({"R": 1, "C": 1}),
    "probability": _make({"P": 1}),
    "switched_cap": _make({"P": 1, "C": 1}),
    "node_id": _make({"N": 1}),
    "count": _make({"K": 1}),
}

#: Reverse map for display; built once, deterministic (first name wins
#: in the insertion order above, and the vectors are all distinct).
_VECTOR_NAMES: Dict[Kind, str] = {}
for _name, _kind in NAMED_KINDS.items():
    _VECTOR_NAMES.setdefault(_kind, _name)


def named(name: str) -> Optional[Kind]:
    """The named kind, or ``None`` for unknown names."""
    return NAMED_KINDS.get(name)


def display(kind: Optional[Kind]) -> str:
    """Human-readable form: the lattice name, else the dimension vector."""
    if kind is None:
        return "unknown"
    label = _VECTOR_NAMES.get(kind)
    if label is not None:
        return label
    parts = []
    for base, exp in kind.dims:
        parts.append(base if exp == 1 else "%s^%d" % (base, exp))
    return "*".join(parts)


def _normalize(exponents: Dict[str, int]) -> Optional[Kind]:
    """Clamp / reduce a raw exponent vector after a product.

    * ``P`` saturates at 1 (and floors at 0): products of probabilities
      are probabilities, and dividing a probability-weighted quantity
      by a probability recovers the unweighted kind at worst.
    * ``K`` (count) is dropped: cardinalities scale, they don't type.
    * any ``N`` (node id) involvement poisons the product to unknown.
    """
    if exponents.get("N", 0) != 0:
        return None
    exponents = dict(exponents)
    exponents["K"] = 0
    p = exponents.get("P", 0)
    exponents["P"] = min(max(p, 0), 1)
    return _make(exponents)


def multiply(a: Optional[Kind], b: Optional[Kind]) -> Optional[Kind]:
    """The kind of ``a * b`` (``None`` when either side is unknown)."""
    if a is None or b is None:
        return None
    exponents = {base: a.exponent(base) + b.exponent(base) for base in _BASES}
    return _normalize(exponents)


def divide(a: Optional[Kind], b: Optional[Kind]) -> Optional[Kind]:
    """The kind of ``a / b`` (``None`` when either side is unknown)."""
    if a is None or b is None:
        return None
    exponents = {base: a.exponent(base) - b.exponent(base) for base in _BASES}
    return _normalize(exponents)


def power(a: Optional[Kind], exponent: int) -> Optional[Kind]:
    """The kind of ``a ** exponent`` for an integer literal exponent."""
    if a is None:
        return None
    exponents = {base: a.exponent(base) * exponent for base in _BASES}
    return _normalize(exponents)


def sqrt(a: Optional[Kind]) -> Optional[Kind]:
    """The kind of ``sqrt(a)``: even vectors halve, others go unknown."""
    if a is None:
        return None
    if a.is_dimensionless:
        return DIMENSIONLESS
    if any(exp % 2 for _, exp in a.dims):
        return None
    exponents = {base: a.exponent(base) // 2 for base in _BASES}
    return _normalize(exponents)


def _additive(a: Kind, b: Kind) -> Optional[Kind]:
    """The merged kind of a legal ``a + b``; ``None`` when illegal."""
    if a == b:
        return a
    if a.is_dimensionless:
        return b
    if b.is_dimensionless:
        return a
    if a.is_discrete and b.is_discrete:
        # node ids absorb counts: nid + offset is still an id.
        if a.exponent("N") or b.exponent("N"):
            return NAMED_KINDS["node_id"]
        return NAMED_KINDS["count"]
    return None


def add(
    a: Optional[Kind], b: Optional[Kind]
) -> Tuple[Optional[Kind], bool]:
    """The kind of ``a + b`` / ``a - b`` and whether the mix is legal.

    Unknown operands are always legal and keep the result unknown
    (no cascading noise); the boolean is ``False`` exactly when both
    kinds are known and incompatible.
    """
    if a is None or b is None:
        return None, True
    merged = _additive(a, b)
    if merged is None:
        return None, False
    return merged, True


def comparable(a: Optional[Kind], b: Optional[Kind]) -> bool:
    """May ``a`` be ordered/equated against ``b``? (Same lattice rule
    as addition: comparing a delay with a capacitance is meaningless.)
    """
    _, ok = add(a, b)
    return ok


def join(a: Optional[Kind], b: Optional[Kind]) -> Optional[Kind]:
    """Least upper bound for merge points (branches, ``min``/``max``).

    Equal kinds join to themselves, a dimensionless side yields to the
    other (literal arms of a ``min`` / ternary), anything else is
    unknown -- never a finding.
    """
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a.is_dimensionless:
        return b
    if b.is_dimensionless:
        return a
    return None
