"""Whole-project index: modules, imports, definitions, call graph.

The per-module rules (REP001..REP007) see one file at a time; the
quantity and fork-safety analyses (REP008..REP012) are *inter*\\
procedural -- a kind inferred in ``repro.rc.elmore`` must flow through
a call in ``repro.core.cost``, and a tracer touch three calls below a
worker function must surface at the submission site.  This module
builds the shared structure those analyses walk:

* a dotted **module name** per scanned file (``src/repro/cts/dme.py``
  -> ``repro.cts.dme``), so intra-project imports resolve;
* per module, the **import map** (local binding -> qualified target,
  including function-local imports) and the **definition index**
  (functions, classes, methods, module-level assignments);
* per function, every **call site** with its best-effort resolution:
  a fully qualified name when the callee is reachable through the
  import map / local definitions / ``self``, else the bare method
  name for receiver-typed resolution by the analyses.

Everything is pure AST -- nothing under analysis is imported -- and
every container is built in deterministic (path, line) order.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.model import ModuleSource, qualified_name

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectContext",
    "ProjectIndex",
    "module_name_for_path",
]

_BUILTIN_NAMES = frozenset(dir(builtins))


def module_name_for_path(path: str) -> str:
    """Dotted module name of a project-relative posix path.

    ``src/`` prefixes are stripped (the repo's layout), package
    ``__init__`` files take the package name, and any remaining path
    becomes its dotted form -- good enough for the scanned set to
    cross-reference itself, which is all the analyses need.
    """
    name = path[:-3] if path.endswith(".py") else path
    if name.startswith("src/"):
        name = name[len("src/"):]
    parts = [p for p in name.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    resolved: Optional[str]
    """Fully qualified callee (``repro.obs.get_tracer``) when the
    import map / local defs / ``self`` pin it down, else ``None``."""

    attr: Optional[str]
    """Bare method name for unresolved ``receiver.method(...)`` calls."""

    receiver: Optional[ast.AST] = None
    """The receiver expression of an attribute call, for typed
    resolution by the analyses."""


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    nested_names: Set[str] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)
    uses_globals: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def args(self) -> ast.arguments:
        return self.node.args  # type: ignore[attr-defined]


@dataclass
class ClassInfo:
    """One class definition: its methods and annotated fields."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    field_annotations: Dict[str, ast.AST] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One scanned module and its locally visible names."""

    source: ModuleSource
    name: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    mutable_globals: Set[str] = field(default_factory=set)
    global_annotations: Dict[str, ast.AST] = field(default_factory=dict)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("dict", "list", "set", "defaultdict", "Counter", "deque")
    )


class ProjectIndex:
    """Cross-module symbol and call-site index over the scanned set."""

    def __init__(self, modules: Sequence[ModuleSource]):
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method name -> qualnames of every project method so named
        self.methods_by_name: Dict[str, List[str]] = {}
        for source in modules:
            info = ModuleInfo(source=source, name=module_name_for_path(source.path))
            self.modules[info.name] = info
        for info in self.modules.values():
            self._collect_imports(info)
            self._collect_definitions(info)
        for info in self.modules.values():
            for function in info.functions.values():
                self._collect_calls(function)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _collect_imports(self, info: ModuleInfo) -> None:
        package = info.name.rsplit(".", 1)[0] if "." in info.name else ""
        for node in ast.walk(info.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = info.name.split(".")
                    # one level strips the module itself, further
                    # levels strip enclosing packages
                    base_parts = parts[: len(parts) - node.level]
                    base = ".".join(base_parts)
                    if node.module:
                        base = base + "." + node.module if base else node.module
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = (
                        base + "." + alias.name if base else alias.name
                    )

    def _collect_definitions(self, info: ModuleInfo) -> None:
        for node in info.source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=info.name + "." + node.name if info.name else node.name,
                    module=info,
                    node=node,
                )
                info.classes[node.name] = cls
                self.classes[cls.qualname] = cls
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        function = self._add_function(
                            info, item, class_name=node.name
                        )
                        cls.methods[item.name] = function
                        self.methods_by_name.setdefault(item.name, []).append(
                            function.qualname
                        )
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        cls.field_annotations[item.target.id] = item.annotation
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and _is_mutable_literal(
                        node.value
                    ):
                        info.mutable_globals.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                info.global_annotations[node.target.id] = node.annotation

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        middle = class_name + "." if class_name else ""
        qualname = (info.name + "." if info.name else "") + middle + name
        function = FunctionInfo(
            qualname=qualname, module=info, node=node, class_name=class_name
        )
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function.nested_names.add(inner.name)
            elif isinstance(inner, ast.Global):
                function.uses_globals.update(inner.names)
        info.functions[middle + name] = function
        self.functions[qualname] = function
        return function

    def _collect_calls(self, function: FunctionInfo) -> None:
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.resolve_callable(function, node.func)
            attr = None
            receiver = None
            if resolved is None and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = node.func.value
            function.calls.append(
                CallSite(node=node, resolved=resolved, attr=attr, receiver=receiver)
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_name(self, info: ModuleInfo, dotted: str) -> Optional[str]:
        """Qualify a dotted name as seen from ``info``'s namespace.

        Tries the longest import-map prefix first, then module-local
        definitions, then builtins.  Returns ``None`` for names the
        module cannot see statically.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            target = info.imports.get(prefix)
            if target is not None:
                rest = parts[cut:]
                return ".".join([target] + rest) if rest else target
        head = parts[0]
        if head in info.functions or head in info.classes:
            qualified = (info.name + "." if info.name else "") + dotted
            return qualified
        if head == "self":
            return None
        if len(parts) == 1 and head in _BUILTIN_NAMES:
            return "builtins." + head
        return None

    def resolve_callable(
        self, function: FunctionInfo, func: ast.AST
    ) -> Optional[str]:
        """Best-effort qualified name of a call's callee."""
        dotted = qualified_name(func)
        if dotted is None:
            return None
        info = function.module
        if dotted.startswith("self.") and function.class_name is not None:
            rest = dotted[len("self."):]
            if "." not in rest:
                cls = info.classes.get(function.class_name)
                if cls is not None and rest in cls.methods:
                    return cls.methods[rest].qualname
            return None
        return self.resolve_name(info, dotted)

    def function_for(self, qualname: Optional[str]) -> Optional[FunctionInfo]:
        if qualname is None:
            return None
        return self.functions.get(qualname)

    def class_for(self, qualname: Optional[str]) -> Optional[ClassInfo]:
        if qualname is None:
            return None
        return self.classes.get(qualname)

    def unambiguous_method(self, name: str) -> Optional[FunctionInfo]:
        """The single project method with this bare name, if unique."""
        qualnames = self.methods_by_name.get(name)
        if qualnames is not None and len(qualnames) == 1:
            return self.functions.get(qualnames[0])
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """All functions, in deterministic (path, line) order."""
        ordered = sorted(
            self.functions.values(),
            key=lambda f: (f.module.source.path, f.node.lineno),  # type: ignore[attr-defined]
        )
        return iter(ordered)

    # ------------------------------------------------------------------
    # call-graph reachability
    # ------------------------------------------------------------------
    def reachable_from(
        self, roots: Sequence[FunctionInfo]
    ) -> Tuple[Dict[str, Optional[str]], List[FunctionInfo]]:
        """BFS closure over project-internal call edges.

        Returns ``(parents, order)``: the BFS tree (callee qualname ->
        caller qualname, roots mapping to ``None``) and the functions
        in visit order.  Method-name edges resolve only when the bare
        name is project-unique -- an ambiguous name could fan out to
        dozens of unrelated classes and drown the fork-safety rules in
        noise; the submission-site tests pin the behaviour.
        """
        parents: Dict[str, Optional[str]] = {}
        order: List[FunctionInfo] = []
        queue: List[FunctionInfo] = []
        for root in roots:
            if root.qualname not in parents:
                parents[root.qualname] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            order.append(current)
            for site in current.calls:
                callee = self.function_for(site.resolved)
                if callee is None and site.attr is not None:
                    callee = self.unambiguous_method(site.attr)
                if callee is None and site.resolved is not None:
                    # A resolved class: treat instantiation as a call
                    # of __init__ so worker-side construction is walked.
                    cls = self.class_for(site.resolved)
                    if cls is not None:
                        callee = cls.methods.get("__init__")
                if callee is not None and callee.qualname not in parents:
                    parents[callee.qualname] = current.qualname
                    queue.append(callee)
        return parents, order

    def call_chain(
        self, parents: Dict[str, Optional[str]], qualname: str
    ) -> List[str]:
        """Root-to-function path through the BFS tree, for messages."""
        chain = [qualname]
        seen = {qualname}
        parent = parents.get(qualname)
        while parent is not None and parent not in seen:
            chain.append(parent)
            seen.add(parent)
            parent = parents.get(parent)
        chain.reverse()
        return chain


class ProjectContext:
    """What the engine hands to every project rule for one run.

    Wraps the :class:`ProjectIndex` over the scanned modules plus a
    memo table, so the quantity and fork-safety rules (which share one
    expensive analysis each across several rule codes) run their
    analysis exactly once per lint invocation.
    """

    def __init__(self, modules: Sequence[ModuleSource]):
        self.index = ProjectIndex(modules)
        self._memo: Dict[str, object] = {}

    def memo(self, key: str, builder: "Callable[[ProjectIndex], object]") -> object:
        if key not in self._memo:
            self._memo[key] = builder(self.index)
        return self._memo[key]
