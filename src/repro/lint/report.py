"""Text and JSON reporters for lint results.

The text reporter prints one :meth:`Finding.diagnostic` line per
finding -- the same ``source: line N: message`` shape as
``repro.check.errors`` -- followed by a per-rule summary.  The JSON
reporter emits a stable machine-readable document (schema below) for
CI annotation tooling.

JSON schema (``version`` 2; version 1 lacked ``stale_noqa``)::

    {"version": 2,
     "tool": "repro-lint",
     "clean": bool,
     "files_scanned": int,
     "suppressed": int,
     "baselined": int,
     "stale_baseline": int,
     "stale_noqa": [{"path", "line", "codes", "snippet"}, ...],
     "counts": {"REP002": 3, ...},
     "findings": [{"rule", "path", "line", "col",
                   "message", "snippet", "fingerprint"}, ...]}

``stale_noqa[].codes`` is the sorted list of rule codes the comment
names, or ``null`` for a blanket ``# repro: noqa``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintResult
from repro.lint.rules import rule_catalog

REPORT_VERSION = 2


def render_text(result: LintResult) -> str:
    """Human-readable report: diagnostics then a summary block."""
    lines: List[str] = [f.diagnostic() for f in result.findings]
    if result.findings:
        lines.append("")
        catalog = rule_catalog()
        for code, count in result.counts().items():
            rule = catalog.get(code)
            title = rule.title if rule is not None else "unknown rule"
            lines.append("%s  %3d  %s" % (code, count, title))
        lines.append("")
    tail = "%d file(s) scanned, %d finding(s)" % (
        result.files_scanned,
        len(result.findings),
    )
    extras = []
    if result.suppressed:
        extras.append("%d suppressed" % result.suppressed)
    if result.baselined:
        extras.append("%d baselined" % result.baselined)
    if result.stale_baseline:
        extras.append("%d stale baseline entr(y/ies)" % result.stale_baseline)
    if result.stale_noqa:
        extras.append("%d stale noqa comment(s)" % len(result.stale_noqa))
    if extras:
        tail += " (%s)" % ", ".join(extras)
    lines.append(tail)
    return "\n".join(lines)


def report_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON document as a plain dict (schema above)."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "clean": result.clean,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": result.stale_baseline,
        "stale_noqa": [
            {
                "path": entry.path,
                "line": entry.line,
                "codes": list(entry.codes) if entry.codes is not None else None,
                "snippet": entry.snippet,
            }
            for entry in result.stale_noqa
        ],
        "counts": result.counts(),
        "findings": [f.as_dict() for f in result.findings],
    }


def render_json(result: LintResult) -> str:
    """The JSON report, sorted keys, newline-terminated."""
    return json.dumps(report_dict(result), indent=2, sort_keys=True) + "\n"
