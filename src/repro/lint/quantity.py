"""Interprocedural quantity-kind inference (rules REP008..REP010).

The analysis assigns every expression a :class:`~repro.lint.kinds.Kind`
-- ``length_um``, ``capacitance_fF``, ``switched_cap``, ... or unknown
-- and checks the three places where kind confusion turns into silent
numeric bugs:

* **REP008** -- ``+`` / ``-`` / comparisons over incompatible kinds
  (adding a resistance to a capacitance, comparing a delay against a
  wirelength);
* **REP009** -- a call argument whose inferred kind contradicts the
  parameter's declared kind;
* **REP010** -- a function whose body returns a kind that contradicts
  its declared return kind.

Kinds enter the system through declarations only -- the ``Annotated``
aliases of :mod:`repro.quantity` on parameters, returns and dataclass
fields, plus the seed tables of :mod:`repro.lint.quantities` for
attributes and callables that cannot carry an alias.  There is no
identifier guessing (that is REP001's heuristic layer); everything
else starts *unknown*, and unknown absorbs silently, so an unannotated
module produces zero findings.

Propagation is flow-sensitive within a function (assignments,
augmented assignments, loop targets, comprehensions) and
interprocedural across the scanned set: a **fixed-point pass** infers
missing return kinds from function bodies through the
:class:`~repro.lint.project.ProjectIndex` call graph -- summaries only
ever move from unknown to known, so the iteration terminates -- and a
final emission pass walks every function once more with the converged
summaries to produce findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint import kinds as K
from repro.lint import quantities as Q
from repro.lint.kinds import Kind
from repro.lint.model import ModuleSource, qualified_name
from repro.lint.project import ClassInfo, FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "FunctionSummary",
    "QuantityAnalysis",
    "RawFinding",
    "annotation_kind",
]

#: Fixed-point iteration cap; summaries only move unknown -> known, so
#: convergence is bounded by the call-graph depth anyway.
MAX_PASSES = 8


@dataclass(frozen=True)
class RawFinding:
    """An analysis finding before engine packaging."""

    code: str
    module: ModuleSource
    node: ast.AST
    message: str


#: Container annotation heads whose *element* kind indexing/iteration
#: recovers: ``List[LengthUm]``, ``Sequence[CapacitanceFF]``, ...
_ELEMENT_CONTAINERS = frozenset(
    {"List", "Sequence", "Tuple", "Set", "FrozenSet", "Iterable", "Iterator"}
)

#: Mapping heads: the *value* type carries the kind.
_MAPPING_CONTAINERS = frozenset({"Dict", "Mapping", "MutableMapping", "DefaultDict"})


def annotation_kind(annotation: Optional[ast.AST]) -> Optional[Kind]:
    """The kind declared by an annotation expression, if any.

    Recognizes the :mod:`repro.quantity` aliases by terminal name
    (``LengthUm``, ``q.LengthUm``), ``Optional[...]`` / ``Annotated``
    wrappers, inline ``Annotated[float, QuantityKind("name")]``, and
    homogeneous containers (``List[LengthUm]``,
    ``Dict[int, CapacitanceFF]``) whose element kind subscripting and
    iteration recover.
    """
    if annotation is None:
        return None
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        return Q.alias_kind(qualified_name(annotation))
    if isinstance(annotation, ast.Subscript):
        head = qualified_name(annotation.value)
        tail = head.rsplit(".", 1)[-1] if head else None
        inner: ast.AST = annotation.slice
        if isinstance(inner, ast.Index):  # pragma: no cover - py38 shape
            inner = inner.value  # type: ignore[attr-defined]
        if tail == "Optional":
            return annotation_kind(inner)
        if tail == "Annotated":
            if isinstance(inner, ast.Tuple) and len(inner.elts) >= 2:
                marker = inner.elts[1]
                if (
                    isinstance(marker, ast.Call)
                    and qualified_name(marker.func) is not None
                    and qualified_name(marker.func).rsplit(".", 1)[-1]
                    == "QuantityKind"
                    and marker.args
                    and isinstance(marker.args[0], ast.Constant)
                    and isinstance(marker.args[0].value, str)
                ):
                    return K.named(marker.args[0].value)
                return annotation_kind(inner.elts[0])
        if tail in _ELEMENT_CONTAINERS:
            if isinstance(inner, ast.Tuple):
                element_kinds = {
                    annotation_kind(e)
                    for e in inner.elts
                    if not (isinstance(e, ast.Constant) and e.value is Ellipsis)
                }
                if len(element_kinds) == 1:
                    return element_kinds.pop()
                return None
            return annotation_kind(inner)
        if tail in _MAPPING_CONTAINERS:
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return annotation_kind(inner.elts[1])
    return None


def annotation_class(
    index: ProjectIndex, info: ModuleInfo, annotation: Optional[ast.AST]
) -> Optional[str]:
    """The project class qualname an annotation names, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: resolve the bare head name.
        resolved = index.resolve_name(info, annotation.value.split("[", 1)[0])
    elif isinstance(annotation, (ast.Name, ast.Attribute)):
        dotted = qualified_name(annotation)
        resolved = index.resolve_name(info, dotted) if dotted else None
    elif isinstance(annotation, ast.Subscript):
        head = qualified_name(annotation.value)
        tail = head.rsplit(".", 1)[-1] if head else None
        if tail == "Optional":
            inner: ast.AST = annotation.slice
            return annotation_class(index, info, inner)
        return None
    else:
        return None
    if resolved is not None and index.class_for(resolved) is not None:
        return resolved
    return None


@dataclass
class FunctionSummary:
    """Declared-plus-inferred kind signature of one function."""

    param_order: List[str] = field(default_factory=list)
    param_kinds: Dict[str, Optional[Kind]] = field(default_factory=dict)
    param_classes: Dict[str, Optional[str]] = field(default_factory=dict)
    return_kind: Optional[Kind] = None
    declared_return: bool = False


class QuantityAnalysis:
    """The whole-project kind inference and its three rules."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.attribute_kinds: Dict[str, Optional[Kind]] = dict(Q.ATTRIBUTE_KINDS)
        self.summaries: Dict[str, FunctionSummary] = {}
        self._build_catalog()

    # ------------------------------------------------------------------
    # catalog: declarations -> seeds
    # ------------------------------------------------------------------
    def _register_attribute(self, name: str, kind: Optional[Kind]) -> None:
        """Register a declared field kind; contradictions disable the
        name project-wide (a ``None`` entry) rather than guessing."""
        if kind is None:
            return
        existing = self.attribute_kinds.get(name, kind)
        self.attribute_kinds[name] = kind if existing == kind else None

    def _build_catalog(self) -> None:
        for cls in self.index.classes.values():
            for field_name, annotation in cls.field_annotations.items():
                self._register_attribute(field_name, annotation_kind(annotation))
        for function in self.index.functions.values():
            self.summaries[function.qualname] = self._declared_summary(function)
            for node in ast.walk(function.node):
                if (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Attribute)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id == "self"
                ):
                    self._register_attribute(
                        node.target.attr, annotation_kind(node.annotation)
                    )

    def _declared_summary(self, function: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary()
        args = function.args
        ordered = list(args.posonlyargs) + list(args.args)
        for arg in ordered + list(args.kwonlyargs):
            summary.param_order.append(arg.arg) if arg in ordered else None
            summary.param_kinds[arg.arg] = annotation_kind(arg.annotation)
            summary.param_classes[arg.arg] = annotation_class(
                self.index, function.module, arg.annotation
            )
        returns = getattr(function.node, "returns", None)
        kind = annotation_kind(returns)
        if kind is not None:
            summary.return_kind = kind
            summary.declared_return = True
        return summary

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> List[RawFinding]:
        """Fixed-point inference, then one emission pass."""
        for _ in range(MAX_PASSES):
            changed = False
            for function in self.index.iter_functions():
                summary = self.summaries[function.qualname]
                if summary.declared_return or summary.return_kind is not None:
                    continue
                walker = _FunctionWalker(self, function, emit=False)
                inferred = walker.run()
                if inferred is not None:
                    summary.return_kind = inferred
                    changed = True
            if not changed:
                break
        findings: List[RawFinding] = []
        for function in self.index.iter_functions():
            walker = _FunctionWalker(self, function, emit=True)
            walker.run()
            findings.extend(walker.findings)
        for info in sorted(self.index.modules.values(), key=lambda m: m.source.path):
            walker = _ModuleWalker(self, info)
            walker.run()
            findings.extend(walker.findings)
        return findings


class _FrameBase:
    """Shared expression/statement machinery of the two walkers."""

    def __init__(self, analysis: QuantityAnalysis, info: ModuleInfo, emit: bool):
        self.analysis = analysis
        self.index = analysis.index
        self.info = info
        self.emit = emit
        self.env: Dict[str, Optional[Kind]] = {}
        self.types: Dict[str, Optional[str]] = {}
        self.findings: List[RawFinding] = []
        self.return_kinds: List[Optional[Kind]] = []
        self.function: Optional[FunctionInfo] = None

    # -- findings ------------------------------------------------------
    def _report(self, code: str, node: ast.AST, message: str) -> None:
        if self.emit:
            self.findings.append(
                RawFinding(
                    code=code, module=self.info.source, node=node, message=message
                )
            )

    # -- expression kinds ---------------------------------------------
    def kind_of(self, node: Optional[ast.AST]) -> Optional[Kind]:
        if node is None:
            return None
        method = getattr(self, "_kind_" + type(node).__name__, None)
        if method is None:
            return None
        return method(node)

    def _kind_Constant(self, node: ast.Constant) -> Optional[Kind]:
        if isinstance(node.value, bool):
            return K.DIMENSIONLESS
        if isinstance(node.value, (int, float)):
            return K.DIMENSIONLESS
        return None

    def _kind_Name(self, node: ast.Name) -> Optional[Kind]:
        if node.id in self.env:
            return self.env[node.id]
        annotation = self.info.global_annotations.get(node.id)
        if annotation is not None:
            return annotation_kind(annotation)
        return None

    def _kind_Attribute(self, node: ast.Attribute) -> Optional[Kind]:
        return self.analysis.attribute_kinds.get(node.attr)

    def _kind_Subscript(self, node: ast.Subscript) -> Optional[Kind]:
        # Indexing/slicing a homogeneous container of a kind yields
        # that kind (NodeArrays columns, lists of lengths).
        return self.kind_of(node.value)

    def _kind_Starred(self, node: ast.Starred) -> Optional[Kind]:
        return self.kind_of(node.value)

    def _kind_UnaryOp(self, node: ast.UnaryOp) -> Optional[Kind]:
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.kind_of(node.operand)
        if isinstance(node.op, ast.Not):
            self.kind_of(node.operand)
            return K.DIMENSIONLESS
        return None

    def _kind_BoolOp(self, node: ast.BoolOp) -> Optional[Kind]:
        result: Optional[Kind] = self.kind_of(node.values[0])
        for value in node.values[1:]:
            result = K.join(result, self.kind_of(value))
        return result

    def _kind_IfExp(self, node: ast.IfExp) -> Optional[Kind]:
        self.kind_of(node.test)
        return K.join(self.kind_of(node.body), self.kind_of(node.orelse))

    def _kind_Await(self, node: ast.Await) -> Optional[Kind]:
        return self.kind_of(node.value)

    def _kind_BinOp(self, node: ast.BinOp) -> Optional[Kind]:
        left = self.kind_of(node.left)
        right = self.kind_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            merged, ok = K.add(left, right)
            if not ok:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self._report(
                    "REP008",
                    node,
                    "incompatible quantity kinds: %s %s %s"
                    % (K.display(left), op, K.display(right)),
                )
            return merged
        if isinstance(node.op, ast.Mult):
            return K.multiply(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return K.divide(left, right)
        if isinstance(node.op, ast.Pow):
            if isinstance(node.right, ast.Constant) and isinstance(
                node.right.value, int
            ):
                return K.power(left, node.right.value)
            return None
        return None

    def _kind_Compare(self, node: ast.Compare) -> Optional[Kind]:
        operands = [node.left] + list(node.comparators)
        operand_kinds = [self.kind_of(o) for o in operands]
        for i, op in enumerate(node.ops):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            a, b = operand_kinds[i], operand_kinds[i + 1]
            if not K.comparable(a, b):
                self._report(
                    "REP008",
                    node,
                    "comparison across quantity kinds: %s vs %s"
                    % (K.display(a), K.display(b)),
                )
        return K.DIMENSIONLESS

    def _comprehension_env(self, generators: Sequence[ast.comprehension]) -> None:
        for gen in generators:
            element = self.kind_of(gen.iter)
            self._bind_target(gen.target, element)
            for cond in gen.ifs:
                self.kind_of(cond)

    def _kind_GeneratorExp(self, node: ast.GeneratorExp) -> Optional[Kind]:
        saved_env, saved_types = dict(self.env), dict(self.types)
        try:
            self._comprehension_env(node.generators)
            return self.kind_of(node.elt)
        finally:
            self.env, self.types = saved_env, saved_types

    def _kind_ListComp(self, node: ast.ListComp) -> Optional[Kind]:
        return self._kind_GeneratorExp(node)  # type: ignore[arg-type]

    def _kind_SetComp(self, node: ast.SetComp) -> Optional[Kind]:
        return self._kind_GeneratorExp(node)  # type: ignore[arg-type]

    def _kind_DictComp(self, node: ast.DictComp) -> Optional[Kind]:
        saved_env, saved_types = dict(self.env), dict(self.types)
        try:
            self._comprehension_env(node.generators)
            self.kind_of(node.key)
            return self.kind_of(node.value)
        finally:
            self.env, self.types = saved_env, saved_types

    # -- calls ---------------------------------------------------------
    def _receiver_class(self, receiver: Optional[ast.AST]) -> Optional[ClassInfo]:
        if receiver is None:
            return None
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and self.function is not None:
                if self.function.class_name is not None:
                    cls = self.function.module.classes.get(self.function.class_name)
                    return cls
            return self.index.class_for(self.types.get(receiver.id))
        return None

    def _callee_summary(
        self, node: ast.Call
    ) -> Tuple[Optional[FunctionSummary], Optional[str], bool]:
        """(summary, display name, skip_first_param) of the callee."""
        resolved = None
        if self.function is not None:
            resolved = self.index.resolve_callable(self.function, node.func)
        else:
            dotted = qualified_name(node.func)
            resolved = (
                self.index.resolve_name(self.info, dotted) if dotted else None
            )
        if resolved is not None:
            target = self.index.function_for(resolved)
            if target is not None:
                summary = self.analysis.summaries.get(target.qualname)
                return summary, target.qualname, target.is_method
        if isinstance(node.func, ast.Attribute):
            cls = self._receiver_class(node.func.value)
            if cls is not None:
                method = cls.methods.get(node.func.attr)
                if method is not None:
                    summary = self.analysis.summaries.get(method.qualname)
                    return summary, method.qualname, True
            method_info = self.index.unambiguous_method(node.func.attr)
            if method_info is not None:
                summary = self.analysis.summaries.get(method_info.qualname)
                return summary, method_info.qualname, True
        return None, None, False

    def _check_call_args(
        self,
        node: ast.Call,
        summary: FunctionSummary,
        callee: str,
        skip_first: bool,
        arg_kinds: Dict[int, Optional[Kind]],
        kw_kinds: Dict[str, Optional[Kind]],
    ) -> None:
        order = summary.param_order[1:] if skip_first else summary.param_order
        if any(isinstance(a, ast.Starred) for a in node.args):
            return
        for position, arg in enumerate(node.args):
            if position >= len(order):
                break
            self._check_one_arg(
                node.args[position],
                arg_kinds.get(position),
                summary.param_kinds.get(order[position]),
                order[position],
                callee,
            )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            self._check_one_arg(
                keyword.value,
                kw_kinds.get(keyword.arg),
                summary.param_kinds.get(keyword.arg),
                keyword.arg,
                callee,
            )

    def _check_one_arg(
        self,
        node: ast.AST,
        arg_kind: Optional[Kind],
        param_kind: Optional[Kind],
        param: str,
        callee: str,
    ) -> None:
        if arg_kind is None or param_kind is None:
            return
        if K.comparable(arg_kind, param_kind):
            return
        self._report(
            "REP009",
            node,
            "argument %r of %s() takes %s, got %s"
            % (param, callee.rsplit(".", 1)[-1], K.display(param_kind), K.display(arg_kind)),
        )

    def _constructor_summary(
        self, resolved: Optional[str]
    ) -> Tuple[Optional[FunctionSummary], Optional[str]]:
        """A synthetic summary for dataclass-style constructors."""
        cls = self.index.class_for(resolved)
        if cls is None:
            return None, None
        init = cls.methods.get("__init__")
        if init is not None:
            return self.analysis.summaries.get(init.qualname), cls.qualname + ".__init__"
        if not cls.field_annotations:
            return None, None
        summary = FunctionSummary()
        for field_name, annotation in cls.field_annotations.items():
            summary.param_order.append(field_name)
            summary.param_kinds[field_name] = annotation_kind(annotation)
        return summary, cls.qualname

    def _kind_Call(self, node: ast.Call) -> Optional[Kind]:
        arg_kinds: Dict[int, Optional[Kind]] = {
            i: self.kind_of(a) for i, a in enumerate(node.args)
        }
        kw_kinds: Dict[str, Optional[Kind]] = {
            kw.arg: self.kind_of(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        resolved = None
        if self.function is not None:
            resolved = self.index.resolve_callable(self.function, node.func)
        else:
            dotted = qualified_name(node.func)
            resolved = (
                self.index.resolve_name(self.info, dotted) if dotted else None
            )
        if resolved is not None:
            if resolved in Q.FUNCTION_RETURNS:
                return Q.FUNCTION_RETURNS[resolved]
            if resolved in Q.SQRT_CALLS:
                return K.sqrt(arg_kinds.get(0))
            if resolved in Q.PRESERVING_CALLS:
                result: Optional[Kind] = None
                kinds = list(arg_kinds.values())
                if kinds:
                    result = kinds[0]
                    for other in kinds[1:]:
                        result = K.join(result, other)
                return result
            cls_summary, cls_name = self._constructor_summary(resolved)
            if cls_summary is not None and cls_name is not None:
                self._check_call_args(
                    node,
                    cls_summary,
                    cls_name,
                    cls_name.endswith(".__init__"),
                    arg_kinds,
                    kw_kinds,
                )
                return None
        summary, callee, skip_first = self._callee_summary(node)
        if summary is not None and callee is not None:
            self._check_call_args(
                node, summary, callee, skip_first, arg_kinds, kw_kinds
            )
            return summary.return_kind
        if isinstance(node.func, ast.Attribute):
            seeded = Q.method_return_kind(node.func.attr)
            if seeded is not None:
                return seeded
        return None

    # -- statements ----------------------------------------------------
    def _bind_target(self, target: ast.AST, kind: Optional[Kind]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = kind
            self.types.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)

    def _bind_assign(self, target: ast.AST, value: ast.AST) -> None:
        kind = self.kind_of(value)
        if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            value, (ast.Tuple, ast.List)
        ) and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                self._bind_assign(t, v)
            return
        self._bind_target(target, kind)
        if isinstance(target, ast.Name):
            self.types[target.id] = self._value_class(value)

    def _value_class(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Call):
            resolved = None
            if self.function is not None:
                resolved = self.index.resolve_callable(self.function, value.func)
            else:
                dotted = qualified_name(value.func)
                resolved = (
                    self.index.resolve_name(self.info, dotted) if dotted else None
                )
            if resolved is not None and self.index.class_for(resolved) is not None:
                return resolved
        elif isinstance(value, ast.Name):
            return self.types.get(value.id)
        return None

    def exec_body(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self.exec_stmt(statement)

    def exec_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            self.kind_of(node.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._bind_assign(target, node.value)
        elif isinstance(node, ast.AnnAssign):
            declared = annotation_kind(node.annotation)
            value_kind = self.kind_of(node.value) if node.value else None
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = (
                    declared if declared is not None else value_kind
                )
                cls = annotation_class(self.index, self.info, node.annotation)
                self.types[node.target.id] = cls
        elif isinstance(node, ast.AugAssign):
            value_kind = self.kind_of(node.value)
            if isinstance(node.target, ast.Name):
                current = self.env.get(node.target.id)
                if isinstance(node.op, (ast.Add, ast.Sub)):
                    merged, ok = K.add(current, value_kind)
                    if not ok:
                        op = "+=" if isinstance(node.op, ast.Add) else "-="
                        self._report(
                            "REP008",
                            node,
                            "incompatible quantity kinds: %s %s %s"
                            % (K.display(current), op, K.display(value_kind)),
                        )
                    self.env[node.target.id] = merged
                elif isinstance(node.op, ast.Mult):
                    self.env[node.target.id] = K.multiply(current, value_kind)
                elif isinstance(node.op, (ast.Div, ast.FloorDiv)):
                    self.env[node.target.id] = K.divide(current, value_kind)
                else:
                    self.env[node.target.id] = None
        elif isinstance(node, ast.Return):
            kind = self.kind_of(node.value)
            self.return_kinds.append(kind)
            self._check_return(node, kind)
        elif isinstance(node, (ast.If, ast.While)):
            self.kind_of(node.test)
            self.exec_body(node.body)
            self.exec_body(node.orelse)
        elif isinstance(node, ast.For):
            element = self.kind_of(node.iter)
            self._bind_target(node.target, element)
            self.exec_body(node.body)
            self.exec_body(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                self.kind_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, None)
            self.exec_body(node.body)
        elif isinstance(node, ast.Try):
            self.exec_body(node.body)
            for handler in node.handlers:
                self.exec_body(handler.body)
            self.exec_body(node.orelse)
            self.exec_body(node.finalbody)
        elif isinstance(node, ast.Assert):
            self.kind_of(node.test)
        elif isinstance(node, (ast.Raise,)):
            if node.exc is not None:
                self.kind_of(node.exc)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested function/class definitions open their own scopes; the
        # project index walks nested bodies as part of their parent for
        # the call graph, but kind environments do not cross them.

    def _check_return(self, node: ast.Return, kind: Optional[Kind]) -> None:
        return None


class _FunctionWalker(_FrameBase):
    """Kind inference over one function body."""

    def __init__(
        self, analysis: QuantityAnalysis, function: FunctionInfo, emit: bool
    ):
        super().__init__(analysis, function.module, emit)
        self.function = function
        self.summary = analysis.summaries[function.qualname]
        args = function.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            self.env[arg.arg] = self.summary.param_kinds.get(arg.arg)
            self.types[arg.arg] = self.summary.param_classes.get(arg.arg)

    def run(self) -> Optional[Kind]:
        body = self.function.node.body  # type: ignore[attr-defined]
        self.exec_body(body)
        inferred: Optional[Kind] = None
        seen = False
        for kind in self.return_kinds:
            if kind is None:
                return None
            inferred = kind if not seen else K.join(inferred, kind)
            seen = True
        return inferred

    def _check_return(self, node: ast.Return, kind: Optional[Kind]) -> None:
        if not self.summary.declared_return:
            return
        declared = self.summary.return_kind
        if kind is None or declared is None:
            return
        if K.comparable(kind, declared):
            return
        self._report(
            "REP010",
            node,
            "%s() declares return kind %s but returns %s"
            % (self.function.name, K.display(declared), K.display(kind)),
        )


class _ModuleWalker(_FrameBase):
    """Kind inference over a module's top-level statements."""

    def __init__(self, analysis: QuantityAnalysis, info: ModuleInfo):
        super().__init__(analysis, info, emit=True)

    def run(self) -> None:
        for statement in self.info.source.tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self.exec_stmt(statement)


def analyze_project(index: ProjectIndex) -> List[RawFinding]:
    """Convenience wrapper: build, converge, emit."""
    return QuantityAnalysis(index).run()
