"""The project-invariant rule catalog (REP001..REP007).

Each rule encodes one convention PRs 1-4 established informally:
float comparisons must be toleranced, failures must use the typed
``repro.check.errors`` taxonomy, the flow must stay deterministic,
observability names must come from the checked-in catalog, vectorized
kernels must declare (and test against) their scalar counterparts,
and two classic Python/NumPy hazards (mutable defaults, array
truthiness) are banned outright.

Rules are pure AST inspection -- no module under analysis is ever
imported -- so the linter cannot be crashed or influenced by the code
it checks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.forksafe import analyze_fork_safety
from repro.lint.model import (
    Finding,
    ModuleSource,
    ProjectRule,
    Rule,
    qualified_name,
    walk_scopes,
)
from repro.lint.quantity import analyze_project
from repro.obs import names as _obs_names

__all__ = ["DEFAULT_RULES", "default_rules", "rule_catalog"]


#: Identifier fragments that mark a value as a physical quantity
#: (delays, skews, costs, capacitances, distances ...) for REP001.
_QUANTITY_FRAGMENTS = (
    "delay",
    "skew",
    "cost",
    "cap",
    "dist",
    "length",
    "wirelength",
    "radius",
    "mst",
    "power",
    "slack",
)

#: Exception names REP002 rejects outside the taxonomy.
_BARE_EXCEPTIONS = {"ValueError", "RuntimeError", "TypeError"}

#: ``random``-module call names that draw from unseeded global state.
_GLOBAL_RANDOM_ATTRS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "getrandbits",
    "seed",
}


def _is_quantity(node: ast.AST) -> bool:
    """Does the expression name a physical quantity (by identifier)?"""
    if isinstance(node, ast.Call):
        node = node.func
    name = qualified_name(node)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(fragment in tail for fragment in _QUANTITY_FRAGMENTS)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEqualityRule(Rule):
    """REP001: ``==``/``!=`` on delay/cost/skew-like expressions.

    Scalar quantities accumulate rounding; exact comparison makes
    behaviour depend on evaluation order, which is exactly what the
    byte-identical-trace contract forbids.  Compare against a
    tolerance (``repro.check.tolerance``) instead.  Modules whose
    *contract* is bit-exactness (the kernel parity layer) are
    allowlisted.
    """

    code = "REP001"
    title = "float equality on physical quantities"
    rationale = (
        "exact float comparison of delays/costs/skews breaks under "
        "rounding; use repro.check.tolerance helpers"
    )

    #: Path suffixes where exact float comparison is the contract.
    allowed_suffixes: Tuple[str, ...] = ("cts/kernels.py",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.path.endswith(self.allowed_suffixes):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            quantities = [o for o in operands if _is_quantity(o)]
            if not quantities:
                continue
            others = [o for o in operands if not _is_quantity(o)]
            if len(quantities) >= 2 or any(_is_float_literal(o) for o in others):
                yield self.finding(
                    module,
                    node,
                    "float equality on %r; compare with a tolerance "
                    "(repro.check.tolerance)" % module.line_at(node.lineno),
                )


class BareExceptionRule(Rule):
    """REP002: bare ``ValueError``/``RuntimeError``/``TypeError`` raises.

    Library failures must use the ``repro.check.errors`` taxonomy so
    the CLI can render located one-line diagnostics and callers can
    catch by failure class.  The taxonomy module itself (``check/``)
    is exempt -- it defines the classes.
    """

    code = "REP002"
    title = "bare exception outside the ReproError taxonomy"
    rationale = (
        "raise repro.check.errors subclasses so failures carry "
        "location data and a stable class hierarchy"
    )

    #: Path fragments exempt from the rule (the taxonomy itself).
    exempt_fragments: Tuple[str, ...] = ("check/",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if any(fragment in module.path for fragment in self.exempt_fragments):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = qualified_name(exc)
            if name in _BARE_EXCEPTIONS:
                yield self.finding(
                    module,
                    node,
                    "bare %s; raise a repro.check.errors subclass "
                    "(InputError, ContractError, InternalInvariantError, ...)"
                    % name,
                )


class DeterminismRule(Rule):
    """REP003: constructs whose result depends on run-to-run state.

    Unseeded RNGs, the global ``random`` module, iteration over sets
    (hash order), and wall-clock / object identity in the routing
    packages all make two runs of the same input diverge -- the
    byte-identical ``merge_trace`` contract cannot survive any of
    them.
    """

    code = "REP003"
    title = "determinism hazard"
    rationale = (
        "unseeded RNGs, set iteration order, time.time() and id() "
        "break the byte-identical trace contract"
    )

    #: Path fragments where wall-clock / identity are also banned.
    strict_fragments: Tuple[str, ...] = ("cts/", "core/")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        strict = any(f in module.path for f in self.strict_fragments)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, strict)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                target = node if isinstance(node, ast.For) else iterable
                if self._is_set_expr(iterable):
                    yield self.finding(
                        module,
                        target,
                        "iteration over a set is hash-order dependent; "
                        "sort it (sorted(...)) before iterating",
                    )

    def _check_call(
        self, module: ModuleSource, node: ast.Call, strict: bool
    ) -> Iterator[Finding]:
        name = qualified_name(node.func)
        if name is None:
            return
        if (
            name == "default_rng" or name.endswith(".default_rng")
        ) and self._unseeded(node):
            yield self.finding(
                module, node, "unseeded default_rng(); pass an explicit seed"
            )
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _GLOBAL_RANDOM_ATTRS:
            yield self.finding(
                module,
                node,
                "global random.%s() draws from shared unseeded state; "
                "use a seeded np.random.default_rng(seed)" % parts[1],
            )
        if strict and name == "time.time":
            yield self.finding(
                module,
                node,
                "time.time() in a routing package; results must not "
                "depend on the wall clock",
            )
        if strict and name == "id" and len(node.args) == 1:
            yield self.finding(
                module,
                node,
                "id() is allocation-order dependent; key on node ids "
                "or stable indices instead",
            )

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return all(
                kw.arg == "seed"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is None
                for kw in node.keywords
            )
        if not node.args:
            return True
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set"
        )


class ObsNameRule(Rule):
    """REP004: span/metric name literals must be catalogued.

    Every literal first argument of ``span()`` / ``counter()`` /
    ``gauge()`` / ``histogram()`` must follow the dotted lowercase
    ``phase.subphase`` convention and appear in the checked-in
    catalog (``repro.obs.names``); dynamically composed names must
    start from a registered literal prefix.  Dashboards, the phase
    profiler and the exporter tests all key on these names -- an
    uncatalogued name is invisible to all of them.
    """

    code = "REP004"
    title = "span/metric name outside the obs catalog"
    rationale = (
        "observability names are a public contract; the checked-in "
        "catalog (repro.obs.names) is what dashboards and tests key on"
    )

    _SPAN_METHODS = {"span"}
    _METRIC_METHODS = {"counter", "gauge", "histogram"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method in self._SPAN_METHODS:
                kind = "span"
            elif method in self._METRIC_METHODS:
                kind = "metric"
            else:
                continue
            if not node.args:
                continue
            extracted = self._literal_or_prefix(node.args[0])
            if extracted is None:
                continue
            full, text = extracted
            yield from self._check_name(module, node, kind, full, text)

    def _check_name(
        self,
        module: ModuleSource,
        node: ast.Call,
        kind: str,
        full: bool,
        text: str,
    ) -> Iterator[Finding]:
        if full:
            if not _obs_names.is_valid_name(text):
                yield self.finding(
                    module,
                    node,
                    "%s name %r does not match the dotted lowercase "
                    "phase.subphase convention" % (kind, text),
                )
                return
            known = (
                _obs_names.span_name_known(text)
                if kind == "span"
                else _obs_names.metric_name_known(text)
            )
            if not known:
                yield self.finding(
                    module,
                    node,
                    "%s name %r is not in the repro.obs.names catalog; "
                    "register it there" % (kind, text),
                )
            return
        prefixes = (
            _obs_names.SPAN_PREFIXES
            if kind == "span"
            else _obs_names.METRIC_PREFIXES
        )
        if not text.startswith(tuple(prefixes)):
            yield self.finding(
                module,
                node,
                "dynamic %s name built from unregistered prefix %r; "
                "add the prefix to repro.obs.names" % (kind, text),
            )

    @staticmethod
    def _literal_or_prefix(arg: ast.AST) -> Optional[Tuple[bool, str]]:
        """``(is_full_literal, text)`` for a name argument, else None."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return True, arg.value
        if isinstance(arg, ast.BinOp) and isinstance(
            arg.left, ast.Constant
        ) and isinstance(arg.left.value, str):
            text = arg.left.value
            if isinstance(arg.op, ast.Mod):
                text = text.split("%", 1)[0]
            return False, text
        if (
            isinstance(arg, ast.JoinedStr)
            and arg.values
            and isinstance(arg.values[0], ast.Constant)
            and isinstance(arg.values[0].value, str)
        ):
            return False, arg.values[0].value
        return None


class KernelParityRule(Rule):
    """REP005: vectorized kernels must declare scalar counterparts.

    Every public function in ``cts/kernels.py`` must carry a
    ``Scalar counterpart: <dotted.name>`` docstring tag (or
    ``Scalar counterpart: none -- <reason>`` for pure plumbing) and,
    when a counterpart is declared, be exercised by the parity test
    file -- the bit-exactness contract is only as strong as the test
    that pins it.
    """

    code = "REP005"
    title = "kernel without declared scalar counterpart / parity test"
    rationale = (
        "every batched kernel mirrors a scalar function bit for bit; "
        "the docstring tag + parity test make that contract checkable"
    )

    #: The module the rule applies to and the test file pinning parity.
    kernel_suffix = "cts/kernels.py"
    parity_test = "tests/test_cts_kernels.py"
    tag = "Scalar counterpart:"

    def __init__(self, project_root: Optional[str] = None):
        self.project_root = project_root

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.path.endswith(self.kernel_suffix):
            return
        parity_source = self._parity_source()
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("_"):
                continue
            doc = ast.get_docstring(node) or ""
            counterpart = self._declared_counterpart(doc)
            if counterpart is None:
                yield self.finding(
                    module,
                    node,
                    "public kernel %s() lacks a %r docstring tag"
                    % (node.name, self.tag),
                )
                continue
            if counterpart == "none":
                continue
            if parity_source is None:
                yield self.finding(
                    module,
                    node,
                    "kernel %s() declares counterpart %s but the parity "
                    "test file %s is missing"
                    % (node.name, counterpart, self.parity_test),
                )
            elif node.name not in parity_source:
                yield self.finding(
                    module,
                    node,
                    "kernel %s() declares counterpart %s but never "
                    "appears in %s" % (node.name, counterpart, self.parity_test),
                )

    def _declared_counterpart(self, doc: str) -> Optional[str]:
        for line in doc.splitlines():
            line = line.strip()
            if line.startswith(self.tag):
                value = line[len(self.tag) :].strip()
                head = value.split()[0] if value else ""
                if head.rstrip(".,;") == "none":
                    return "none"
                return head or None
        return None

    def _parity_source(self) -> Optional[str]:
        if self.project_root is None:
            return None
        import os

        path = os.path.join(self.project_root, *self.parity_test.split("/"))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None


class MutableDefaultRule(Rule):
    """REP006: mutable default arguments."""

    code = "REP006"
    title = "mutable default argument"
    rationale = (
        "a mutable default is shared across calls; default to None "
        "and construct inside the function"
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        "mutable default argument %r; use None and build "
                        "inside the function" % module.line_at(default.lineno),
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
            and not node.args
            and not node.keywords
        )


class ArrayTruthinessRule(Rule):
    """REP007: boolean tests of NumPy arrays.

    ``if arr:`` raises for arrays of length != 1 and silently reads
    the single element otherwise; both are bugs.  The rule tracks
    names assigned from ``np.*`` calls inside each scope and flags
    their use as a bare condition (use ``arr.size``, ``arr.any()`` or
    ``arr.all()``).
    """

    code = "REP007"
    title = "NumPy array used as a boolean"
    rationale = (
        "`if arr:` is a crash for len != 1 and a silent scalar read "
        "otherwise; test .size / .any() / .all() explicitly"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = self._numpy_aliases(module.tree)
        if not aliases:
            return
        for scope in walk_scopes(module.tree):
            array_names = self._array_names(scope, aliases)
            if not array_names:
                continue
            for node in self._walk_scope(scope):
                if isinstance(node, (ast.If, ast.While, ast.IfExp, ast.Assert)):
                    test = node.test
                else:
                    continue
                for name_node in self._truth_tested_names(test):
                    if name_node.id in array_names:
                        yield self.finding(
                            module,
                            name_node,
                            "array %r used as a boolean; test "
                            "%s.size / %s.any() / %s.all() instead"
                            % ((name_node.id,) * 4),
                        )

    @staticmethod
    def _walk_scope(scope: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk a scope's statements without descending into nested
        function/lambda bodies (those are their own scopes)."""
        stack: List[ast.AST] = list(scope)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _numpy_aliases(tree: ast.Module) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
        return aliases

    @classmethod
    def _array_names(cls, scope: List[ast.stmt], aliases: Set[str]) -> Set[str]:
        names: Set[str] = set()
        for node in cls._walk_scope(scope):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            func = qualified_name(node.value.func)
            if func is None or func.split(".", 1)[0] not in aliases:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _truth_tested_names(test: ast.AST) -> Iterator[ast.Name]:
        """Names whose truthiness the test directly evaluates."""
        if isinstance(test, ast.Name):
            yield test
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            yield from ArrayTruthinessRule._truth_tested_names(test.operand)
        elif isinstance(test, ast.BoolOp):
            for value in test.values:
                yield from ArrayTruthinessRule._truth_tested_names(value)


#: Rule classes in code order (instantiated per run by the engine).
class _AnalysisRule(ProjectRule):
    """Base for rules backed by a memoized whole-project analysis."""

    #: memo key + builder shared by sibling codes of one analysis.
    analysis_key = "quantity"

    @staticmethod
    def analysis(index):  # type: ignore[no-untyped-def]
        raise NotImplementedError

    def check_project(self, context) -> Iterator[Finding]:  # type: ignore[no-untyped-def]
        raw_findings = context.memo(self.analysis_key, type(self).analysis)
        for raw in raw_findings:
            if raw.code == self.code:
                yield self.finding(raw.module, raw.node, raw.message)


class QuantityMixRule(_AnalysisRule):
    """REP008: ``+``/``-``/comparison over incompatible quantity kinds.

    The cost algebra (Eq. 3) only ever adds like kinds: lengths with
    lengths, switched capacitance with switched capacitance.  Adding a
    resistance to a capacitance, or comparing a delay against a
    wirelength, type-checks as ``float`` and silently corrupts every
    downstream cost.  Kinds come from ``repro.quantity`` alias
    declarations and flow interprocedurally; unknown kinds never fire.
    """

    code = "REP008"
    title = "incompatible quantity kinds in add/sub/compare"
    rationale = (
        "adding or comparing values of different physical kinds "
        "(resistance + capacitance, delay vs length) is a silent "
        "unit bug; declare kinds via repro.quantity aliases"
    )
    analysis_key = "quantity"
    analysis = staticmethod(analyze_project)


class ArgumentKindRule(_AnalysisRule):
    """REP009: a call argument contradicts the parameter's kind.

    Swapping ``unit_capacitance`` for ``unit_resistance`` at a call
    site produces plausible numbers and wrong trees; with declared
    parameter kinds the mix-up is caught at lint time.
    """

    code = "REP009"
    title = "call argument of the wrong quantity kind"
    rationale = (
        "passing a capacitance where a resistance is declared (or a "
        "delay where a length is due) survives runtime silently; the "
        "declared parameter kind makes the swap a lint error"
    )
    analysis_key = "quantity"
    analysis = staticmethod(analyze_project)


class ReturnKindRule(_AnalysisRule):
    """REP010: a function returns a kind other than it declares.

    Return-kind drift is how unit bugs propagate: one helper quietly
    starts returning a delay instead of a length and every caller
    inherits the confusion.
    """

    code = "REP010"
    title = "return value contradicts the declared return kind"
    rationale = (
        "a function annotated to return one kind but returning "
        "another poisons every caller; the declaration is the "
        "contract the body must meet"
    )
    analysis_key = "quantity"
    analysis = staticmethod(analyze_project)


class WorkerGlobalStateRule(_AnalysisRule):
    """REP011: worker functions reaching process-global observability.

    Tracers, metric registries, run ledgers and tracemalloc are
    process-global; inside a ``ProcessPoolExecutor`` worker they
    record into buffers nobody drains (or double peak memory).  The
    rule walks the call graph from every submitted function and pool
    initializer and reports the offending chain at the submission
    site.  Initializers that *reset* the state (``set_tracer``,
    ``set_registry``, ``tracemalloc.stop``) are the sanctioned fix.
    """

    code = "REP011"
    title = "process-global state reachable from a pool worker"
    rationale = (
        "tracer/registry/ledger/tracemalloc calls inside a "
        "ProcessPoolExecutor worker observe a different process than "
        "the one being measured; reset them in the pool initializer"
    )
    analysis_key = "forksafe"
    analysis = staticmethod(analyze_fork_safety)


class UnpicklablePayloadRule(_AnalysisRule):
    """REP012: known-unpicklable values shipped to a pool worker.

    Lambdas, nested functions, generators, open file handles and
    catalogued classes (``ActivityOracle`` carries per-instance
    ``lru_cache`` wrappers) die in ``pickle`` at submission time --
    but only on the first real multi-process run, not under the
    in-process test path.  Ship plain data (``oracle.tables``) and
    rebuild worker-side.
    """

    code = "REP012"
    title = "unpicklable value in a pool submission"
    rationale = (
        "lambdas, nested functions, open handles and lru_cache-"
        "bearing objects fail to pickle only when a real worker pool "
        "spins up; the lint catches the payload at the submit site"
    )
    analysis_key = "forksafe"
    analysis = staticmethod(analyze_fork_safety)


DEFAULT_RULES = (
    FloatEqualityRule,
    BareExceptionRule,
    DeterminismRule,
    ObsNameRule,
    KernelParityRule,
    MutableDefaultRule,
    ArrayTruthinessRule,
    QuantityMixRule,
    ArgumentKindRule,
    ReturnKindRule,
    WorkerGlobalStateRule,
    UnpicklablePayloadRule,
)


def default_rules(project_root: Optional[str] = None) -> List[Rule]:
    """Instantiate the full catalog (root feeds path-aware rules)."""
    rules: List[Rule] = []
    for cls in DEFAULT_RULES:
        if cls is KernelParityRule:
            rules.append(cls(project_root))
        else:
            rules.append(cls())
    return rules


def rule_catalog() -> Dict[str, Rule]:
    """Code -> rule instance, for docs and the reporters."""
    return {rule.code: rule for rule in default_rules()}
