"""Seed catalog of the quantity and fork-safety analyses.

Three kinds of seeds feed :mod:`repro.lint.quantity`:

``ALIAS_KINDS``
    Names of the ``Annotated`` aliases exported by
    :mod:`repro.quantity`.  An annotation whose terminal name appears
    here declares the kind of the annotated parameter / return /
    field, wherever the alias was imported from (the analyzer never
    imports the code it checks; recognition is purely syntactic).

``ATTRIBUTE_KINDS``
    Attribute *names* with a project-wide unambiguous kind:
    ``anything.unit_wire_capacitance`` is wire capacitance per unit
    length no matter which object carries it.  Dataclass fields
    annotated with a quantity alias register themselves here
    automatically during the catalog pass; this table covers the
    remainder -- attributes of third-party-shaped or dynamically built
    objects (``NodeArrays`` columns, split results) that cannot carry
    an alias.  A name must mean *one* kind everywhere to qualify; the
    catalog pass drops any name that the declarations contradict.

``FUNCTION_RETURNS`` / ``METHOD_RETURNS`` / ``PRESERVING_CALLS``
    Return kinds of fully-qualified project/third-party functions, of
    methods matched by bare name on unresolvable receivers, and the
    kind-preserving numeric builtins (``min`` of lengths is a length).

The fork-safety rules (REP011/REP012) use two more tables:
``UNSAFE_WORKER_CALLS`` names process-global observability state that
must never be touched from a ``ProcessPoolExecutor`` worker, and
``UNPICKLABLE_CLASSES`` names types known not to survive pickling into
a worker (the :class:`~repro.activity.probability.ActivityOracle`
carries per-instance ``lru_cache`` wrappers; ship its tables instead).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.lint.kinds import Kind, named

__all__ = [
    "ALIAS_KINDS",
    "ATTRIBUTE_KINDS",
    "FUNCTION_RETURNS",
    "METHOD_RETURNS",
    "PRESERVING_CALLS",
    "SQRT_CALLS",
    "UNPICKLABLE_CLASSES",
    "UNSAFE_WORKER_CALLS",
]


def _k(name: str) -> Kind:
    kind = named(name)
    assert kind is not None, name
    return kind


#: ``repro.quantity`` alias name -> kind name.
ALIAS_KINDS: Dict[str, Kind] = {
    "LengthUm": _k("length_um"),
    "AreaUm2": _k("area_um2"),
    "CapacitanceFF": _k("capacitance_fF"),
    "CapPerLength": _k("cap_per_length"),
    "ResistanceOhm": _k("resistance_ohm"),
    "ResPerLength": _k("res_per_length"),
    "DelayPs": _k("delay_ps"),
    "Probability": _k("probability"),
    "SwitchedCap": _k("switched_cap"),
    "NodeId": _k("node_id"),
    "Count": _k("count"),
    "Dimensionless": _k("dimensionless"),
}

#: Attribute name -> kind, for attributes that cannot carry an alias
#: (NumPy struct-of-array columns, third-party shapes).  Annotated
#: dataclass fields extend this table during the catalog pass.
ATTRIBUTE_KINDS: Dict[str, Kind] = {
    # repro.cts.kernels.NodeArrays columns (NumPy arrays per node).
    "cap": _k("capacitance_fF"),
    "enable_p": _k("probability"),
    "enable_ptr": _k("probability"),
    "ulo": _k("length_um"),
    "uhi": _k("length_um"),
    "vlo": _k("length_um"),
    "vhi": _k("length_um"),
}

#: Fully-qualified callable -> return kind (third-party shapes and
#: NumPy kernels whose signatures cannot carry a quantity alias).
FUNCTION_RETURNS: Dict[str, Kind] = {
    "repro.cts.kernels.batch_star_length": _k("length_um"),
    "repro.cts.kernels.batch_manhattan": _k("length_um"),
    "repro.geometry.point.manhattan_distance": _k("length_um"),
}

#: Bare method name -> return kind, consulted when the receiver's type
#: is unknown.  Only names whose meaning is unambiguous project-wide
#: may appear here (the planted-bug tests pin several of them).
METHOD_RETURNS: Dict[str, Kind] = {
    "manhattan_to": _k("length_um"),
    "euclidean_to": _k("length_um"),
    "distance_to": _k("length_um"),
    "wire_cap": _k("capacitance_fF"),
    "wire_res": _k("resistance_ohm"),
    "wire_area": _k("area_um2"),
    "signal_probability": _k("probability"),
    "transition_probability": _k("probability"),
    "batch_probabilities": _k("probability"),
    "batch_transition_probabilities": _k("probability"),
    "unloaded_delay": _k("delay_ps"),
    "edge_delay": _k("delay_ps"),
    "max_delay": _k("delay_ps"),
    "total_wirelength": _k("length_um"),
    "cell_area": _k("area_um2"),
}

#: Builtins / NumPy reductions that return the kind of their operands
#: (the join of the argument kinds: ``min(w_a, w_b)`` of two
#: probabilities is a probability; mixed kinds join to unknown).
PRESERVING_CALLS: FrozenSet[str] = frozenset(
    {
        "builtins.min",
        "builtins.max",
        "builtins.abs",
        "builtins.sum",
        "builtins.float",
        "builtins.round",
        "builtins.sorted",
        "numpy.minimum",
        "numpy.maximum",
        "numpy.abs",
        "numpy.absolute",
        "numpy.sum",
        "numpy.asarray",
        "numpy.float64",
        "math.fsum",
        "math.fabs",
    }
)

#: Square-root shapes: even dimension vectors halve (the snaking
#: quadratic's discriminant is delay^2), anything else goes unknown.
SQRT_CALLS: FrozenSet[str] = frozenset({"math.sqrt", "numpy.sqrt"})

#: Process-global observability state a ProcessPoolExecutor worker must
#: not reach: qualified callable name -> short description of the
#: hazard.  Mitigating resets (``set_tracer``, ``set_registry``,
#: ``tracemalloc.stop``) are deliberately absent -- they are how a
#: worker initializer makes itself safe.
UNSAFE_WORKER_CALLS: Dict[str, str] = {
    "repro.obs.get_tracer": "the process-global span tracer",
    "repro.obs.tracer.get_tracer": "the process-global span tracer",
    "repro.obs.enable_tracing": "the process-global span tracer",
    "repro.obs.tracer.enable_tracing": "the process-global span tracer",
    "repro.obs.phase_span": "the process-global span tracer",
    "repro.obs.tracer.phase_span": "the process-global span tracer",
    "repro.obs.get_registry": "the process-global metrics registry",
    "repro.obs.metrics.get_registry": "the process-global metrics registry",
    "repro.obs.ledger.RunLedger": "the parent-side run ledger",
    "repro.obs.RunLedger": "the parent-side run ledger",
    "repro.obs.ledger.record_from_trace": "the parent-side run ledger",
    "repro.obs.record_from_trace": "the parent-side run ledger",
    "repro.obs.memory.MemorySampler": "tracemalloc-backed memory sampling",
    "repro.obs.MemorySampler": "tracemalloc-backed memory sampling",
    "tracemalloc.start": "process-wide allocation tracing",
    "tracemalloc.take_snapshot": "process-wide allocation tracing",
}

#: Class names (bare and qualified) whose instances are known not to
#: pickle into a worker, with the fix to suggest.
UNPICKLABLE_CLASSES: Dict[str, str] = {
    "ActivityOracle": "pass oracle.tables and rebuild worker-side",
    "repro.activity.probability.ActivityOracle": (
        "pass oracle.tables and rebuild worker-side"
    ),
    "Tracer": "workers must install their own tracer",
    "repro.obs.tracer.Tracer": "workers must install their own tracer",
    "MemorySampler": "tracemalloc state is per-process",
    "repro.obs.memory.MemorySampler": "tracemalloc state is per-process",
}


def alias_kind(name: Optional[str]) -> Optional[Kind]:
    """Kind declared by an annotation name (terminal path segment)."""
    if name is None:
        return None
    return ALIAS_KINDS.get(name.rsplit(".", 1)[-1])


def method_return_kind(name: str) -> Optional[Kind]:
    """Seeded return kind of a bare method name, if catalogued."""
    return METHOD_RETURNS.get(name)
