"""``repro.lint`` -- AST-based project-invariant analysis.

A project-specific linter enforcing the invariants PRs 1-4 built up
as conventions: toleranced float comparison on physical quantities
(REP001), the typed ``repro.check.errors`` taxonomy (REP002),
determinism (REP003), the observability name catalog (REP004), the
kernel/scalar parity contract (REP005), and two generic Python/NumPy
hazards (REP006 mutable defaults, REP007 array truthiness).

See ``DESIGN.md`` section "Static analysis & code invariants" for the
full rule table and ``repro.lint.cli`` for the command-line gate.
"""

from repro.lint.baseline import BASELINE_FILENAME, Baseline
from repro.lint.engine import LintResult, run_lint
from repro.lint.model import Finding, ModuleSource, Rule
from repro.lint.report import render_json, render_text, report_dict
from repro.lint.rules import DEFAULT_RULES, default_rules, rule_catalog

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "DEFAULT_RULES",
    "Finding",
    "LintResult",
    "ModuleSource",
    "Rule",
    "default_rules",
    "render_json",
    "render_text",
    "report_dict",
    "rule_catalog",
    "run_lint",
]
