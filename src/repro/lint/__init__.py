"""``repro.lint`` -- AST-based project-invariant analysis.

A project-specific linter enforcing the invariants PRs 1-4 built up
as conventions: toleranced float comparison on physical quantities
(REP001), the typed ``repro.check.errors`` taxonomy (REP002),
determinism (REP003), the observability name catalog (REP004), the
kernel/scalar parity contract (REP005), and two generic Python/NumPy
hazards (REP006 mutable defaults, REP007 array truthiness).

On top of the per-module rules sits an *interprocedural* layer built
over :mod:`repro.lint.project`: the quantity-kind dataflow analysis
(REP008 incompatible add/sub/compare, REP009 wrong-kind call
arguments, REP010 return-kind drift -- see :mod:`repro.lint.kinds` for
the algebra and :mod:`repro.quantity` for the declaration aliases),
and the fork-safety analysis of process-pool usage (REP011 global
observability state reachable from workers, REP012 unpicklable
payloads).

See ``DESIGN.md`` section "Static analysis & code invariants" for the
full rule table and ``repro.lint.cli`` for the command-line gate.
"""

from repro.lint.baseline import BASELINE_FILENAME, Baseline
from repro.lint.engine import LintResult, StaleNoqa, run_lint
from repro.lint.kinds import DIMENSIONLESS, Kind, named
from repro.lint.model import Finding, ModuleSource, ProjectRule, Rule
from repro.lint.project import ProjectContext, ProjectIndex
from repro.lint.report import render_json, render_text, report_dict
from repro.lint.rules import DEFAULT_RULES, default_rules, rule_catalog

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "DEFAULT_RULES",
    "DIMENSIONLESS",
    "Finding",
    "Kind",
    "LintResult",
    "ModuleSource",
    "ProjectContext",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "StaleNoqa",
    "default_rules",
    "named",
    "render_json",
    "render_text",
    "report_dict",
    "rule_catalog",
    "run_lint",
]
