"""File discovery, suppression handling and the lint run itself.

The engine walks the requested paths, parses every ``.py`` file once,
runs the per-module rule catalog over each file, then hands the whole
parsed set to the project rules (the interprocedural quantity and
fork-safety analyses) through a shared
:class:`~repro.lint.project.ProjectContext`.  Findings suppressed by
``# repro: noqa[...]`` comments are dropped -- and the engine tracks
which suppression comments actually matched something, so the CLI's
``--check-noqa`` mode can flag stale ones.  A committed baseline is
(optionally) subtracted last.  Nothing under analysis is imported; a
file that does not parse raises
:class:`repro.check.errors.InputError` carrying the offending path and
line, which the CLI maps to exit code 2.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.check.errors import InputError
from repro.lint.baseline import Baseline
from repro.lint.model import Finding, ModuleSource, ProjectRule, Rule
from repro.lint.project import ProjectContext
from repro.lint.rules import default_rules

#: Matches a ``repro``-style noqa comment: bare (all rules) or with a
#: bracketed code list such as ``[REP001,REP003]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]*)\])?")


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted
    so runs are reproducible regardless of filesystem order."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise InputError("no such file or directory", source=path)
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def parse_module(path: str, project_root: str) -> ModuleSource:
    """Read and parse one file into a :class:`ModuleSource`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise InputError("unreadable file: %s" % exc, source=path)
    rel = os.path.relpath(path, project_root).replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise InputError(
            "syntax error: %s" % (exc.msg or "invalid syntax"),
            source=rel,
            line=exc.lineno,
        )
    return ModuleSource(path=rel, source=source, tree=tree, lines=source.splitlines())


def _comment_lines(module: ModuleSource) -> Dict[int, str]:
    """1-based line -> comment text, for *real* comments only.

    Tokenizing keeps ``# repro: noqa`` mentions inside strings and
    docstrings (this module's own docs, rule rationales) from being
    read as live suppressions; if tokenization fails the raw lines are
    scanned instead, which can only over-approximate.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        return {
            token.start[0]: token.string
            for token in tokens
            if token.type == tokenize.COMMENT
        }
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return dict(enumerate(module.lines, start=1))


def suppressions_for(module: ModuleSource) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppression map: line -> codes (``None`` = all rules)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in _comment_lines(module).items():
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None or not codes.strip():
            table[lineno] = None
        else:
            table[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return table


def is_suppressed(
    finding: Finding, table: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = table.get(finding.line, "missing")
    if codes == "missing":
        return False
    return codes is None or finding.rule in codes


@dataclass(frozen=True)
class StaleNoqa:
    """A ``# repro: noqa`` comment that suppressed nothing this run."""

    path: str
    line: int
    codes: Optional[Tuple[str, ...]]  #: ``None`` = blanket suppression
    snippet: str

    def diagnostic(self) -> str:
        scope = "all rules" if self.codes is None else ",".join(self.codes)
        return "%s: line %d: stale suppression [%s] matched no finding" % (
            self.path,
            self.line,
            scope,
        )


@dataclass
class LintResult:
    """Outcome of one lint run (post suppression and baseline)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: baseline entries that matched nothing (stale; prune them)
    stale_baseline: int = 0
    #: suppression comments that matched nothing (see ``--check-noqa``)
    stale_noqa: List[StaleNoqa] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Finding count per rule code, sorted by code."""
        counter = Counter(f.rule for f in self.findings)
        return {code: counter[code] for code in sorted(counter)}


def run_lint(
    paths: Sequence[str],
    project_root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` and return the surviving findings.

    ``project_root`` anchors relative paths (and the REP005 parity
    test lookup); it defaults to the current directory.  Per-module
    rules run file by file; :class:`~repro.lint.model.ProjectRule`
    instances run once over the whole parsed set, sharing a
    :class:`~repro.lint.project.ProjectContext`.  ``baseline``
    findings are subtracted with multiplicity: two identical findings
    with one baseline entry report one new finding.
    """
    root = os.path.abspath(project_root or os.getcwd())
    active_rules = list(rules) if rules is not None else default_rules(root)
    module_rules = [r for r in active_rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active_rules if isinstance(r, ProjectRule)]
    result = LintResult()

    modules: List[ModuleSource] = []
    seen_paths: Set[str] = set()
    for path in iter_python_files(paths):
        module = parse_module(path, root)
        if module.path in seen_paths:
            continue
        seen_paths.add(module.path)
        modules.append(module)
    result.files_scanned = len(modules)

    tables: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    by_path: Dict[str, ModuleSource] = {}
    for module in modules:
        tables[module.path] = suppressions_for(module)
        by_path[module.path] = module

    raw: List[Finding] = []
    used_suppressions: Set[Tuple[str, int]] = set()

    def consider(finding: Finding) -> None:
        table = tables.get(finding.path)
        if table is not None and is_suppressed(finding, table):
            used_suppressions.add((finding.path, finding.line))
            result.suppressed += 1
        else:
            raw.append(finding)

    for module in modules:
        for rule in module_rules:
            for finding in rule.check(module):
                consider(finding)
    if project_rules and modules:
        context = ProjectContext(modules)
        for rule in project_rules:
            for finding in rule.check_project(context):
                consider(finding)

    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.col))

    for path in sorted(tables):
        module = by_path[path]
        for lineno in sorted(tables[path]):
            if (path, lineno) in used_suppressions:
                continue
            codes = tables[path][lineno]
            result.stale_noqa.append(
                StaleNoqa(
                    path=path,
                    line=lineno,
                    codes=tuple(sorted(codes)) if codes is not None else None,
                    snippet=module.line_at(lineno),
                )
            )

    if baseline is None:
        result.findings = raw
        return result
    fresh, matched, stale = baseline.partition(raw)
    result.findings = fresh
    result.baselined = matched
    result.stale_baseline = stale
    return result
