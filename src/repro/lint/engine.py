"""File discovery, suppression handling and the lint run itself.

The engine walks the requested paths, parses every ``.py`` file once,
runs the rule catalog over each module, drops findings suppressed by
``# repro: noqa[...]`` comments, and (optionally) subtracts a
committed baseline.  Nothing under analysis is imported; a file that
does not parse raises :class:`repro.check.errors.InputError` carrying
the offending path and line, which the CLI maps to exit code 2.
"""

from __future__ import annotations

import ast
import os
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.check.errors import InputError
from repro.lint.baseline import Baseline
from repro.lint.model import Finding, ModuleSource, Rule
from repro.lint.rules import default_rules

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[REP001,REP003]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]*)\])?")


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted
    so runs are reproducible regardless of filesystem order."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise InputError("no such file or directory", source=path)
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def parse_module(path: str, project_root: str) -> ModuleSource:
    """Read and parse one file into a :class:`ModuleSource`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise InputError("unreadable file: %s" % exc, source=path)
    rel = os.path.relpath(path, project_root).replace(os.sep, "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise InputError(
            "syntax error: %s" % (exc.msg or "invalid syntax"),
            source=rel,
            line=exc.lineno,
        )
    return ModuleSource(path=rel, source=source, tree=tree, lines=source.splitlines())


def suppressions_for(module: ModuleSource) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppression map: line -> codes (``None`` = all rules)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(module.lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None or not codes.strip():
            table[lineno] = None
        else:
            table[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return table


def is_suppressed(
    finding: Finding, table: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = table.get(finding.line, "missing")
    if codes == "missing":
        return False
    return codes is None or finding.rule in codes


@dataclass
class LintResult:
    """Outcome of one lint run (post suppression and baseline)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    #: baseline entries that matched nothing (stale; prune them)
    stale_baseline: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Finding count per rule code, sorted by code."""
        counter = Counter(f.rule for f in self.findings)
        return {code: counter[code] for code in sorted(counter)}


def run_lint(
    paths: Sequence[str],
    project_root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` and return the surviving findings.

    ``project_root`` anchors relative paths (and the REP005 parity
    test lookup); it defaults to the current directory.  ``baseline``
    findings are subtracted with multiplicity: two identical findings
    with one baseline entry report one new finding.
    """
    root = os.path.abspath(project_root or os.getcwd())
    active_rules = list(rules) if rules is not None else default_rules(root)
    result = LintResult()
    raw: List[Finding] = []
    for path in iter_python_files(paths):
        module = parse_module(path, root)
        result.files_scanned += 1
        table = suppressions_for(module)
        for rule in active_rules:
            for finding in rule.check(module):
                if is_suppressed(finding, table):
                    result.suppressed += 1
                else:
                    raw.append(finding)
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    if baseline is None:
        result.findings = raw
        return result
    fresh, matched, stale = baseline.partition(raw)
    result.findings = fresh
    result.baselined = matched
    result.stale_baseline = stale
    return result
