"""Committed baseline of grandfathered lint findings.

A baseline lets the gate turn on before every legacy finding is fixed:
entries listed here are reported as *baselined* (not failures), new
findings still fail the run.  Entries match on the finding
fingerprint -- rule code, relative path and stripped source line -- so
unrelated edits that shift line numbers do not invalidate them, with
multiplicity (N entries absorb at most N identical findings).

The file is JSON, sorted and newline-terminated, so diffs are stable:

.. code-block:: json

    {"version": 1,
     "entries": [{"rule": "REP001", "path": "src/repro/x.py",
                  "line": 12, "fingerprint": "9a0364b9e99bb480"}]}

``repro lint --update-baseline`` rewrites it from the current
findings; an empty run writes an empty baseline, which is the shipped
state -- the repo carries **no** grandfathered REP002/REP006/REP007
findings by policy.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.check.errors import InputError
from repro.lint.model import Finding

#: Default baseline filename, resolved against the project root.
BASELINE_FILENAME = ".repro-lint-baseline.json"

_VERSION = 1


@dataclass
class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    #: (rule, path, fingerprint) -> allowed count
    entries: Counter = field(default_factory=Counter)
    #: informative line numbers kept for the serialized form
    lines: Dict[Tuple[str, str, str], List[int]] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            baseline.entries[key] += 1
            baseline.lines.setdefault(key, []).append(finding.line)
        return baseline

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (typed ``InputError`` on bad shape)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise InputError("unreadable baseline: %s" % exc, source=path)
        except ValueError as exc:
            raise InputError("baseline is not valid JSON: %s" % exc, source=path)
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise InputError(
                "baseline version must be %d" % _VERSION, source=path
            )
        raw = payload.get("entries")
        if not isinstance(raw, list):
            raise InputError("baseline 'entries' must be a list", source=path)
        baseline = cls()
        for i, entry in enumerate(raw):
            try:
                key = (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry["fingerprint"]),
                )
            except (TypeError, KeyError):
                raise InputError(
                    "baseline entry %d lacks rule/path/fingerprint" % i,
                    source=path,
                )
            baseline.entries[key] += 1
            baseline.lines.setdefault(key, []).append(int(entry.get("line", 0)))
        return baseline

    def save(self, path: str) -> None:
        """Write the sorted, diff-stable JSON form."""
        entries = []
        for key in sorted(self.entries):
            rule, rel_path, fingerprint = key
            lines = sorted(self.lines.get(key, []))
            for i in range(self.entries[key]):
                entries.append(
                    {
                        "rule": rule,
                        "path": rel_path,
                        "line": lines[i] if i < len(lines) else 0,
                        "fingerprint": fingerprint,
                    }
                )
        payload = {"version": _VERSION, "entries": entries}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, int]:
        """Split findings into (new, matched_count, stale_entries)."""
        budget = Counter(self.entries)
        fresh: List[Finding] = []
        matched = 0
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched += 1
            else:
                fresh.append(finding)
        stale = sum(count for count in budget.values() if count > 0)
        return fresh, matched, stale

    def __len__(self) -> int:
        return sum(self.entries.values())
