"""The ``gated-cts lint`` subcommand (also ``python -m repro.lint``).

Exit codes follow the auditor's convention: 0 clean, 1 findings,
2 error (unreadable path, syntax error, malformed baseline -- every
error is a typed :class:`~repro.check.errors.ReproError`, so the
top-level CLI renders it as a one-line diagnostic).

Usage::

    gated-cts lint                       # lint src/repro with the
                                         # committed baseline
    gated-cts lint --format json         # machine-readable report
    gated-cts lint --update-baseline     # grandfather current findings
    gated-cts lint src/repro/cts         # restrict the scan
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.check.errors import InputError
from repro.lint.baseline import BASELINE_FILENAME, Baseline
from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_text

#: Default scan target, relative to the project root.
DEFAULT_TARGET = os.path.join("src", "repro")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file (default: %s at the project root, when "
        "present)" % BASELINE_FILENAME,
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="project root for relative paths and the parity-test "
        "lookup (default: current directory)",
    )


def run_lint_cli(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    root = os.path.abspath(args.root or os.getcwd())
    paths = list(args.paths)
    if not paths:
        default = os.path.join(root, DEFAULT_TARGET)
        if not os.path.isdir(default):
            raise InputError(
                "no paths given and default target missing", source=default
            )
        paths = [default]
    baseline_path = args.baseline or os.path.join(root, BASELINE_FILENAME)
    baseline: Optional[Baseline] = None
    if not args.update_baseline and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)
    result = run_lint(paths, project_root=root, baseline=baseline)
    if args.update_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print("baseline written to %s (%d entr(y/ies))" % (
            baseline_path, len(result.findings)))
        return 0
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-invariant static analysis for the repro tree",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint_cli(args)
    except InputError as exc:
        print("repro-lint: %s" % exc.diagnostic(), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
