"""The ``gated-cts lint`` subcommand (also ``python -m repro.lint``).

Exit codes follow the auditor's convention: 0 clean, 1 findings,
2 error (unreadable path, syntax error, malformed baseline -- every
error is a typed :class:`~repro.check.errors.ReproError`, so the
top-level CLI renders it as a one-line diagnostic).

Usage::

    gated-cts lint                       # lint src/repro with the
                                         # committed baseline
    gated-cts lint --format json         # machine-readable report
    gated-cts lint --update-baseline     # grandfather current findings
    gated-cts lint src/repro/cts         # restrict the scan
    gated-cts lint --select REP003,REP011 benchmarks
                                         # only some rules, other roots
    gated-cts lint --explain REP008      # what a rule means and why
    gated-cts lint --check-noqa          # fail on stale suppressions
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
from typing import List, Optional

from repro.check.errors import InputError
from repro.lint.baseline import BASELINE_FILENAME, Baseline
from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_text
from repro.lint.rules import default_rules, rule_catalog

#: Default scan target, relative to the project root.
DEFAULT_TARGET = os.path.join("src", "repro")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file (default: %s at the project root, when "
        "present)" % BASELINE_FILENAME,
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="project root for relative paths and the parity-test "
        "lookup (default: current directory)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help="print what a rule checks and why, then exit",
    )
    parser.add_argument(
        "--check-noqa",
        action="store_true",
        help="also fail (exit 1) on '# repro: noqa' comments that "
        "suppress nothing; incompatible with --select, since a "
        "partial rule set cannot tell live suppressions from stale",
    )


def explain_rule(code: str) -> int:
    """Print the full documentation of one rule code."""
    catalog = rule_catalog()
    rule = catalog.get(code.strip().upper())
    if rule is None:
        raise InputError(
            "unknown rule code (known: %s)" % ", ".join(sorted(catalog)),
            source=code,
        )
    print("%s: %s" % (rule.code, rule.title))
    print()
    print("rationale: %s" % rule.rationale)
    doc = inspect.getdoc(type(rule))
    if doc:
        print()
        print(doc)
    return 0


def _selected_rules(select: str, root: str) -> List[object]:
    wanted = {c.strip().upper() for c in select.split(",") if c.strip()}
    if not wanted:
        raise InputError("empty --select", source=select)
    catalog = default_rules(root)
    known = {rule.code for rule in catalog}
    unknown = sorted(wanted - known)
    if unknown:
        raise InputError(
            "unknown rule code(s): %s (known: %s)"
            % (", ".join(unknown), ", ".join(sorted(known))),
            source="--select",
        )
    return [rule for rule in catalog if rule.code in wanted]


def run_lint_cli(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.explain is not None:
        return explain_rule(args.explain)
    if args.check_noqa and args.select:
        raise InputError(
            "--check-noqa needs the full rule set; drop --select",
            source="--check-noqa",
        )
    root = os.path.abspath(args.root or os.getcwd())
    paths = list(args.paths)
    if not paths:
        default = os.path.join(root, DEFAULT_TARGET)
        if not os.path.isdir(default):
            raise InputError(
                "no paths given and default target missing", source=default
            )
        paths = [default]
    rules = None
    if args.select:
        rules = _selected_rules(args.select, root)
    baseline_path = args.baseline or os.path.join(root, BASELINE_FILENAME)
    baseline: Optional[Baseline] = None
    if not args.update_baseline and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)
    result = run_lint(paths, project_root=root, rules=rules, baseline=baseline)
    if args.update_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print("baseline written to %s (%d entr(y/ies))" % (
            baseline_path, len(result.findings)))
        return 0
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result))
    if args.check_noqa and result.stale_noqa:
        for entry in result.stale_noqa:
            print(entry.diagnostic())
        return 1
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-invariant static analysis for the repro tree",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint_cli(args)
    except InputError as exc:
        print("repro-lint: %s" % exc.diagnostic(), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
