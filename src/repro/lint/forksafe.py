"""Fork-safety analysis of process-pool usage (REP011 / REP012).

The sharded router (PR 8) runs workers under
``concurrent.futures.ProcessPoolExecutor``.  Two classes of bug only
show up under real multi-process runs and are miserable to debug:

* **REP011** -- a worker function *reaches* process-global
  observability state (the span tracer, the metrics registry, the run
  ledger, tracemalloc) through any chain of project calls.  Each
  worker is a fresh process: parent-side tracers silently record into
  a buffer nobody ever drains, ledgers write half-formed rows, and
  tracemalloc doubles peak memory in every worker.  The rule walks the
  :class:`~repro.lint.project.ProjectIndex` call graph from every
  submitted function (and pool initializer) and reports the offending
  call chain at the submission site.  A worker initializer that
  *resets* the state (``set_tracer``, ``set_registry``,
  ``tracemalloc.stop``) is the sanctioned pattern and is not flagged
  -- the mitigating calls are deliberately absent from the catalog.

* **REP012** -- a value known not to survive pickling flows into a
  submission: lambdas and nested functions (unpicklable by
  construction), generator expressions, open file handles, and
  instances of catalogued classes such as
  :class:`~repro.activity.probability.ActivityOracle`, whose
  per-instance ``lru_cache`` wrappers cannot be pickled (ship
  ``oracle.tables`` and rebuild worker-side instead).  Arguments are
  checked one hop deep: the expression itself, and -- for a plain name
  -- the value it was last assigned in the enclosing function.

Both rules fire at the ``submit``/``map`` call so a single suppression
comment can acknowledge a reviewed site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint import quantities as Q
from repro.lint.model import qualified_name
from repro.lint.project import FunctionInfo, ProjectIndex
from repro.lint.quantity import RawFinding

__all__ = ["ForkSafetyAnalysis", "SubmissionSite", "analyze_fork_safety"]

#: Qualified names that construct a process pool.
_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Pool methods that ship a callable (+ arguments) to a worker process.
_SUBMIT_METHODS = frozenset({"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"})


@dataclass
class SubmissionSite:
    """One ``pool.submit(...)`` / ``pool.map(...)`` call."""

    function: FunctionInfo  #: the enclosing (parent-side) function
    node: ast.Call  #: the submit/map call expression
    method: str
    worker: Optional[ast.AST]  #: first argument: the shipped callable
    payload: Sequence[ast.AST] = ()  #: remaining arguments


def _is_pool_constructor(resolved: Optional[str]) -> bool:
    if resolved is None:
        return False
    if resolved in _POOL_CONSTRUCTORS:
        return True
    return resolved.rsplit(".", 1)[-1] == "ProcessPoolExecutor"


class ForkSafetyAnalysis:
    """Collect submission sites, walk worker call graphs, emit findings."""

    def __init__(self, index: ProjectIndex):
        self.index = index

    # ------------------------------------------------------------------
    # site discovery
    # ------------------------------------------------------------------
    def _pool_bindings(
        self, function: FunctionInfo
    ) -> Tuple[Set[str], List[Tuple[ast.Call, ast.AST]]]:
        """Names bound to pool instances, and ``initializer=`` roots.

        Returns ``(pool_names, initializers)`` where each initializer
        entry is ``(constructor call, initializer expression)``.
        """
        constructor_nodes: Set[int] = set()
        initializers: List[Tuple[ast.Call, ast.AST]] = []
        for site in function.calls:
            if not _is_pool_constructor(site.resolved):
                continue
            constructor_nodes.add(id(site.node))
            for keyword in site.node.keywords:
                if keyword.arg == "initializer":
                    initializers.append((site.node, keyword.value))
        pool_names: Set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Call) and id(node.value) in constructor_nodes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            pool_names.add(target.id)
            elif isinstance(node, ast.With):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and id(item.context_expr) in constructor_nodes
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        pool_names.add(item.optional_vars.id)
        return pool_names, initializers

    def _submission_sites(
        self, function: FunctionInfo
    ) -> Tuple[List[SubmissionSite], List[Tuple[ast.Call, ast.AST]]]:
        pool_names, initializers = self._pool_bindings(function)
        sites: List[SubmissionSite] = []
        if not pool_names and not initializers:
            return sites, initializers
        for call_site in function.calls:
            node = call_site.node
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _SUBMIT_METHODS:
                continue
            receiver = node.func.value
            if not (isinstance(receiver, ast.Name) and receiver.id in pool_names):
                continue
            worker = node.args[0] if node.args else None
            sites.append(
                SubmissionSite(
                    function=function,
                    node=node,
                    method=node.func.attr,
                    worker=worker,
                    payload=list(node.args[1:]),
                )
            )
        return sites, initializers

    # ------------------------------------------------------------------
    # REP011: reachable global state
    # ------------------------------------------------------------------
    def _resolve_worker(
        self, function: FunctionInfo, expr: Optional[ast.AST]
    ) -> Optional[FunctionInfo]:
        if expr is None:
            return None
        resolved = self.index.resolve_callable(function, expr)
        return self.index.function_for(resolved)

    def _unsafe_reaches(
        self, root: FunctionInfo
    ) -> Iterator[Tuple[str, str, List[str]]]:
        """(unsafe call name, hazard, call chain) reachable from root."""
        parents, order = self.index.reachable_from([root])
        seen: Set[Tuple[str, str]] = set()
        for function in order:
            for site in function.calls:
                if site.resolved is None:
                    continue
                hazard = Q.UNSAFE_WORKER_CALLS.get(site.resolved)
                if hazard is None:
                    continue
                key = (root.qualname, hazard)
                if key in seen:
                    continue
                seen.add(key)
                chain = self.index.call_chain(parents, function.qualname)
                chain.append(site.resolved.rsplit(".", 1)[-1] + "()")
                yield site.resolved, hazard, chain

    def _emit_worker_findings(
        self,
        findings: List[RawFinding],
        function: FunctionInfo,
        anchor: ast.AST,
        root: FunctionInfo,
        role: str,
    ) -> None:
        for _name, hazard, chain in self._unsafe_reaches(root):
            findings.append(
                RawFinding(
                    code="REP011",
                    module=function.module.source,
                    node=anchor,
                    message=(
                        "%s %s() reaches %s in a worker process via %s; "
                        "reset it in the pool initializer or strip the "
                        "call from the worker path"
                        % (
                            role,
                            root.name,
                            hazard,
                            " -> ".join(part.rsplit(".", 1)[-1] for part in chain),
                        )
                    ),
                )
            )

    # ------------------------------------------------------------------
    # REP012: unpicklable payloads
    # ------------------------------------------------------------------
    def _assigned_values(self, function: FunctionInfo) -> Dict[str, ast.AST]:
        """Last assigned value expression per local name (one hop)."""
        values: Dict[str, ast.AST] = {}
        for node in ast.walk(function.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        values[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    values[node.target.id] = node.value
            elif isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        values[item.optional_vars.id] = item.context_expr
        return values

    def _unpicklable_reason(
        self,
        function: FunctionInfo,
        expr: ast.AST,
        assigned: Dict[str, ast.AST],
        depth: int = 0,
    ) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return "a lambda cannot be pickled into a worker"
        if isinstance(expr, ast.GeneratorExp):
            return "a generator cannot be pickled into a worker"
        if isinstance(expr, ast.Name):
            if expr.id in function.nested_names:
                return (
                    "nested function %r cannot be pickled into a worker "
                    "(move it to module scope)" % expr.id
                )
            if depth == 0 and expr.id in assigned:
                return self._unpicklable_reason(
                    function, assigned[expr.id], assigned, depth=1
                )
            return None
        if isinstance(expr, ast.Call):
            resolved = self.index.resolve_callable(function, expr.func)
            candidates = [resolved] if resolved else []
            dotted = qualified_name(expr.func)
            if dotted is not None:
                candidates.append(dotted)
            for candidate in candidates:
                if candidate == "builtins.open" or candidate == "open":
                    return "an open file handle cannot be pickled into a worker"
                fix = Q.UNPICKLABLE_CLASSES.get(candidate)
                if fix is None:
                    fix = Q.UNPICKLABLE_CLASSES.get(candidate.rsplit(".", 1)[-1])
                if fix is not None:
                    return "%s instances cannot be pickled into a worker (%s)" % (
                        candidate.rsplit(".", 1)[-1],
                        fix,
                    )
            return None
        return None

    def _class_typed_params(self, function: FunctionInfo) -> Dict[str, str]:
        """Parameter name -> annotated class name, for catalogued types."""
        typed: Dict[str, str] = {}
        args = function.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is None:
                continue
            dotted = (
                qualified_name(arg.annotation)
                if isinstance(arg.annotation, (ast.Name, ast.Attribute))
                else None
            )
            if dotted is None:
                continue
            bare = dotted.rsplit(".", 1)[-1]
            if bare in Q.UNPICKLABLE_CLASSES or dotted in Q.UNPICKLABLE_CLASSES:
                typed[arg.arg] = bare
        return typed

    def _emit_payload_findings(
        self, findings: List[RawFinding], site: SubmissionSite
    ) -> None:
        function = site.function
        assigned = self._assigned_values(function)
        typed_params = self._class_typed_params(function)
        checked: List[ast.AST] = []
        if site.worker is not None:
            checked.append(site.worker)
        checked.extend(site.payload)
        seen: Set[str] = set()
        for expr in checked:
            reason = self._unpicklable_reason(function, expr, assigned)
            if reason is None and isinstance(expr, ast.Name):
                bare = typed_params.get(expr.id)
                if bare is not None:
                    fix = Q.UNPICKLABLE_CLASSES.get(bare, "")
                    reason = "%s instances cannot be pickled into a worker (%s)" % (
                        bare,
                        fix,
                    )
            if reason is None or reason in seen:
                continue
            seen.add(reason)
            findings.append(
                RawFinding(
                    code="REP012",
                    module=function.module.source,
                    node=site.node,
                    message="%s() payload: %s" % (site.method, reason),
                )
            )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> List[RawFinding]:
        findings: List[RawFinding] = []
        for function in self.index.iter_functions():
            sites, initializers = self._submission_sites(function)
            for constructor, init_expr in initializers:
                root = self._resolve_worker(function, init_expr)
                if root is not None:
                    self._emit_worker_findings(
                        findings, function, constructor, root, "pool initializer"
                    )
            for site in sites:
                root = self._resolve_worker(function, site.worker)
                if root is not None:
                    self._emit_worker_findings(
                        findings, function, site.node, root, "worker"
                    )
                self._emit_payload_findings(findings, site)
        return findings


def analyze_fork_safety(index: ProjectIndex) -> List[RawFinding]:
    """Convenience wrapper mirroring :func:`analyze_project`."""
    return ForkSafetyAnalysis(index).run()
