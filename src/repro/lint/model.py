"""Data model of the project linter: findings, rules, the catalog.

A :class:`Finding` is one diagnosed violation, located by file and
line and rendered in the same one-line ``source: line N: message``
style as :meth:`repro.check.errors.ReproError.diagnostic`, so lint
output and runtime diagnostics read alike.  A :class:`Rule` inspects
one parsed module at a time and yields findings; the engine owns file
discovery, suppression comments and the baseline.

Findings carry a *fingerprint* -- a hash of rule code, relative path
and the stripped source line -- so a committed baseline keeps matching
entries when unrelated edits shift line numbers.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str  #: rule code, e.g. ``"REP002"``
    path: str  #: project-root-relative posix path
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    message: str
    snippet: str = ""  #: the stripped offending source line

    def diagnostic(self) -> str:
        """One-line diagnostic, ``repro.check.errors`` style."""
        return "%s: line %d: [%s] %s" % (self.path, self.line, self.rule, self.message)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        digest = hashlib.sha1(
            ("%s|%s|%s" % (self.rule, self.path, self.snippet)).encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def as_dict(self) -> Dict[str, Any]:
        """Stable-key dict for the JSON reporter."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleSource:
    """One parsed module handed to every rule."""

    path: str  #: project-root-relative posix path
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def line_at(self, lineno: int) -> str:
        """The stripped source text of a 1-based line ('' off the end)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``code`` must be unique (``REPnnn``); ``title`` is the short name
    shown in summaries; ``rationale`` documents *why* the invariant
    matters (rendered into ``DESIGN.md``'s rule table).
    """

    code: str = "REP000"
    title: str = "abstract rule"
    rationale: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` located at an AST node."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.code,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=module.line_at(line),
        )


class ProjectRule(Rule):
    """A rule that inspects the whole scanned set at once.

    Per-module rules see one file at a time; project rules (the
    quantity and fork-safety analyses, REP008..REP012) need the cross-
    module index the engine builds after parsing everything.  The
    engine calls :meth:`check_project` once per run with a
    ``repro.lint.project.ProjectContext``; expensive shared analyses
    are memoized on the context so sibling rules reuse them.
    """

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(self, context: Any) -> Iterator[Finding]:
        raise NotImplementedError


def qualified_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; chains
    broken by calls or subscripts return ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_scopes(tree: ast.Module) -> Iterator[List[ast.stmt]]:
    """Yield each scope's statement list: module body, then every
    function body (nested functions yield their own scope)."""
    yield list(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield list(node.body)


def iter_findings(
    rules: Iterable[Rule], module: ModuleSource
) -> Iterator[Finding]:
    """All findings of all rules over one module, in rule order."""
    for rule in rules:
        yield from rule.check(module)
