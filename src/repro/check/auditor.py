"""Full-network invariant auditor.

Generalizes :mod:`repro.analysis.audit` from per-tree numeric rechecks
to the whole routed network: clock tree, embedding geometry, enable
hierarchy, and the controller star.  Every violation is reported as a
structured :class:`AuditFinding` naming the offending node, and the
report can re-raise the findings as the typed audit errors of
:mod:`repro.check.errors`.

Invariants checked (all recomputed from scratch -- never trusting the
router's incremental bookkeeping):

``skew``
    Recomputed Elmore skew within the declared bound; the router's
    root delay interval brackets the recomputed arrivals.
``cap``
    Per-node downstream capacitance matches an independent Elmore
    walk; all caps finite and non-negative.
``enable``
    ``P(EN)`` is monotone non-decreasing up the tree, every node's
    module mask is the union of its children's, probabilities in
    ``[0, 1]``.
``embedding``
    Every merging segment is a Manhattan arc, every node is placed on
    its segment, every edge's electrical length covers its endpoints'
    Manhattan distance, and each parent's merging segment lies inside
    the child's segment expanded by the child's edge length (the TRR
    feasibility that made the merge legal in the first place).
``controller``
    The enable-star routing lists exactly the tree's gated edges, with
    the controller assignment, edge lengths, transition probabilities
    and switched-capacitance/wirelength totals that
    :func:`repro.core.controller.route_enables` would recompute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.check.tolerance import relatively_close

from repro.check.errors import (
    AuditError,
    CapAuditError,
    ControllerAuditError,
    EmbeddingAuditError,
    EnableAuditError,
    SkewAuditError,
)

#: Maps finding kinds to the typed error raised for them, in the order
#: :meth:`NetworkAuditReport.raise_if_failed` prefers when several
#: kinds fail at once (most fundamental first).
_KIND_ERRORS = (
    ("embedding", EmbeddingAuditError),
    ("cap", CapAuditError),
    ("skew", SkewAuditError),
    ("enable", EnableAuditError),
    ("controller", ControllerAuditError),
)


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation: which check, where, and what happened."""

    kind: str
    message: str
    node: Optional[int] = None

    def __str__(self) -> str:
        if self.node is not None:
            return "[%s] node %d: %s" % (self.kind, self.node, self.message)
        return "[%s] %s" % (self.kind, self.message)


@dataclass
class NetworkAuditReport:
    """Outcome of :func:`audit_network`."""

    skew: float
    phase_delay: float
    max_cap_error: float
    """Largest |router subtree cap - recomputed subtree cap|, pF."""

    max_delay_error: float
    """|router root delay - recomputed phase delay|."""

    checks: List[str] = field(default_factory=list)
    """Names of the invariant groups that ran."""

    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def problems(self) -> List[str]:
        """The findings as plain strings (legacy ``AuditReport`` shape)."""
        return [f.message for f in self.findings]

    def findings_of(self, kind: str) -> List[AuditFinding]:
        return [f for f in self.findings if f.kind == kind]

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            "network audit: %s (%d checks: %s)"
            % (
                "clean" if self.ok else "%d finding(s)" % len(self.findings),
                len(self.checks),
                ", ".join(self.checks),
            ),
            "  skew=%.6g  phase_delay=%.6g  max_cap_error=%.3g  "
            "max_delay_error=%.3g"
            % (self.skew, self.phase_delay, self.max_cap_error, self.max_delay_error),
        ]
        lines.extend("  %s" % f for f in self.findings)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise the typed :class:`AuditError` for the findings, if any."""
        if self.ok:
            return
        for kind, error in _KIND_ERRORS:
            bad = self.findings_of(kind)
            if bad:
                first = bad[0]
                extra = len(self.findings) - 1
                message = first.message
                if extra:
                    message += " (+%d more finding(s))" % extra
                raise error(message, node=first.node)
        raise AuditError(self.findings[0].message, node=self.findings[0].node)


def audit_network(
    tree,
    routing=None,
    skew_tolerance: float = 1e-6,
    cap_tolerance: float = 1e-9,
    skew_bound: float = 0.0,
    geometry_tolerance: float = 1e-6,
) -> NetworkAuditReport:
    """Re-derive every network invariant and report disagreements.

    ``skew_tolerance`` is relative to the phase delay, ``cap_tolerance``
    relative to the subtree capacitance, ``geometry_tolerance`` an
    absolute slack on placement/containment checks.  ``skew_bound`` is
    the tree's declared skew budget (0 for exact zero-skew trees).
    ``routing``, when given, is the :class:`repro.core.controller.
    EnableRouting` to verify against the tree's gates.
    """
    findings: List[AuditFinding] = []
    checks = ["skew", "cap", "enable", "embedding"]

    # -- skew / delay recheck (ground-truth Elmore walk) ---------------
    evaluator = tree.elmore_evaluator()
    delays = evaluator.sink_delays()
    phase = max(s.delay for s in delays)
    earliest = min(s.delay for s in delays)
    skew = phase - earliest
    if not math.isfinite(skew) or not math.isfinite(phase):
        findings.append(
            AuditFinding(
                "skew",
                "recomputed delays are not finite (phase %r, skew %r)"
                % (phase, skew),
            )
        )
    elif phase > 0 and skew > skew_bound + skew_tolerance * phase:
        latest = max(delays, key=lambda s: s.delay)
        findings.append(
            AuditFinding(
                "skew",
                "skew %.3e exceeds the bound %.3e (+%.1e of the phase delay "
                "%.3e)" % (skew, skew_bound, skew_tolerance, phase),
                node=latest.node,
            )
        )
    root = tree.root
    if earliest < root.sink_delay_min - skew_tolerance * max(phase, 1.0):
        findings.append(
            AuditFinding(
                "skew",
                "root interval low edge %.6g above earliest recomputed "
                "arrival %.6g" % (root.sink_delay_min, earliest),
                node=root.id,
            )
        )
    max_delay_error = abs(root.sink_delay - phase)
    if phase > 0 and max_delay_error > skew_tolerance * phase:
        findings.append(
            AuditFinding(
                "skew",
                "root delay drift: router %.6g vs recomputed %.6g"
                % (root.sink_delay, phase),
                node=root.id,
            )
        )

    # -- downstream capacitance consistency ----------------------------
    max_cap_error = 0.0
    for node in tree.nodes():
        if not math.isfinite(node.subtree_cap) or node.subtree_cap < 0:
            findings.append(
                AuditFinding(
                    "cap",
                    "node %d subtree cap is %r; must be finite and "
                    "non-negative" % (node.id, node.subtree_cap),
                    node=node.id,
                )
            )
            continue
        recomputed = evaluator.subtree_cap(node.id)
        error = abs(recomputed - node.subtree_cap)
        max_cap_error = max(max_cap_error, error)
        if error > cap_tolerance * max(recomputed, 1.0):
            findings.append(
                AuditFinding(
                    "cap",
                    "node %d subtree cap drift: router %.6g vs recomputed "
                    "%.6g" % (node.id, node.subtree_cap, recomputed),
                    node=node.id,
                )
            )

    # -- enable hierarchy (paper section 1) ----------------------------
    for node in tree.nodes():
        p = node.enable_probability
        if not math.isfinite(p) or p < -1e-12 or p > 1.0 + 1e-12:
            findings.append(
                AuditFinding(
                    "enable",
                    "node %d enable probability %r outside [0, 1]"
                    % (node.id, p),
                    node=node.id,
                )
            )
    for node in tree.internal_nodes():
        child_union = 0
        for child_id in node.children:
            child = tree.node(child_id)
            child_union |= child.module_mask
            if node.enable_probability < child.enable_probability - 1e-9:
                findings.append(
                    AuditFinding(
                        "enable",
                        "node %d enable probability below child %d's"
                        % (node.id, child_id),
                        node=node.id,
                    )
                )
        if node.module_mask != child_union:
            findings.append(
                AuditFinding(
                    "enable",
                    "node %d module mask is not the union of its children's"
                    % node.id,
                    node=node.id,
                )
            )

    # -- embedding / TRR geometry --------------------------------------
    findings.extend(_audit_embedding(tree, geometry_tolerance))

    # -- controller star -----------------------------------------------
    if routing is not None:
        checks.append("controller")
        findings.extend(_audit_controller(tree, routing, geometry_tolerance))

    return NetworkAuditReport(
        skew=skew,
        phase_delay=phase,
        max_cap_error=max_cap_error,
        max_delay_error=max_delay_error,
        checks=checks,
        findings=findings,
    )


def _audit_embedding(tree, tol: float) -> List[AuditFinding]:
    """Per-node geometry findings (the embedding invariants)."""
    findings: List[AuditFinding] = []
    root_id = tree.root_id
    for node in tree.preorder():
        seg = node.merging_segment
        for name, value in (
            ("ulo", seg.ulo),
            ("uhi", seg.uhi),
            ("vlo", seg.vlo),
            ("vhi", seg.vhi),
        ):
            if not math.isfinite(value):
                findings.append(
                    AuditFinding(
                        "embedding",
                        "node %d merging segment bound %s is %r"
                        % (node.id, name, value),
                        node=node.id,
                    )
                )
        if not seg.is_arc:
            findings.append(
                AuditFinding(
                    "embedding",
                    "node %d merging segment is a 2-D region, not a "
                    "Manhattan arc (u extent %.3g, v extent %.3g)"
                    % (node.id, seg.u_extent, seg.v_extent),
                    node=node.id,
                )
            )
        if node.location is None:
            findings.append(
                AuditFinding(
                    "embedding",
                    "node %d is not placed" % node.id,
                    node=node.id,
                )
            )
            continue
        if not seg.contains_point(node.location, tol=tol):
            findings.append(
                AuditFinding(
                    "embedding",
                    "node %d placed off its merging segment" % node.id,
                    node=node.id,
                )
            )
        if node.id == root_id:
            continue
        if not math.isfinite(node.edge_length) or node.edge_length < 0:
            findings.append(
                AuditFinding(
                    "embedding",
                    "node %d edge length is %r; must be finite and "
                    "non-negative" % (node.id, node.edge_length),
                    node=node.id,
                )
            )
            continue
        parent = tree.node(node.parent)
        if parent.location is not None:
            dist = node.location.manhattan_to(parent.location)
            if node.edge_length < dist - tol:
                findings.append(
                    AuditFinding(
                        "embedding",
                        "edge above node %d shorter than its endpoints' "
                        "distance (%.6g < %.6g)"
                        % (node.id, node.edge_length, dist),
                        node=node.id,
                    )
                )
        # The parent's merge region must be reachable from the child's
        # segment within the child's wire budget: that containment is
        # exactly what made the bottom-up merge feasible.
        reach = seg.core(node.edge_length + tol)
        if not reach.contains_trr(parent.merging_segment, tol=tol):
            findings.append(
                AuditFinding(
                    "embedding",
                    "node %d merge region not contained in child %d's "
                    "segment expanded by its edge length %.6g"
                    % (parent.id, node.id, node.edge_length),
                    node=node.id,
                )
            )
    return findings


def _audit_controller(tree, routing, tol: float) -> List[AuditFinding]:
    """Verify the enable-star routing against the tree's gates."""
    from repro.core.controller import gate_location

    findings: List[AuditFinding] = []
    layout = routing.layout
    gated = {n.id: n for n in tree.gates()}
    routed = {}
    for route in routing.routes:
        if route.node_id in routed:
            findings.append(
                AuditFinding(
                    "controller",
                    "node %d routed twice in the enable star" % route.node_id,
                    node=route.node_id,
                )
            )
        routed[route.node_id] = route
    for nid in gated:
        if nid not in routed:
            findings.append(
                AuditFinding(
                    "controller",
                    "gated edge above node %d has no enable route" % nid,
                    node=nid,
                )
            )
    for nid, route in routed.items():
        if nid not in gated:
            findings.append(
                AuditFinding(
                    "controller",
                    "enable route targets node %d, whose edge carries no "
                    "masking gate" % nid,
                    node=nid,
                )
            )
            continue
        node = gated[nid]
        pin = gate_location(tree, node)
        index, ctrl = layout.controller_for(pin)
        if routing.explicit_assignment:
            # Refined routings may override the partition owner; the
            # assignment just has to name a real controller, and the
            # length below is checked against the *assigned* one.
            if not 0 <= route.controller_index < layout.count:
                findings.append(
                    AuditFinding(
                        "controller",
                        "node %d enable assigned controller %d; layout has "
                        "%d" % (nid, route.controller_index, layout.count),
                        node=nid,
                    )
                )
                continue
            ctrl = layout.points[route.controller_index]
        elif index != route.controller_index:
            findings.append(
                AuditFinding(
                    "controller",
                    "node %d enable assigned controller %d; partition owner "
                    "is %d" % (nid, route.controller_index, index),
                    node=nid,
                )
            )
        length = pin.manhattan_to(ctrl)
        if abs(length - route.length) > tol * max(1.0, length):
            findings.append(
                AuditFinding(
                    "controller",
                    "node %d enable length drift: routed %.6g vs recomputed "
                    "%.6g" % (nid, route.length, length),
                    node=nid,
                )
            )
        ptr = node.enable_transition_probability
        if abs(ptr - route.transition_probability) > 1e-12:
            findings.append(
                AuditFinding(
                    "controller",
                    "node %d enable transition probability drift: routed "
                    "%.6g vs tree %.6g"
                    % (nid, route.transition_probability, ptr),
                    node=nid,
                )
            )
    # Totals: recompute W(S) and the star wirelength from the tree.
    tech = tree.tech
    c = tech.unit_wire_capacitance
    gate_in = tech.masking_gate.input_cap
    switched = 0.0
    wirelength = 0.0
    for nid, node in gated.items():
        pin = gate_location(tree, node)
        _, ctrl = layout.controller_for(pin)
        if routing.explicit_assignment and nid in routed:
            index = routed[nid].controller_index
            if 0 <= index < layout.count:
                ctrl = layout.points[index]
        length = pin.manhattan_to(ctrl)
        switched += (c * length + gate_in) * node.enable_transition_probability
        wirelength += length
    if not relatively_close(routing.wirelength, wirelength, rel=tol):
        findings.append(
            AuditFinding(
                "controller",
                "enable-star wirelength drift: routed %.6g vs recomputed "
                "%.6g" % (routing.wirelength, wirelength),
            )
        )
    if not relatively_close(routing.switched_cap, switched, rel=tol):
        findings.append(
            AuditFinding(
                "controller",
                "enable-star switched cap drift: routed %.6g vs recomputed "
                "%.6g" % (routing.switched_cap, switched),
            )
        )
    return findings
