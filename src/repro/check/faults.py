"""Fault-injection harness.

Systematically perturbs *valid* inputs -- sink files, ISA/trace files,
tree JSON dumps, technology records -- and checks that every
perturbation surfaces as a typed :class:`~repro.check.errors.ReproError`
with a file/line/field diagnostic (or, for benign perturbations such as
co-located sinks, routes cleanly and passes the full network audit).
Never an unhandled traceback, a hang, or a silently wrong number.

The harness drives the real CLI entry point (``repro.cli.main``) so it
exercises the same code path a user hits, and the expected outcome is
part of each fault's contract:

* ``expect="error"``   -> CLI exit code 2, one-line diagnostic;
* ``expect="findings"``-> CLI exit code 1 (the audit ran and reported
  invariant violations);
* ``expect="ok"``      -> CLI exit code 0 and a clean ``--audit`` run.

``tests/test_check_faults.py`` runs the whole matrix x vectorize
on/off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.errors import ReproError

Mutator = Callable[[str], str]

#: Exit code the CLI maps typed errors (and OSError on inputs) to.
ERROR_EXIT_CODE = 2
#: Exit code of an ``audit`` run that completed but found violations.
FINDINGS_EXIT_CODE = 1


@dataclass(frozen=True)
class Fault:
    """One systematic input perturbation and its expected outcome."""

    name: str
    kind: str
    """Which input file the mutator rewrites: ``sinks`` | ``isa`` |
    ``trace`` | ``tree``."""

    expect: str
    """``error`` (typed ReproError, exit 2), ``findings`` (audit exit
    1), or ``ok`` (exit 0 + clean audit)."""

    description: str
    mutate: Mutator

    extra_argv: Tuple[str, ...] = ()
    """Extra CLI flags for this fault's invocation; the ``{dir}``
    placeholder expands to the fault's working directory (for flags
    that take an output path, e.g. ``--ledger``)."""


@dataclass
class FaultOutcome:
    """What actually happened when one fault was driven through the CLI."""

    fault: Fault
    argv: Tuple[str, ...]
    exit_code: Optional[int] = None
    unhandled: Optional[BaseException] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.unhandled is None and not self.problems


# ----------------------------------------------------------------------
# mutators
# ----------------------------------------------------------------------
def _data_lines(text: str) -> List[int]:
    """Indices (into splitlines) of non-comment, non-blank lines."""
    out = []
    for i, line in enumerate(text.splitlines()):
        if line.split("#", 1)[0].strip():
            out.append(i)
    return out


def _edit_sink_field(text: str, line_pos: int, field_pos: int, value: str) -> str:
    """Rewrite one whitespace field of the ``line_pos``-th data line."""
    lines = text.splitlines()
    idx = _data_lines(text)[line_pos]
    parts = lines[idx].split()
    parts[field_pos] = value
    lines[idx] = " ".join(parts)
    return "\n".join(lines) + "\n"


def _duplicate_name(text: str) -> str:
    lines = text.splitlines()
    data = _data_lines(text)
    first = lines[data[0]].split()[0]
    return _edit_sink_field(text, 1, 0, first)


def _colocate(text: str) -> str:
    lines = text.splitlines()
    data = _data_lines(text)
    x, y = lines[data[0]].split()[1:3]
    text = _edit_sink_field(text, 1, 1, x)
    return _edit_sink_field(text, 1, 2, y)


def _truncate_line(text: str) -> str:
    lines = text.splitlines()
    idx = _data_lines(text)[-1]
    lines[idx] = " ".join(lines[idx].split()[:2])
    return "\n".join(lines) + "\n"


def _strip_data(text: str) -> str:
    keep = [
        line
        for line in text.splitlines()
        if not line.split("#", 1)[0].strip()
    ]
    return "\n".join(keep) + "\n"


def _json_edit(mutate: Callable[[dict], None]) -> Mutator:
    def apply(text: str) -> str:
        data = json.loads(text)
        mutate(data)
        return json.dumps(data, indent=1)

    return apply


def _isa_module_overflow(data: dict) -> None:
    name = next(iter(data["instructions"]))
    data["instructions"][name].append(int(data["num_modules"]) + 5)


def _tree_nan_cap(data: dict) -> None:
    internal = [n for n in data["nodes"] if n["sink"] is None]
    internal[0]["subtree_cap"] = float("nan")


def _tree_cap_drift(data: dict) -> None:
    internal = [n for n in data["nodes"] if n["sink"] is None]
    internal[0]["subtree_cap"] = internal[0]["subtree_cap"] * 2.0 + 1.0


def _tree_off_segment(data: dict) -> None:
    node = data["nodes"][data["root"]]
    seg = node["merging_segment"]
    span = max(1.0, abs(seg[1] - seg[0]) + abs(seg[3] - seg[2]))
    node["location"] = [node["location"][0] + 10.0 * span, node["location"][1]]


def _tree_enable_break(data: dict) -> None:
    internal = [n for n in data["nodes"] if n["sink"] is None]
    internal[-1]["enable_probability"] = -0.25


def _tree_zero_cap_tech(data: dict) -> None:
    data["technology"]["unit_wire_capacitance"] = 0.0


FAULTS: Tuple[Fault, ...] = (
    # -- sink file -----------------------------------------------------
    Fault("nan_coordinate", "sinks", "error", "x coordinate is NaN",
          lambda t: _edit_sink_field(t, 0, 1, "nan")),
    Fault("inf_coordinate", "sinks", "error", "y coordinate is +inf",
          lambda t: _edit_sink_field(t, 0, 2, "inf")),
    Fault("negative_load_cap", "sinks", "error", "negative load cap",
          lambda t: _edit_sink_field(t, 0, 3, "-0.5")),
    Fault("nan_load_cap", "sinks", "error", "NaN load cap",
          lambda t: _edit_sink_field(t, 0, 3, "nan")),
    Fault("negative_module", "sinks", "error", "negative module id",
          lambda t: _edit_sink_field(t, 0, 4, "-1")),
    Fault("module_out_of_range", "sinks", "error",
          "module id beyond the workload's universe",
          lambda t: _edit_sink_field(t, 0, 4, "999999")),
    Fault("duplicate_sink_name", "sinks", "error", "two sinks, one name",
          _duplicate_name),
    Fault("non_numeric_coordinate", "sinks", "error", "x is not a number",
          lambda t: _edit_sink_field(t, 0, 1, "abc")),
    Fault("truncated_sink_line", "sinks", "error", "line with 2 fields",
          _truncate_line),
    Fault("empty_sink_file", "sinks", "error", "comments only, no sinks",
          _strip_data),
    Fault("colocated_sinks", "sinks", "ok",
          "two distinct sinks at identical coordinates (merged with a "
          "zero-length edge and an exact split)",
          _colocate),
    Fault("sharded_ledger_profile", "sinks", "ok",
          "valid inputs routed with --shards/--workers while the "
          "parent records a ledger RunRecord with memory profiling: "
          "the tracemalloc sampler and RunRecord assembly must stay "
          "parent-only under multiprocessing",
          lambda t: t,
          extra_argv=("--shards", "2", "--workers", "2",
                      "--ledger", "{dir}/ledger", "--profile-memory")),
    # -- ISA file ------------------------------------------------------
    Fault("truncated_isa", "isa", "error", "ISA JSON cut mid-token",
          lambda t: t[: len(t) // 2]),
    Fault("isa_bad_version", "isa", "error", "unsupported format version",
          _json_edit(lambda d: d.update(format_version=99))),
    Fault("isa_empty_instructions", "isa", "error", "no instructions",
          _json_edit(lambda d: d.update(instructions={}))),
    Fault("isa_zero_modules", "isa", "error", "num_modules == 0",
          _json_edit(lambda d: d.update(num_modules=0))),
    Fault("isa_module_out_of_range", "isa", "error",
          "instruction uses module >= num_modules",
          _json_edit(_isa_module_overflow)),
    # -- trace file ----------------------------------------------------
    Fault("unknown_instruction", "trace", "error",
          "trace names an instruction the ISA lacks",
          lambda t: t + "BOGUS_INSTR\n"),
    Fault("empty_trace", "trace", "error", "comments only, no cycles",
          _strip_data),
    # -- tree JSON (the audit subcommand's input) ----------------------
    Fault("tree_truncated", "tree", "error", "tree JSON cut mid-token",
          lambda t: t[: len(t) // 2]),
    Fault("tree_bad_version", "tree", "error", "unsupported tree version",
          _json_edit(lambda d: d.update(format_version=99))),
    Fault("tree_zero_cap_tech", "tree", "error",
          "embedded technology has zero wire capacitance",
          _json_edit(_tree_zero_cap_tech)),
    Fault("tree_nan_cap", "tree", "findings", "NaN subtree cap",
          _json_edit(_tree_nan_cap)),
    Fault("tree_cap_drift", "tree", "findings", "corrupted cap bookkeeping",
          _json_edit(_tree_cap_drift)),
    Fault("tree_off_segment", "tree", "findings",
          "root placed off its merging segment",
          _json_edit(_tree_off_segment)),
    Fault("tree_enable_break", "tree", "findings",
          "negative enable probability",
          _json_edit(_tree_enable_break)),
)


def fault_by_name(name: str) -> Fault:
    for fault in FAULTS:
        if fault.name == name:
            return fault
    raise KeyError(name)


# ----------------------------------------------------------------------
# baseline inputs
# ----------------------------------------------------------------------
def write_baseline(directory: "str | Path") -> Dict[str, str]:
    """Write a valid sinks/isa/trace/tree input set into ``directory``.

    Returns the path of each file keyed by fault kind.  The tree JSON
    is a routed (small) instance of the same sinks, so tree faults
    corrupt a genuinely consistent dump.
    """
    from repro.bench.cpu_model import CpuModel, CpuModelConfig
    from repro.bench.sinks import SinkGenerator
    from repro.core.flow import route_gated
    from repro.io.sinkfile import write_sinks
    from repro.io.tracefile import save_workload
    from repro.io.treejson import save_tree
    from repro.tech.presets import date98_technology

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    paths = {
        "sinks": str(base / "sinks.txt"),
        "isa": str(base / "isa.json"),
        "trace": str(base / "trace.txt"),
        "tree": str(base / "tree.json"),
    }
    cpu = CpuModel(CpuModelConfig(num_modules=12, num_instructions=6, seed=1))
    sinks = SinkGenerator(num_sinks=12, seed=1).generate()
    write_sinks(sinks, paths["sinks"])
    save_workload(cpu.isa, cpu.stream(300), paths["isa"], paths["trace"])

    from repro.io.tracefile import load_workload

    oracle = load_workload(paths["isa"], paths["trace"])
    result = route_gated(sinks, date98_technology(), oracle)
    save_tree(result.tree, paths["tree"])
    return paths


def apply_fault(fault: Fault, paths: Dict[str, str], directory: "str | Path") -> Dict[str, str]:
    """Copy the baseline inputs into ``directory`` with one fault applied."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    out: Dict[str, str] = {}
    for kind, src in paths.items():
        text = Path(src).read_text(encoding="utf-8")
        if kind == fault.kind:
            text = fault.mutate(text)
        dst = base / Path(src).name
        dst.write_text(text, encoding="utf-8")
        out[kind] = str(dst)
    return out


# ----------------------------------------------------------------------
# driving the CLI
# ----------------------------------------------------------------------
def cli_argv(fault: Fault, paths: Dict[str, str], vectorize: bool = True) -> List[str]:
    """The CLI invocation that consumes the fault's input kind."""
    if fault.kind == "tree":
        return ["audit", "--tree", paths["tree"]]
    argv = [
        "route",
        "--sinks", paths["sinks"],
        "--isa", paths["isa"],
        "--instr-trace", paths["trace"],
        "--method", "gated",
        "--audit",
    ]
    if not vectorize:
        argv.append("--no-vectorize")
    workdir = str(Path(paths[fault.kind]).parent)
    argv.extend(flag.replace("{dir}", workdir) for flag in fault.extra_argv)
    return argv


def run_fault(
    fault: Fault,
    baseline: Dict[str, str],
    directory: "str | Path",
    vectorize: bool = True,
) -> FaultOutcome:
    """Drive one fault through the CLI and judge the outcome."""
    from repro.cli import main

    paths = apply_fault(fault, baseline, directory)
    argv = cli_argv(fault, paths, vectorize=vectorize)
    outcome = FaultOutcome(fault=fault, argv=tuple(argv))
    try:
        outcome.exit_code = main(argv)
    except SystemExit as exc:  # argparse-style exits still count as typed
        outcome.exit_code = int(exc.code or 0)
    except ReproError as exc:  # the CLI should have mapped this to exit 2
        outcome.unhandled = exc
        outcome.problems.append(
            "typed error escaped the CLI handler: %r" % exc
        )
        return outcome
    except BaseException as exc:  # noqa: BLE001 - the whole point
        outcome.unhandled = exc
        outcome.problems.append(
            "unhandled %s: %s" % (type(exc).__name__, exc)
        )
        return outcome

    expected = {
        "error": ERROR_EXIT_CODE,
        "findings": FINDINGS_EXIT_CODE,
        "ok": 0,
    }[fault.expect]
    if outcome.exit_code != expected:
        outcome.problems.append(
            "fault %r: expected exit code %d, got %r"
            % (fault.name, expected, outcome.exit_code)
        )
    return outcome


def run_fault_matrix(
    workdir: "str | Path",
    faults: Optional[Sequence[Fault]] = None,
    vectorize_modes: Sequence[bool] = (True, False),
) -> List[FaultOutcome]:
    """Run every fault x vectorize mode; return all outcomes.

    A clean harness run returns outcomes with ``outcome.ok`` True for
    every entry; callers (tests, CI) assert exactly that.
    """
    base = Path(workdir)
    baseline = write_baseline(str(base / "baseline"))
    outcomes: List[FaultOutcome] = []
    for fault in faults if faults is not None else FAULTS:
        for vectorize in vectorize_modes:
            tag = "%s-%s" % (fault.name, "vec" if vectorize else "scalar")
            outcomes.append(
                run_fault(fault, baseline, base / tag, vectorize=vectorize)
            )
    return outcomes
