"""Shared float-comparison helpers: one tolerance policy, used twice.

The auditor and the analysis layer both need "is this quantity zero?"
and "do these two quantities agree?" checks on accumulated float
sums.  Exact ``==`` on such values is forbidden (lint rule REP001):
whether ``a - b`` is exactly ``0.0`` depends on association order,
which the vectorized kernels deliberately vary batch by batch.  These
helpers give both layers the same explicit policy instead of
scattered ad-hoc epsilons.

All comparisons treat NaN as a failure (NaN is never "zero" and never
"close"), so silent NaN propagation surfaces as a finding rather than
vacuous truth.
"""

from __future__ import annotations

import math

#: Absolute tolerance under which an accumulated length/cap/delay sum
#: counts as zero.  Physical quantities in this flow are O(1)..O(1e6)
#: (micron wirelengths, femtofarad caps), so 1e-12 is far below any
#: representable signal yet far above double rounding residue.
ZERO_TOL = 1e-12

#: Default relative tolerance for agreement checks between a recomputed
#: quantity and its bookkept counterpart (matches the auditor's
#: geometry tolerance scale).
REL_TOL = 1e-9


def effectively_zero(value: float, tol: float = ZERO_TOL) -> bool:
    """Is ``value`` zero up to the absolute tolerance?  NaN -> False."""
    return abs(value) <= tol if math.isfinite(value) else False


def relatively_close(
    a: float, b: float, rel: float = REL_TOL, floor: float = 1.0
) -> bool:
    """Do ``a`` and ``b`` agree to ``rel`` of their magnitude?

    The comparison scale is ``max(|a|, |b|, floor)`` -- the ``floor``
    keeps the test meaningful near zero, where a pure relative test
    degenerates to exact equality.  NaN on either side -> False.
    """
    if not (math.isfinite(a) and math.isfinite(b)):
        return False
    return abs(a - b) <= rel * max(abs(a), abs(b), floor)
