"""Strict input validators for the flow entry points.

Each validator either returns silently or raises a typed error from
:mod:`repro.check.errors` naming the offending object and field.  They
are deliberately duck-typed (attribute access only, no repro imports
beyond the error types), so the low-level packages can call them
without import cycles.

``read_sinks`` / ``read_trace`` validate at parse time with line
numbers; these functions re-validate at the flow entry points so
programmatically-built inputs (benchmark generators, user scripts) get
the same protection.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.check.errors import InputError, TechnologyError


def _finite(value: float) -> bool:
    try:
        return math.isfinite(value)
    except TypeError:
        return False


def validate_sinks(
    sinks: Sequence,
    *,
    num_modules: Optional[int] = None,
    source: Optional[str] = None,
) -> None:
    """Validate a sink list: finite coordinates, sane caps, unique names.

    ``num_modules``, when known (e.g. from the workload's ISA), bounds
    the module ids; without it only non-negativity is enforced.
    """
    if not sinks:
        raise InputError("sink list contains no sinks", source=source)
    seen = {}
    for position, sink in enumerate(sinks):
        where = "sink %r (index %d)" % (sink.name, position)
        for field, value in (("x", sink.location.x), ("y", sink.location.y)):
            if not _finite(value):
                raise InputError(
                    "%s: coordinate %s is %r; coordinates must be finite"
                    % (where, field, value),
                    source=source,
                    field=field,
                )
        if not _finite(sink.load_cap) or sink.load_cap < 0:
            raise InputError(
                "%s: load_cap is %r; load capacitance must be finite and "
                "non-negative" % (where, sink.load_cap),
                source=source,
                field="load_cap",
            )
        if not _finite(sink.module) or sink.module < 0 or int(sink.module) != sink.module:
            raise InputError(
                "%s: module is %r; module id must be a non-negative integer"
                % (where, sink.module),
                source=source,
                field="module",
            )
        if num_modules is not None and sink.module >= num_modules:
            raise InputError(
                "%s: module %d out of range (workload has %d modules)"
                % (where, sink.module, num_modules),
                source=source,
                field="module",
            )
        if sink.name in seen:
            raise InputError(
                "duplicate sink name %r (indices %d and %d); sink names "
                "must be unique" % (sink.name, seen[sink.name], position),
                source=source,
                field="name",
            )
        seen[sink.name] = position


def validate_technology(tech, *, strict: bool = True) -> None:
    """Validate a :class:`~repro.tech.parameters.Technology`.

    ``strict`` (the flow-entry default) requires *positive* unit wire
    R and C -- a zero-RC technology cannot balance skew by wire and
    makes every switched-capacitance figure vacuous.  Non-strict mode
    (used by constructors) only rejects non-finite or negative values,
    so unit tests may still build deliberately degenerate technologies.
    """
    for field in ("unit_wire_resistance", "unit_wire_capacitance"):
        value = getattr(tech, field)
        if not _finite(value) or value < 0:
            raise TechnologyError(
                "%s is %r; must be a finite non-negative number" % (field, value),
                field=field,
            )
        if strict and value <= 0:
            raise TechnologyError(
                "%s is %r; the flow requires positive unit wire R and C"
                % (field, value),
                field=field,
            )
    for field in ("clock_transitions_per_cycle", "wire_width"):
        value = getattr(tech, field)
        if not _finite(value) or value < 0:
            raise TechnologyError(
                "%s is %r; must be a finite non-negative number" % (field, value),
                field=field,
            )
    for cell_name in ("masking_gate", "buffer"):
        cell = getattr(tech, cell_name)
        validate_gate_model(cell, source=cell_name)


def validate_gate_model(cell, *, source: Optional[str] = None) -> None:
    """Validate one :class:`~repro.tech.parameters.GateModel`."""
    for field in ("input_cap", "drive_resistance", "intrinsic_delay", "area"):
        value = getattr(cell, field)
        if not _finite(value) or value < 0:
            raise TechnologyError(
                "%s is %r; must be a finite non-negative number" % (field, value),
                source=source,
                field=field,
            )


def validate_workload(isa, stream, *, source: Optional[str] = None) -> None:
    """Validate an ISA + instruction stream pair.

    The :class:`~repro.activity.isa.InstructionSet` constructor already
    enforces a non-empty ISA and in-universe module masks; this adds
    the stream-side checks (non-empty, ids within the ISA).
    """
    if len(isa) == 0:
        raise InputError("instruction set is empty", source=source)
    if isa.num_modules <= 0:
        raise InputError(
            "num_modules is %r; must be positive" % isa.num_modules,
            source=source,
            field="num_modules",
        )
    if len(stream) == 0:
        raise InputError("instruction stream is empty", source=source)
    ids = stream.ids
    lo, hi = int(ids.min()), int(ids.max())
    if lo < 0 or hi >= len(isa):
        raise InputError(
            "instruction stream ids span [%d, %d]; the ISA has %d "
            "instructions" % (lo, hi, len(isa)),
            source=source,
            field="ids",
        )
