"""Typed errors, strict input validation, invariant auditing, faults.

This package is imported from the lowest layers of the library
(``tech.parameters``, ``io.sinkfile``), so its ``__init__`` must stay
import-light: only :mod:`repro.check.errors` and
:mod:`repro.check.validate` (which import nothing above themselves)
load eagerly.  The auditor and the fault harness import the whole flow
and are exposed lazily via module ``__getattr__``.
"""

from __future__ import annotations

from typing import Any

from repro.check.errors import (
    AuditError,
    CapAuditError,
    ContractError,
    ContractTypeError,
    ControllerAuditError,
    EmbeddingAuditError,
    EnableAuditError,
    GeometryError,
    InputError,
    InternalInvariantError,
    ReproError,
    SkewAuditError,
    SkewBalanceError,
    TechnologyError,
)
from repro.check.tolerance import (
    effectively_zero,
    relatively_close,
)
from repro.check.validate import (
    validate_gate_model,
    validate_sinks,
    validate_technology,
    validate_workload,
)

_LAZY = {
    "AuditFinding": "repro.check.auditor",
    "NetworkAuditReport": "repro.check.auditor",
    "audit_network": "repro.check.auditor",
    "FAULTS": "repro.check.faults",
    "Fault": "repro.check.faults",
    "FaultOutcome": "repro.check.faults",
    "run_fault": "repro.check.faults",
    "run_fault_matrix": "repro.check.faults",
}

__all__ = [
    "ReproError",
    "InputError",
    "TechnologyError",
    "GeometryError",
    "SkewBalanceError",
    "ContractError",
    "ContractTypeError",
    "InternalInvariantError",
    "effectively_zero",
    "relatively_close",
    "AuditError",
    "SkewAuditError",
    "CapAuditError",
    "EnableAuditError",
    "EmbeddingAuditError",
    "ControllerAuditError",
    "validate_sinks",
    "validate_technology",
    "validate_gate_model",
    "validate_workload",
    *sorted(_LAZY),
]


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    return getattr(importlib.import_module(module_name), name)
