"""Typed error taxonomy for the whole flow.

Every failure the library can diagnose is raised as a subclass of
:class:`ReproError` carrying structured location data -- the offending
file and line for input errors, the field for parameter errors, the
node id for invariant violations.  The CLI renders
:meth:`ReproError.diagnostic` as a one-line message and exits with
code 2 instead of dumping a traceback.

Compatibility: the input/parameter/geometry branches also subclass
:class:`ValueError`, so callers (and tests) written against the old
bare ``ValueError`` behaviour keep working unchanged.

Hierarchy::

    ReproError
    +-- InputError          (ValueError)  malformed user input
    +-- TechnologyError     (ValueError)  bad technology parameters
    +-- GeometryError       (ValueError)  geometric/merge infeasibility
    |   +-- SkewBalanceError              no wire assignment balances
    +-- ContractError       (ValueError)  library API misuse
    +-- ContractTypeError   (TypeError)   wrong kind/type at an API
    +-- InternalInvariantError (RuntimeError)  "cannot happen" states
    +-- AuditError                        post-hoc invariant violations
        +-- SkewAuditError                skew / delay recheck failed
        +-- CapAuditError                 capacitance bookkeeping drift
        +-- EnableAuditError              P(EN) hierarchy broken
        +-- EmbeddingAuditError (ValueError)  TRR / placement invalid
        +-- ControllerAuditError          enable-star inconsistency

The ``REP002`` lint rule (``repro.lint``) enforces the taxonomy: a
bare ``raise ValueError/RuntimeError/TypeError`` anywhere in
``src/repro`` outside this package fails the lint gate.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base of every typed error raised by the repro flow.

    Parameters beyond ``message`` are optional location data; whatever
    is provided is rendered into :meth:`diagnostic` (and therefore into
    ``str(exc)``), so a bare ``except ReproError`` handler can print a
    precise one-line diagnosis.
    """

    def __init__(
        self,
        message: str,
        *,
        source: Optional[str] = None,
        line: Optional[int] = None,
        field: Optional[str] = None,
        node: Optional[int] = None,
    ) -> None:
        self.message = message
        self.source = None if source is None else str(source)
        self.line = line
        self.field = field
        self.node = node
        super().__init__(self.diagnostic())

    def diagnostic(self) -> str:
        """The one-line, located message the CLI prints."""
        prefix = []
        if self.source is not None:
            prefix.append(self.source)
        if self.line is not None:
            prefix.append("line %d" % self.line)
        if self.node is not None:
            prefix.append("node %d" % self.node)
        if self.field is not None:
            prefix.append("field %r" % self.field)
        if prefix:
            return "%s: %s" % (": ".join(prefix), self.message)
        return self.message

    def __repr__(self) -> str:  # keep reprs debuggable in logs
        return "%s(%r)" % (type(self).__name__, self.diagnostic())


class InputError(ReproError, ValueError):
    """Malformed user input: sink files, ISA/trace files, CLI values."""


class TechnologyError(ReproError, ValueError):
    """Invalid technology parameters (non-finite, negative, zero R/C)."""


class GeometryError(ReproError, ValueError):
    """Geometric or electrical infeasibility during construction."""


class SkewBalanceError(GeometryError):
    """No wire assignment can balance the two subtrees.

    Happens only in degenerate technologies (both wire RC products and
    cell drive terms zero), never for physical parameter sets.
    """


class ContractError(ReproError, ValueError):
    """A library API was called with values outside its contract.

    Distinct from :class:`InputError`: the offending value came from
    *calling code* (a bad knob, a wrong call order, an out-of-domain
    parameter), not from a user-supplied file.  Also a ``ValueError``
    for compatibility with callers written against the old bare
    raises.
    """


class ContractTypeError(ReproError, TypeError):
    """A library API was called with the wrong *kind* of value.

    Also a ``TypeError`` so generic callers keep working (e.g. the
    metrics registry's kind-aliasing guard raised ``TypeError`` before
    the taxonomy existed).
    """


class InternalInvariantError(ReproError, RuntimeError):
    """A "cannot happen" internal state was reached.

    Raised when the library detects that one of its own invariants
    broke mid-run (a heap drained while nodes stayed active, a table
    lost an entry it must contain).  Always a bug in the library, not
    in the caller's input; the ``node`` field locates the offender
    when one is known.  Also a ``RuntimeError`` for compatibility.
    """


class AuditError(ReproError):
    """A post-hoc network invariant failed verification."""


class SkewAuditError(AuditError):
    """Recomputed skew or delay disagrees with the router's bookkeeping."""


class CapAuditError(AuditError):
    """Recomputed downstream capacitance disagrees with the router's."""


class EnableAuditError(AuditError):
    """Enable-probability monotonicity or module-mask unions broken."""


class EmbeddingAuditError(AuditError, ValueError):
    """Merging-segment / placement geometry of the routed tree invalid.

    Also a ``ValueError``: ``ClockTree.validate_embedding`` raised bare
    ``ValueError`` before the taxonomy existed, and callers written
    against that contract keep working.
    """


class ControllerAuditError(AuditError):
    """Enable-star routing inconsistent with the tree's gates."""
