"""Content-addressed run ledger: durable, comparable records of runs.

Every flow/bench/CLI invocation can persist a :class:`RunRecord` --
one JSON document holding the run's configuration, an environment
fingerprint (git revision, Python, platform, seeds), the full span
tree and per-phase profile (with memory columns when sampled), the
metrics-registry snapshot, and the *result pins* (wirelength, switched
capacitance, gate count, ...) that must stay byte-identical across
refactors.

Records live in a ledger directory (``.repro-runs/`` by default) under
``<run_id>.json`` where ``run_id`` is the SHA-256 of the record's
canonical content (everything except the ``created_unix`` stamp).  Two
runs that measured exactly the same thing collapse onto one file;
references accept full ids, unique prefixes, file paths, or the
``latest`` / ``latest~N`` shorthand.

The regression sentinel (:mod:`repro.obs.sentinel`) consumes pairs of
these records; ``gated-cts obs diff/trend/check`` is the front end.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.check.errors import InputError
from repro.obs.export import DME_DETAIL_SPANS, phase_profile
from repro.obs.jsonio import (
    SCHEMA_KEY,
    SCHEMA_VERSION,
    content_digest,
    load_json,
    unix_now,
    write_json,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import SpanRecord, Tracer

#: Default ledger directory, relative to the invoking process's cwd.
DEFAULT_LEDGER_DIR = ".repro-runs"

#: Environment variables worth fingerprinting (they change results or
#: scale): kept small and explicit so records stay comparable.
_FINGERPRINT_ENV = ("REPRO_BENCH_SCALE",)


def _git_revision() -> Optional[str]:
    """Current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment_fingerprint() -> Dict[str, Any]:
    """Everything about the host/toolchain a comparison should know."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # the library degrades to scalar paths
        numpy_version = None
    return {
        "git_revision": _git_revision(),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy_version,
        "env": {name: os.environ.get(name) for name in _FINGERPRINT_ENV},
    }


def _jsonable(value: Any) -> Any:
    """Coerce one config/pin value into a JSON-stable shape."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class RunRecord:
    """One durable, comparable record of a routed/benchmarked run."""

    kind: str
    """``flow`` | ``bench`` | ``cli`` -- what produced the record."""
    label: str
    """Human-readable run label, e.g. ``route:r1:reduced``."""
    config: Dict[str, Any]
    """The knobs that shaped the run (benchmark, scale, seed, flags)."""
    fingerprint: Dict[str, Any]
    """Host/toolchain fingerprint (:func:`environment_fingerprint`)."""
    phases: Dict[str, Any]
    """The per-phase profile tree (``PhaseProfile.as_dict`` shape)."""
    spans: List[Dict[str, Any]]
    """Raw span rows (``SpanRecord.as_dict`` shape), completion order."""
    metrics: Dict[str, Any]
    """Metrics-registry snapshot (``MetricsRegistry.as_dict`` shape)."""
    pins: Dict[str, Any]
    """Exact result pins; byte-identical across runs is the contract."""
    created_unix: int = field(default_factory=unix_now)

    # -- serialization --------------------------------------------------
    def content(self) -> Dict[str, Any]:
        """The addressable content (everything but the timestamp)."""
        return {
            SCHEMA_KEY: SCHEMA_VERSION,
            "kind": self.kind,
            "label": self.label,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "phases": self.phases,
            "spans": self.spans,
            "metrics": self.metrics,
            "pins": self.pins,
        }

    @property
    def run_id(self) -> str:
        """SHA-256 of the canonical content; the ledger file stem."""
        return content_digest(self.content())

    def payload(self) -> Dict[str, Any]:
        out = self.content()
        out["run_id"] = self.run_id
        out["created_unix"] = self.created_unix
        return out

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "RunRecord":
        try:
            return RunRecord(
                kind=payload["kind"],
                label=payload["label"],
                config=payload["config"],
                fingerprint=payload["fingerprint"],
                phases=payload["phases"],
                spans=payload["spans"],
                metrics=payload["metrics"],
                pins=payload["pins"],
                created_unix=payload.get("created_unix", 0),
            )
        except KeyError as exc:
            raise InputError(
                "run record is missing required key %s" % exc, field="payload"
            ) from exc

    @staticmethod
    def load(path) -> "RunRecord":
        return RunRecord.from_payload(load_json(path))

    def save(self, directory=DEFAULT_LEDGER_DIR) -> Path:
        """Write into ``directory`` under the content address."""
        return RunLedger(directory).save(self)

    # -- views the sentinel reads --------------------------------------
    def phase_rows(self) -> Dict[str, Dict[str, Any]]:
        """Depth-1 phase rows plus detail rows, keyed by phase name."""
        rows = {row["name"]: row for row in self.phases.get("phases", [])}
        for row in self.phases.get("detail", []):
            rows.setdefault(row["name"], row)
        return rows

    def counters(self) -> Dict[str, int]:
        """All counter-typed metrics, keyed by name."""
        return {
            name: m["value"]
            for name, m in self.metrics.items()
            if m.get("type") == "counter"
        }

    @property
    def root_ns(self) -> int:
        return self.phases.get("root_ns", 0)

    @property
    def root_mem_peak_bytes(self) -> Optional[int]:
        return self.phases.get("root_mem_peak_bytes")


def record_from_trace(
    kind: str,
    label: str,
    config: Dict[str, Any],
    tracer: Tracer,
    pins: Dict[str, Any],
    registry: Optional[MetricsRegistry] = None,
    root_name: Optional[str] = None,
    spans: Optional[Sequence[SpanRecord]] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` from a finished traced run.

    Call *after* the root span has closed (the assembly itself must
    not pollute the timings it records).  ``root_name`` scopes the
    phase profile when the trace holds several flows.
    """
    span_rows = [s.as_dict() for s in (tracer.spans if spans is None else spans)]
    profile = phase_profile(
        tracer.spans if spans is None else spans,
        root_name=root_name,
        detail_names=DME_DETAIL_SPANS,
    )
    registry = registry or get_registry()
    return RunRecord(
        kind=kind,
        label=label,
        config=_jsonable(config),
        fingerprint=environment_fingerprint(),
        phases=profile.as_dict(),
        spans=span_rows,
        metrics=registry.as_dict(),
        pins=_jsonable(pins),
    )


class RunLedger:
    """A directory of content-addressed :class:`RunRecord` files."""

    def __init__(self, directory=DEFAULT_LEDGER_DIR):
        self.directory = Path(directory)

    # -- writing --------------------------------------------------------
    def save(self, record: RunRecord) -> Path:
        """Persist ``record``; idempotent for identical content."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / ("%s.json" % record.run_id)
        if not path.exists():
            write_json(path, record.payload())
        get_registry().counter("ledger.runs_recorded").inc()
        return path

    # -- reading --------------------------------------------------------
    def paths(self) -> List[Path]:
        """Record files, oldest first (created stamp, then id)."""
        if not self.directory.is_dir():
            return []
        entries = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                payload = load_json(path)
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict) and "pins" in payload:
                entries.append((payload.get("created_unix", 0), path.stem, path))
        entries.sort()
        return [path for _, _, path in entries]

    def records(self) -> List[RunRecord]:
        return [RunRecord.load(path) for path in self.paths()]

    def resolve(self, ref: str) -> Path:
        """A reference -> record path.

        Accepts a file path, a full run id, a unique id prefix, or
        ``latest`` / ``latest~N`` (N runs before the newest).
        """
        direct = Path(ref)
        if direct.is_file():
            return direct
        paths = self.paths()
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if ref.startswith("latest~"):
                try:
                    back = int(ref.split("~", 1)[1])
                except ValueError:
                    raise InputError(
                        "bad ledger reference %r; use latest~<int>" % ref,
                        field="ref",
                    ) from None
            if back >= len(paths):
                raise InputError(
                    "ledger %s holds %d record(s); %r is out of range"
                    % (self.directory, len(paths), ref),
                    field="ref",
                )
            return paths[-1 - back]
        matches = [p for p in paths if p.stem.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise InputError(
                "no run record matches %r in %s" % (ref, self.directory),
                field="ref",
            )
        raise InputError(
            "ambiguous run reference %r (%d matches) in %s"
            % (ref, len(matches), self.directory),
            field="ref",
        )

    def load(self, ref: str) -> RunRecord:
        return RunRecord.load(self.resolve(ref))
