"""Live progress events from a traced run: the future job server's feed.

A :class:`ProgressEmitter` attached to a tracer
(``Tracer.set_listener``) turns span starts/ends and in-loop progress
reports into a stream of :class:`ProgressEvent`\\ s with a
**monotonically non-decreasing** percent-complete estimate:

* each known top-level phase carries a weight (fraction of a typical
  gated flow, measured from ``BENCH_phase_profile.json``);
* finishing a weighted phase advances the completed fraction by its
  weight;
* *within* a phase, ``Tracer.progress(done, total)`` interpolates --
  the merge loop knows exactly how many merges remain, so the dominant
  ``topology.gated`` phase progresses smoothly instead of jumping
  0 -> 85%;
* estimates are clamped to be monotonic, so a consumer can render a
  progress bar without ever stepping backwards, and reach exactly 1.0
  when a root span finishes.

Events go to an optional callback and/or a JSONL stream (one event per
line), which is the hook the async ``gated-cts serve`` front end will
forward to users; the CLI exposes it today as ``--progress-jsonl``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import get_registry

#: Event names (catalogued in :mod:`repro.obs.names`).
EVENT_PHASE_START = "progress.phase_start"
EVENT_PHASE_FINISH = "progress.phase_finish"
EVENT_UPDATE = "progress.update"

#: Phase weights of a typical gated flow (fractions of root wall-clock,
#: from the committed ``BENCH_phase_profile.json``).  Unknown phases
#: weigh nothing -- they still emit start/finish events, they just do
#: not move the percent estimate.
DEFAULT_PHASE_WEIGHTS: Dict[str, float] = {
    "topology.gated": 0.85,
    "topology.buffered": 0.85,
    "gating.reduce": 0.02,
    "controller.star": 0.04,
    "flow.measure": 0.06,
    "flow.audit": 0.03,
}


@dataclass(frozen=True)
class ProgressEvent:
    """One progress observation, JSONL-serializable."""

    event: str
    name: str
    t_ns: int
    percent: float
    done: Optional[int] = None
    total: Optional[int] = None
    duration_ns: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "event": self.event,
            "name": self.name,
            "t_ns": self.t_ns,
            "percent": self.percent,
        }
        if self.done is not None:
            out["done"] = self.done
            out["total"] = self.total
        if self.duration_ns is not None:
            out["duration_ns"] = self.duration_ns
        return out


class ProgressEmitter:
    """Tracer listener producing a monotonic percent-complete stream.

    Parameters
    ----------
    callback:
        Called with each :class:`ProgressEvent` as it happens.
    stream:
        A writable text file object; each event is appended as one
        JSON line (flushed per event, so a tail-reader sees it live).
    weights:
        Phase-name -> fraction-of-root map; see
        :data:`DEFAULT_PHASE_WEIGHTS`.
    min_update_step:
        Percent resolution of ``progress.update`` events: in-phase
        reports that move the estimate by less than this are counted
        but not emitted, which keeps a 3000-merge loop from writing
        3000 lines.
    clock:
        Timestamp source (injectable for deterministic tests).
    """

    def __init__(
        self,
        callback: Optional[Callable[[ProgressEvent], None]] = None,
        stream=None,
        weights: Optional[Dict[str, float]] = None,
        min_update_step: float = 0.01,
        clock=time.perf_counter_ns,
    ):
        self._callback = callback
        self._stream = stream
        self._weights = DEFAULT_PHASE_WEIGHTS if weights is None else weights
        self._min_step = min_update_step
        self._clock = clock
        self._completed = 0.0
        self._percent = 0.0
        self._last_emitted_update = -1.0
        self._open: List[str] = []
        self.events: List[ProgressEvent] = []

    # -- tracer listener protocol --------------------------------------
    def on_span_start(self, span) -> None:
        self._open.append(span.name)
        self._emit(EVENT_PHASE_START, span.name)

    def on_span_end(self, record) -> None:
        # Tolerate out-of-order closes exactly like the span stack.
        while self._open and self._open[-1] != record.name:
            self._open.pop()
        if self._open:
            self._open.pop()
        weight = self._weights.get(record.name, 0.0)
        if weight:
            self._completed = min(1.0, self._completed + weight)
            self._bump(self._completed)
        if not self._open:
            # A root span closed: the run (or this flow) is done.
            self._completed = 1.0
            self._bump(1.0)
        self._emit(
            EVENT_PHASE_FINISH, record.name, duration_ns=record.duration_ns
        )

    def on_progress(self, name: Optional[str], done: int, total: int) -> None:
        if total <= 0:
            return
        fraction = min(1.0, max(0.0, done / total))
        weight = 0.0
        for open_name in reversed(self._open):
            weight = self._weights.get(open_name, 0.0)
            if weight:
                break
        self._bump(self._completed + weight * fraction)
        if (
            self._percent - self._last_emitted_update >= self._min_step
            or fraction >= 1.0
        ):
            self._last_emitted_update = self._percent
            self._emit(EVENT_UPDATE, name or "", done=done, total=total)

    # -- internals ------------------------------------------------------
    @property
    def percent(self) -> float:
        """The current monotonic percent-complete estimate in [0, 1]."""
        return self._percent

    def _bump(self, candidate: float) -> None:
        if candidate > self._percent:
            self._percent = min(1.0, candidate)

    def _emit(
        self,
        event: str,
        name: str,
        done: Optional[int] = None,
        total: Optional[int] = None,
        duration_ns: Optional[int] = None,
    ) -> None:
        record = ProgressEvent(
            event=event,
            name=name,
            t_ns=self._clock(),
            percent=self._percent,
            done=done,
            total=total,
            duration_ns=duration_ns,
        )
        self.events.append(record)
        get_registry().counter("progress.events_emitted").inc()
        if self._callback is not None:
            self._callback(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            self._stream.flush()
