"""Span and metrics exporters.

Three targets, all fed from the flat :class:`~repro.obs.tracer.SpanRecord`
list a :class:`~repro.obs.tracer.Tracer` collects:

* **JSONL** -- one span per line, stable keys, trivially greppable;
* **Chrome ``trace_event`` JSON** -- complete ("X") events loadable in
  ``chrome://tracing`` or Perfetto, span attributes in ``args``;
* **phase profile** -- per-phase wall-clock totals aggregated from the
  direct children of each root span, the data behind
  ``analysis.report.format_phase_times`` and the
  ``BENCH_phase_profile.json`` bench artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[SpanRecord]) -> str:
    """One JSON object per line, in completion order."""
    return "\n".join(json.dumps(s.as_dict(), sort_keys=True) for s in spans)


def write_spans_jsonl(spans: Sequence[SpanRecord], path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        text = spans_to_jsonl(spans)
        fh.write(text + "\n" if text else "")


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace_events(spans: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Spans as Chrome complete ("X") events, start-time ordered.

    Timestamps are microseconds (the format's unit); nesting is
    reconstructed by the viewer from containment on one pid/tid, which
    holds exactly because spans come from one context-manager stack.
    """
    events = []
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": 1,
                "tid": 1,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )
    return events


def chrome_trace(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """The full Chrome trace object (``traceEvents`` container)."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(spans: Sequence[SpanRecord], path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans), fh, indent=1)
        fh.write("\n")


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# phase profile
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseRow:
    """Aggregated wall-clock of one phase (spans of one name, depth 1)."""

    name: str
    count: int
    total_ns: int
    fraction: float
    """Share of the root span(s) total; 0 when there is no root."""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_ns": self.total_ns,
            "total_s": self.total_ns / 1e9,
            "fraction": self.fraction,
        }


@dataclass(frozen=True)
class PhaseProfile:
    """Per-phase totals under the trace's root span(s)."""

    rows: List[PhaseRow]
    root_ns: int
    covered_ns: int
    detail_rows: List[PhaseRow] = field(default_factory=list)
    """Totals of explicitly requested sub-phase names found at *any*
    depth under the roots (see ``phase_profile``'s ``detail_names``);
    nested inside ``rows`` entries, so excluded from ``covered_ns``."""

    @property
    def coverage(self) -> float:
        """Fraction of root wall-clock covered by depth-1 spans."""
        return self.covered_ns / self.root_ns if self.root_ns else 0.0

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "root_ns": self.root_ns,
            "root_s": self.root_ns / 1e9,
            "covered_ns": self.covered_ns,
            "coverage": self.coverage,
            "phases": [r.as_dict() for r in self.rows],
        }
        if self.detail_rows:
            out["detail"] = [r.as_dict() for r in self.detail_rows]
        return out


#: The merger sub-phases worth a detail row in flow-level profiles:
#: these sit two or more levels below the flow root (inside
#: ``topology.*`` -> ``dme.merge``), so the depth-1 aggregation alone
#: cannot regress them independently.
DME_DETAIL_SPANS = ("dme.init_best", "dme.merge_loop", "dme.embed")


def phase_profile(
    spans: Sequence[SpanRecord],
    root_name: Optional[str] = None,
    detail_names: Sequence[str] = (),
) -> PhaseProfile:
    """Aggregate the direct children of root spans into phase totals.

    ``root_name`` restricts the roots considered (e.g. only
    ``flow.route_gated`` runs when a trace holds several flows); by
    default every parentless span is a root.  Phases are the distinct
    names among the roots' direct children, ordered by first start.

    ``detail_names`` additionally aggregates spans of the given names
    found at *any* depth under the roots (e.g. ``DME_DETAIL_SPANS``)
    into :attr:`PhaseProfile.detail_rows` -- they are nested inside
    phases already counted, so they join the report as indented detail
    rather than the coverage sum.
    """
    roots = [
        s
        for s in spans
        if s.parent_id is None and (root_name is None or s.name == root_name)
    ]
    root_ids = {s.span_id for s in roots}
    root_ns = sum(s.duration_ns for s in roots)
    totals: Dict[str, List[int]] = {}
    order: Dict[str, int] = {}
    for span in spans:
        if span.parent_id not in root_ids:
            continue
        bucket = totals.setdefault(span.name, [0, 0])
        bucket[0] += 1
        bucket[1] += span.duration_ns
        order.setdefault(span.name, span.start_ns)
    covered = sum(t[1] for t in totals.values())
    rows = [
        PhaseRow(
            name=name,
            count=totals[name][0],
            total_ns=totals[name][1],
            fraction=(totals[name][1] / root_ns) if root_ns else 0.0,
        )
        for name in sorted(totals, key=lambda n: order[n])
    ]
    detail_rows: List[PhaseRow] = []
    if detail_names:
        wanted = set(detail_names)
        by_id = {s.span_id: s for s in spans}
        d_totals: Dict[str, List[int]] = {}
        d_order: Dict[str, int] = {}
        for span in spans:
            if span.name not in wanted:
                continue
            parent = span.parent_id
            while parent is not None and parent not in root_ids:
                parent = by_id[parent].parent_id if parent in by_id else None
            if parent not in root_ids:
                continue
            bucket = d_totals.setdefault(span.name, [0, 0])
            bucket[0] += 1
            bucket[1] += span.duration_ns
            d_order.setdefault(span.name, span.start_ns)
        detail_rows = [
            PhaseRow(
                name=name,
                count=d_totals[name][0],
                total_ns=d_totals[name][1],
                fraction=(d_totals[name][1] / root_ns) if root_ns else 0.0,
            )
            for name in sorted(d_totals, key=lambda n: d_order[n])
        ]
    return PhaseProfile(
        rows=rows, root_ns=root_ns, covered_ns=covered, detail_rows=detail_rows
    )


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def write_metrics_json(registry: MetricsRegistry, path) -> None:
    """Serialize a registry's ``as_dict`` snapshot as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
