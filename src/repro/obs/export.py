"""Span and metrics exporters.

Three targets, all fed from the flat :class:`~repro.obs.tracer.SpanRecord`
list a :class:`~repro.obs.tracer.Tracer` collects:

* **JSONL** -- one span per line, stable keys, trivially greppable;
* **Chrome ``trace_event`` JSON** -- complete ("X") events loadable in
  ``chrome://tracing`` or Perfetto, span attributes in ``args``;
* **phase profile** -- per-phase wall-clock totals aggregated from the
  direct children of each root span, the data behind
  ``analysis.report.format_phase_times`` and the
  ``BENCH_phase_profile.json`` bench artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[SpanRecord]) -> str:
    """One JSON object per line, in completion order."""
    return "\n".join(json.dumps(s.as_dict(), sort_keys=True) for s in spans)


def write_spans_jsonl(spans: Sequence[SpanRecord], path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        text = spans_to_jsonl(spans)
        fh.write(text + "\n" if text else "")


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace_events(spans: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Spans as Chrome complete ("X") events, start-time ordered.

    Timestamps are microseconds (the format's unit); nesting is
    reconstructed by the viewer from containment on one pid/tid, which
    holds exactly because spans come from one context-manager stack.
    """
    events = []
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": 1,
                "tid": 1,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )
    return events


def chrome_trace(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """The full Chrome trace object (``traceEvents`` container)."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(spans: Sequence[SpanRecord], path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans), fh, indent=1)
        fh.write("\n")


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# phase profile
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseRow:
    """Aggregated wall-clock of one phase (spans of one name, depth 1)."""

    name: str
    count: int
    total_ns: int
    fraction: float
    """Share of the root span(s) total; 0 when there is no root."""
    mem_peak_bytes: Optional[int] = None
    """Largest per-span heap peak among the phase's spans; only set
    when the trace was recorded with a memory sampler attached."""
    mem_alloc_blocks: Optional[int] = None
    """Summed net allocated-block delta across the phase's spans."""

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "count": self.count,
            "total_ns": self.total_ns,
            "total_s": self.total_ns / 1e9,
            "fraction": self.fraction,
        }
        if self.mem_peak_bytes is not None:
            out["mem_peak_bytes"] = self.mem_peak_bytes
            out["mem_alloc_blocks"] = self.mem_alloc_blocks
        return out


@dataclass(frozen=True)
class PhaseProfile:
    """Per-phase totals under the trace's root span(s)."""

    rows: List[PhaseRow]
    root_ns: int
    covered_ns: int
    detail_rows: List[PhaseRow] = field(default_factory=list)
    """Totals of explicitly requested sub-phase names found at *any*
    depth under the roots (see ``phase_profile``'s ``detail_names``);
    nested inside ``rows`` entries, so excluded from ``covered_ns``."""
    root_mem_peak_bytes: Optional[int] = None
    """Largest root-span heap peak (memory-sampled traces only)."""

    @property
    def coverage(self) -> float:
        """Fraction of root wall-clock covered by depth-1 spans."""
        return self.covered_ns / self.root_ns if self.root_ns else 0.0

    @property
    def has_memory(self) -> bool:
        """Was the trace recorded with a memory sampler attached?"""
        return self.root_mem_peak_bytes is not None or any(
            r.mem_peak_bytes is not None for r in self.rows
        )

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "root_ns": self.root_ns,
            "root_s": self.root_ns / 1e9,
            "covered_ns": self.covered_ns,
            "coverage": self.coverage,
            "phases": [r.as_dict() for r in self.rows],
        }
        if self.detail_rows:
            out["detail"] = [r.as_dict() for r in self.detail_rows]
        if self.root_mem_peak_bytes is not None:
            out["root_mem_peak_bytes"] = self.root_mem_peak_bytes
        return out


#: The merger sub-phases worth a detail row in flow-level profiles:
#: these sit two or more levels below the flow root (inside
#: ``topology.*`` -> ``dme.merge``), so the depth-1 aggregation alone
#: cannot regress them independently.
DME_DETAIL_SPANS = ("dme.init_best", "dme.merge_loop", "dme.embed")


class _PhaseAgg:
    """Accumulator behind one :class:`PhaseRow`.

    Memory columns only materialize when at least one span of the
    phase carries them (i.e. the trace was memory-sampled): the peak
    aggregates as a max (spans of one phase run sequentially, so the
    phase's high-water mark is its worst span), the block delta as a
    sum.
    """

    __slots__ = ("count", "total_ns", "mem_peak", "mem_blocks")

    def __init__(self):
        self.count = 0
        self.total_ns = 0
        self.mem_peak: Optional[int] = None
        self.mem_blocks: Optional[int] = None

    def add(self, span: SpanRecord) -> None:
        self.count += 1
        self.total_ns += span.duration_ns
        peak = span.attrs.get("mem_peak_bytes")
        if peak is not None:
            self.mem_peak = peak if self.mem_peak is None else max(self.mem_peak, peak)
            blocks = span.attrs.get("mem_alloc_blocks", 0)
            self.mem_blocks = (self.mem_blocks or 0) + blocks

    def row(self, name: str, root_ns: int) -> PhaseRow:
        return PhaseRow(
            name=name,
            count=self.count,
            total_ns=self.total_ns,
            fraction=(self.total_ns / root_ns) if root_ns else 0.0,
            mem_peak_bytes=self.mem_peak,
            mem_alloc_blocks=self.mem_blocks,
        )


def phase_profile(
    spans: Sequence[SpanRecord],
    root_name: Optional[str] = None,
    detail_names: Sequence[str] = (),
) -> PhaseProfile:
    """Aggregate the direct children of root spans into phase totals.

    ``root_name`` restricts the roots considered (e.g. only
    ``flow.route_gated`` runs when a trace holds several flows); by
    default every parentless span is a root.  Phases are the distinct
    names among the roots' direct children, ordered by first start.

    ``detail_names`` additionally aggregates spans of the given names
    found at *any* depth under the roots (e.g. ``DME_DETAIL_SPANS``)
    into :attr:`PhaseProfile.detail_rows` -- they are nested inside
    phases already counted, so they join the report as indented detail
    rather than the coverage sum.
    """
    roots = [
        s
        for s in spans
        if s.parent_id is None and (root_name is None or s.name == root_name)
    ]
    root_ids = {s.span_id for s in roots}
    root_ns = sum(s.duration_ns for s in roots)
    root_peaks = [
        s.attrs["mem_peak_bytes"] for s in roots if "mem_peak_bytes" in s.attrs
    ]
    totals: Dict[str, _PhaseAgg] = {}
    order: Dict[str, int] = {}
    for span in spans:
        if span.parent_id not in root_ids:
            continue
        totals.setdefault(span.name, _PhaseAgg()).add(span)
        order.setdefault(span.name, span.start_ns)
    covered = sum(agg.total_ns for agg in totals.values())
    rows = [
        totals[name].row(name, root_ns)
        for name in sorted(totals, key=lambda n: order[n])
    ]
    detail_rows: List[PhaseRow] = []
    if detail_names:
        wanted = set(detail_names)
        by_id = {s.span_id: s for s in spans}
        d_totals: Dict[str, _PhaseAgg] = {}
        d_order: Dict[str, int] = {}
        for span in spans:
            if span.name not in wanted:
                continue
            parent = span.parent_id
            while parent is not None and parent not in root_ids:
                parent = by_id[parent].parent_id if parent in by_id else None
            if parent not in root_ids:
                continue
            d_totals.setdefault(span.name, _PhaseAgg()).add(span)
            d_order.setdefault(span.name, span.start_ns)
        detail_rows = [
            d_totals[name].row(name, root_ns)
            for name in sorted(d_totals, key=lambda n: d_order[n])
        ]
    return PhaseProfile(
        rows=rows,
        root_ns=root_ns,
        covered_ns=covered,
        detail_rows=detail_rows,
        root_mem_peak_bytes=max(root_peaks) if root_peaks else None,
    )


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def write_metrics_json(registry: MetricsRegistry, path) -> None:
    """Serialize a registry's ``as_dict`` snapshot as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
