"""Hierarchical span tracing with nanosecond wall-clock timing.

A *span* is one timed region of the flow, named by the convention
``phase.subphase`` (e.g. ``dme.merge_loop``).  Spans nest: entering a
span while another is open records the parent/child relation, so one
routed benchmark produces a tree whose root covers the whole run and
whose leaves attribute the wall-clock to individual phases.

The module keeps a **process-global default tracer** that starts
*disabled*: ``get_tracer().span(...)`` then returns a shared no-op
context manager -- one attribute test plus one constant return, cheap
enough to leave the instrumentation permanently in the hot flows (the
test suite bounds the disabled-mode overhead).  The CLI (or a test)
installs a recording tracer with :func:`set_tracer` /
:func:`enable_tracing`.

Typical use::

    from repro.obs import get_tracer

    with get_tracer().span("dme.merge", n=len(sinks)) as span:
        ...
        span.set(plans=stats.plans_computed)

Finished spans are plain :class:`SpanRecord` rows (id, parent id,
name, start/duration in ns, attribute dict); the exporters in
:mod:`repro.obs.export` turn them into JSONL, Chrome ``trace_event``
JSON, or a phase-time table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class SpanRecord:
    """One finished span (times from ``perf_counter_ns``)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int
    duration_ns: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def as_dict(self) -> Dict[str, Any]:
        """Stable-key dict for the JSONL exporter."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: Singleton: disabled tracing allocates nothing per call.
NULL_SPAN = _NullSpan()


class Span:
    """An open span; use as a context manager (exception safe)."""

    __slots__ = (
        "_tracer",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "_start_ns",
        "_mem",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self._start_ns = 0
        self._mem = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        if tracer._sampler is not None:
            self._mem = tracer._sampler.push()
        listener = tracer._listener
        if listener is not None:
            listener.on_span_start(self)
        self._start_ns = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._clock()
        if exc_type is not None:
            # Record the failure but never swallow it.
            self.attrs.setdefault("error", exc_type.__name__)
        sampler = self._tracer._sampler
        if self._mem is not None and sampler is not None:
            self.attrs.update(sampler.pop(self._mem))
            self._mem = None
        stack = self._tracer._stack
        # The span may close out of order only if user code misuses the
        # context managers; drop everything above it so the stack never
        # grows without bound after an inner leak.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_ns=self._start_ns,
            duration_ns=end - self._start_ns,
            attrs=self.attrs,
        )
        self._tracer.spans.append(record)
        listener = self._tracer._listener
        if listener is not None:
            listener.on_span_end(record)
        return False


class Tracer:
    """Collects a tree of timed spans.

    Parameters
    ----------
    enabled:
        When False every :meth:`span` call returns the shared
        :data:`NULL_SPAN` -- a true no-op.
    clock:
        Timestamp source, ``time.perf_counter_ns`` by default
        (injectable for deterministic tests).
    """

    def __init__(self, enabled: bool = True, clock=time.perf_counter_ns):
        self.enabled = enabled
        self.spans: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._clock = clock
        self._next_id = 0
        self._sampler = None
        self._listener = None

    def span(self, name: str, **attrs):
        """Open a span named ``name`` with initial attributes."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def set_sampler(self, sampler) -> None:
        """Attach a :class:`~repro.obs.memory.MemorySampler` (or None).

        While attached, every finished span carries the sampler's
        memory columns (``mem_peak_bytes`` / ``mem_net_bytes`` /
        ``mem_alloc_blocks``) in its attributes.
        """
        self._sampler = sampler

    def set_listener(self, listener) -> None:
        """Attach a progress listener (or None).

        The listener's ``on_span_start(span)`` / ``on_span_end(record)``
        / ``on_progress(name, done, total)`` hooks fire synchronously;
        see :class:`repro.obs.progress.ProgressEmitter`.
        """
        self._listener = listener

    def progress(self, done: int, total: int) -> None:
        """Report within-phase completion (e.g. merge ``done`` of ``total``).

        A no-op unless a listener is attached, so hot loops can call it
        unconditionally (one attribute test when off).
        """
        listener = self._listener
        if listener is not None:
            listener.on_progress(self.current_span_name(), done, total)

    def current_span_name(self) -> Optional[str]:
        """Name of the innermost open span (``None`` outside any span)."""
        return self._stack[-1].name if self._stack else None

    def reset(self) -> None:
        """Drop all finished spans (open spans keep recording)."""
        self.spans.clear()

    def roots(self) -> List[SpanRecord]:
        """Finished spans with no parent, in completion order."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span_id: Optional[int]) -> List[SpanRecord]:
        """Finished direct children of a span, in completion order."""
        return [s for s in self.spans if s.parent_id == span_id]


#: The process-global tracer: disabled until someone opts in.
_global_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (a no-op until enabled)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


def enable_tracing(profile_memory: bool = False) -> Tracer:
    """Install (and return) a fresh enabled global tracer.

    ``profile_memory=True`` also starts a
    :class:`~repro.obs.memory.MemorySampler` and attaches it, so every
    span records its peak/net heap columns; pair with
    :func:`disable_tracing`, which stops an attached sampler.
    """
    tracer = Tracer(enabled=True)
    if profile_memory:
        from repro.obs.memory import MemorySampler

        tracer.set_sampler(MemorySampler().start())
    set_tracer(tracer)
    return tracer


def disable_tracing() -> Tracer:
    """Install a fresh disabled global tracer; returns the old one.

    Stops the old tracer's memory sampler, if one was attached, so
    ``tracemalloc`` does not keep taxing allocations after tracing is
    turned off.
    """
    previous = set_tracer(Tracer(enabled=False))
    if previous._sampler is not None:
        previous._sampler.stop()
        previous.set_sampler(None)
    return previous


def phase_span(name: str, **attrs):
    """A top-level phase span that dedupes against an identical wrapper.

    The topology builders own their ``topology.*`` spans so library
    callers get traced without going through the flow; a caller that
    has *already* opened a span of the same name (an older flow, an
    external harness) must not get a nested duplicate that would
    double-count the phase in ``phase_profile``.  Returns the global
    tracer's span unless the innermost open span already carries
    ``name``, in which case the shared no-op span is returned.
    """
    tracer = get_tracer()
    if not tracer.enabled or tracer.current_span_name() == name:
        return NULL_SPAN
    return tracer.span(name, **attrs)
