"""One-shot logging configuration for the ``repro`` logger tree.

The library logs under the ``repro.*`` hierarchy (e.g. the merger's
guarded debug lines in :mod:`repro.cts.dme`) but never configures
handlers itself -- libraries must not.  The CLI calls
:func:`configure_logging` once in ``main()`` so ``--log-level debug``
actually surfaces those records; embedding applications can call it
too, or attach their own handlers.
"""

from __future__ import annotations

import logging
from typing import Optional, Union
from repro.check.errors import ContractError

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_handler: Optional[logging.Handler] = None


def configure_logging(level: Union[str, int] = "warning") -> logging.Logger:
    """Configure the root ``repro`` logger with a stderr handler.

    Idempotent: repeated calls adjust the level of the one handler this
    module owns instead of stacking duplicates.  Returns the logger.
    """
    if isinstance(level, str):
        name = level.lower()
        if name not in LOG_LEVELS:
            raise ContractError(
                "unknown log level %r (choose from %s)" % (level, ", ".join(LOG_LEVELS))
            )
        level = getattr(logging, name.upper())
    logger = logging.getLogger("repro")
    global _handler
    if _handler is None:
        _handler = logging.StreamHandler()
        _handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(_handler)
    logger.setLevel(level)
    _handler.setLevel(level)
    return logger
