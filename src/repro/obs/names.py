"""The checked-in catalog of span and metric names.

Every span or metric name the library emits must be registered here.
Two consumers enforce that:

* the ``REP004`` lint rule (``repro.lint``) statically checks that
  every *literal* name passed to ``span()`` / ``counter()`` /
  ``gauge()`` / ``histogram()`` matches the dotted lowercase
  convention and appears below (dynamic names must carry a registered
  literal prefix);
* ``tests/test_lint_obs_catalog.py`` routes a benchmark with tracing
  and metrics on and asserts every name observed *live* is covered.

Names follow ``phase.subphase`` -- lowercase ``[a-z_]`` segments
joined by dots (two or more segments; deeper nesting such as
``dme.index.queries`` is allowed).  Dynamically composed families
(e.g. ``"dme." + key`` over :meth:`MergerStats.snapshot` keys,
``"oracle.%s." % method`` over the oracle's cached methods) are
covered by the prefix tuples instead of exhaustive enumeration.
"""

from __future__ import annotations

import re

#: The naming convention every span/metric name must match.
NAME_PATTERN = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")

#: Every span name opened by the library (see ``repro.obs.tracer``).
SPAN_NAMES = frozenset(
    {
        "controller.star",
        "dme.embed",
        "dme.init_best",
        "dme.merge",
        "dme.merge_loop",
        "flow.audit",
        "flow.measure",
        "flow.route_buffered",
        "flow.route_gated",
        "flow.route_sharded",
        "gating.reduce",
        "refine.anneal",
        "shard.partition",
        "shard.route",
        "shard.one",
        "shard.stitch",
        "sim.build",
        "sim.replay",
        "topology.buffered",
        "topology.gated",
        "topology.nearest_neighbor",
    }
)

#: Literal prefixes under which spans may be composed dynamically.
SPAN_PREFIXES = ()

#: Every metric name published with a full literal.
METRIC_NAMES = frozenset(
    {
        "controller.star_edge_length",
        "dme.index.cells_scanned",
        "dme.index.queries",
        "dme.index.radius_recomputes",
        "dme.index.tightened_queries",
        "dme.init_best.runs",
        "dme.init_best.seconds",
        "gating.gates_pruned",
        "ledger.runs_recorded",
        "progress.events_emitted",
        "sentinel.comparisons",
        "sentinel.regressions_found",
        "shard.count",
        "shard.route_seconds",
        "shard.sinks",
        "shard.stitch_merges",
        "shard.workers",
        "sim.cycles_replayed",
        "sizing.engaged",
        "sizing.resized",
    }
)

#: Literal prefixes of dynamically composed metric families:
#: ``dme.*`` carries :meth:`MergerStats.snapshot` keys, ``oracle.*``
#: the per-method LRU hit/miss/currsize gauges, ``refine.*`` the
#: annealer's move/escalation counters.
METRIC_PREFIXES = ("dme.", "oracle.", "refine.")

#: Every progress-event name the tracer listener layer emits (see
#: :mod:`repro.obs.progress`).  Events follow the same dotted
#: convention as spans/metrics; the ``progress.`` family is closed --
#: a new event kind must be added here and to the emitter.
EVENT_NAMES = frozenset(
    {
        "progress.phase_start",
        "progress.phase_finish",
        "progress.update",
    }
)


def is_valid_name(name: str) -> bool:
    """Does ``name`` follow the ``phase.subphase`` convention?"""
    return NAME_PATTERN.match(name) is not None


def span_name_known(name: str) -> bool:
    """Is a concrete span name covered by the catalog?"""
    return name in SPAN_NAMES or name.startswith(SPAN_PREFIXES)


def metric_name_known(name: str) -> bool:
    """Is a concrete metric name covered by the catalog?"""
    return name in METRIC_NAMES or name.startswith(METRIC_PREFIXES)


def event_name_known(name: str) -> bool:
    """Is a progress-event name covered by the catalog?"""
    return name in EVENT_NAMES
