"""Observability for the routing flow: spans, metrics, exporters.

Two layers (see ``DESIGN.md``, sections "Observability" and "Run
ledger & regression sentinel"):

* :mod:`repro.obs.tracer` -- hierarchical span tracing
  (``phase.subphase`` naming, ``perf_counter_ns`` timing, process
  -global default that is a true no-op until enabled);
* :mod:`repro.obs.metrics` -- named counters / gauges / histograms the
  subsystem stat structs publish into;
* :mod:`repro.obs.export` -- JSONL span log, Chrome ``trace_event``
  JSON, per-phase wall-clock (and memory) profiles;
* :mod:`repro.obs.logconfig` -- one-shot ``repro`` logger setup for
  the CLI's ``--log-level``;
* :mod:`repro.obs.memory` -- opt-in per-span tracemalloc/RSS sampling;
* :mod:`repro.obs.jsonio` -- the one JSON policy bench artifacts and
  run records share (schema key, float rounding, content digests);
* :mod:`repro.obs.ledger` -- content-addressed :class:`RunRecord`
  store under ``.repro-runs/``;
* :mod:`repro.obs.sentinel` -- noise-aware RunRecord diffing behind
  ``gated-cts obs diff/trend/check``;
* :mod:`repro.obs.progress` -- phase start/finish + percent-complete
  event stream for live consumers.
"""

from repro.obs.export import (
    DME_DETAIL_SPANS,
    PhaseProfile,
    PhaseRow,
    chrome_trace,
    phase_profile,
    spans_to_jsonl,
    write_chrome_trace,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.instrument import (
    publish_index_stats,
    publish_merger_stats,
    publish_oracle_cache,
)
from repro.obs.jsonio import (
    SCHEMA_KEY,
    SCHEMA_VERSION,
    canonical_dumps,
    content_digest,
    load_json,
    write_bench_json,
    write_json,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    RunLedger,
    RunRecord,
    environment_fingerprint,
    record_from_trace,
)
from repro.obs.logconfig import LOG_LEVELS, configure_logging
from repro.obs.memory import MemorySampler, peak_rss_bytes, span_memory_attrs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.progress import (
    DEFAULT_PHASE_WEIGHTS,
    ProgressEmitter,
    ProgressEvent,
)
from repro.obs.sentinel import (
    RunDiff,
    Thresholds,
    compare_runs,
    format_trend,
    self_test,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    phase_span,
    set_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LEDGER_DIR",
    "DEFAULT_PHASE_WEIGHTS",
    "DME_DETAIL_SPANS",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MemorySampler",
    "MetricsRegistry",
    "NULL_SPAN",
    "PhaseProfile",
    "PhaseRow",
    "ProgressEmitter",
    "ProgressEvent",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "SCHEMA_KEY",
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "Thresholds",
    "Tracer",
    "canonical_dumps",
    "chrome_trace",
    "compare_runs",
    "configure_logging",
    "content_digest",
    "disable_tracing",
    "enable_tracing",
    "environment_fingerprint",
    "format_trend",
    "get_registry",
    "get_tracer",
    "load_json",
    "peak_rss_bytes",
    "phase_profile",
    "phase_span",
    "publish_index_stats",
    "publish_merger_stats",
    "publish_oracle_cache",
    "record_from_trace",
    "self_test",
    "set_registry",
    "set_tracer",
    "span_memory_attrs",
    "spans_to_jsonl",
    "write_bench_json",
    "write_chrome_trace",
    "write_json",
    "write_metrics_json",
    "write_spans_jsonl",
]
