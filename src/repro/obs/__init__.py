"""Observability for the routing flow: spans, metrics, exporters.

Three layers (see ``DESIGN.md``, section "Observability"):

* :mod:`repro.obs.tracer` -- hierarchical span tracing
  (``phase.subphase`` naming, ``perf_counter_ns`` timing, process
  -global default that is a true no-op until enabled);
* :mod:`repro.obs.metrics` -- named counters / gauges / histograms the
  subsystem stat structs publish into;
* :mod:`repro.obs.export` -- JSONL span log, Chrome ``trace_event``
  JSON, per-phase wall-clock profiles;
* :mod:`repro.obs.logconfig` -- one-shot ``repro`` logger setup for
  the CLI's ``--log-level``.
"""

from repro.obs.export import (
    DME_DETAIL_SPANS,
    PhaseProfile,
    PhaseRow,
    chrome_trace,
    phase_profile,
    spans_to_jsonl,
    write_chrome_trace,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.instrument import (
    publish_index_stats,
    publish_merger_stats,
    publish_oracle_cache,
)
from repro.obs.logconfig import LOG_LEVELS, configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    phase_span,
    set_tracer,
)

__all__ = [
    "Counter",
    "DME_DETAIL_SPANS",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MetricsRegistry",
    "NULL_SPAN",
    "PhaseProfile",
    "PhaseRow",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "phase_profile",
    "phase_span",
    "publish_index_stats",
    "publish_merger_stats",
    "publish_oracle_cache",
    "set_registry",
    "set_tracer",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_metrics_json",
    "write_spans_jsonl",
]
