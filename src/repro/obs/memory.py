"""Per-span memory profiling: tracemalloc peaks and block-count deltas.

A :class:`MemorySampler` attached to a tracer (``Tracer.set_sampler``)
annotates every finished span with three columns:

* ``mem_peak_bytes`` -- peak Python-heap growth *during* the span,
  relative to the heap size at span entry (``tracemalloc`` peak,
  propagated correctly through nesting: a child's spike is visible in
  every open ancestor);
* ``mem_net_bytes`` -- heap growth that survived the span (negative
  when the span freed more than it allocated);
* ``mem_alloc_blocks`` -- net allocated-block delta from
  ``sys.getallocatedblocks()``, a cheap O(1) allocation-pressure
  proxy.

The sampler is **off by default** everywhere: ``tracemalloc`` roughly
doubles allocation cost process-wide, so the flows only pay for it
when the CLI's ``--profile-memory`` (or a bench) opts in.  When no
sampler is installed the per-span cost is one ``None`` test.

``tracemalloc.reset_peak()`` only tracks one global peak, so nesting
is handled here: on every push/pop the current hardware peak is folded
into *all* open frames before the peak register is reset, making each
frame's recorded peak the maximum over every interval of its lifetime.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Dict, List, Optional

#: Span-attribute keys the sampler writes (also the phase-profile and
#: RunRecord column names).
ATTR_PEAK = "mem_peak_bytes"
ATTR_NET = "mem_net_bytes"
ATTR_BLOCKS = "mem_alloc_blocks"

MEMORY_ATTRS = (ATTR_PEAK, ATTR_NET, ATTR_BLOCKS)


class _Frame:
    """One open span's memory bookkeeping."""

    __slots__ = ("start_bytes", "start_blocks", "peak_bytes")

    def __init__(self, start_bytes: int, start_blocks: int):
        self.start_bytes = start_bytes
        self.start_blocks = start_blocks
        self.peak_bytes = start_bytes


class MemorySampler:
    """Attaches peak/net heap columns to spans via tracemalloc.

    Use :meth:`start` / :meth:`stop` around the profiled region (the
    CLI does this for the whole invocation); the tracer calls
    :meth:`push` / :meth:`pop` from the span context managers.
    """

    def __init__(self) -> None:
        self._frames: List[_Frame] = []
        self._owns_tracemalloc = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "MemorySampler":
        """Begin tracing allocations (idempotent; chainable)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        return self

    def stop(self) -> None:
        """Stop tracing if this sampler started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False
        self._frames.clear()

    @property
    def active(self) -> bool:
        return tracemalloc.is_tracing()

    # -- span hooks -----------------------------------------------------
    def push(self) -> Optional[_Frame]:
        """Open a frame at span entry; returns the pop token."""
        if not tracemalloc.is_tracing():
            return None
        current, peak = tracemalloc.get_traced_memory()
        for frame in self._frames:
            if peak > frame.peak_bytes:
                frame.peak_bytes = peak
        tracemalloc.reset_peak()
        frame = _Frame(current, sys.getallocatedblocks())
        self._frames.append(frame)
        return frame

    def pop(self, frame: Optional[_Frame]) -> Dict[str, int]:
        """Close ``frame``; returns the span's memory attributes."""
        if frame is None:
            return {}
        current, peak = tracemalloc.get_traced_memory()
        for open_frame in self._frames:
            if peak > open_frame.peak_bytes:
                open_frame.peak_bytes = peak
        tracemalloc.reset_peak()
        # Mirror the tracer's out-of-order tolerance: drop leaked inner
        # frames so the stack cannot grow without bound.
        while self._frames and self._frames[-1] is not frame:
            self._frames.pop()
        if self._frames:
            self._frames.pop()
        return {
            ATTR_PEAK: max(0, frame.peak_bytes - frame.start_bytes),
            ATTR_NET: current - frame.start_bytes,
            ATTR_BLOCKS: sys.getallocatedblocks() - frame.start_blocks,
        }


def peak_rss_bytes() -> Optional[int]:
    """Process-lifetime peak RSS in bytes (``None`` where unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalized to bytes here.  This is a *process* high-water mark --
    it never decreases -- so it belongs on run-level records, not on
    individual spans.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024


def span_memory_attrs(attrs: Dict[str, Any]) -> Dict[str, int]:
    """The memory columns present in one span's attribute dict."""
    return {key: attrs[key] for key in MEMORY_ATTRS if key in attrs}
