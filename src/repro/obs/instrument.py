"""Bridges from the flow's ad-hoc stat structs into the registry.

Each helper translates one subsystem's counters into stable dotted
metric names.  They are called at phase boundaries (end of a merger
run, end of a routed flow), never in inner loops, and tolerate a
``None`` registry argument by falling back to the process-global one.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry


def publish_merger_stats(stats, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish :class:`~repro.cts.dme.MergerStats` under ``dme.*``.

    Uses the struct's :meth:`snapshot` stable keys, so a new counter
    added to ``MergerStats`` is exported without touching this module.
    """
    registry = registry or get_registry()
    for key, value in stats.snapshot().items():
        registry.counter("dme." + key).inc(value)


def publish_index_stats(index, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish :class:`~repro.cts.candidate_index.SegmentGridIndex` work."""
    if index is None:
        return
    registry = registry or get_registry()
    registry.counter("dme.index.queries").inc(index.queries)
    registry.counter("dme.index.cells_scanned").inc(index.cells_scanned)
    registry.counter("dme.index.radius_recomputes").inc(index.radius_recomputes)
    registry.counter("dme.index.tightened_queries").inc(index.tightened_queries)


def publish_oracle_cache(oracle, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish the :class:`ActivityOracle` per-mask LRU hit/miss gauges.

    Gauges, not counters: ``lru_cache`` counts are cumulative per
    oracle instance, so last-write-wins is the correct aggregation.
    """
    registry = registry or get_registry()
    for method, info in oracle.cache_info().items():
        base = "oracle.%s." % method
        registry.gauge(base + "hits").set(info.hits)
        registry.gauge(base + "misses").set(info.misses)
        registry.gauge(base + "currsize").set(info.currsize)
