"""The performance-regression sentinel: noise-aware RunRecord diffs.

:func:`compare_runs` lines two :class:`~repro.obs.ledger.RunRecord`\\ s
up section by section and emits one-line findings in the style of the
``repro.check`` diagnostics:

* **pins** -- result pins must match *exactly* (compared through their
  canonical JSON encoding, so no float ``==`` and no tolerance: a pin
  that moved is a correctness event, not noise);
* **time** -- per-phase wall-clock ratios, gated by a relative
  threshold *and* an absolute floor (a 2x blowup of a 2 ms phase is
  scheduler noise; a 2x blowup of a 2 s phase is a regression);
* **memory** -- per-phase and root peak-heap ratios, same model;
* **counters** -- work counters (``dme.plans_computed``,
  ``dme.kernel_batches``, ...) with a tight relative band in both
  directions: the merger doing 30% more *or* fewer plans than the
  baseline means the algorithm changed, which a wall-clock threshold
  on a different machine would miss.

The noise model is deliberately simple and explicit (threshold +
floor per section) rather than statistical: records carry single runs,
not distributions, and the thresholds are CLI-overridable where a
calibrated environment (CI re-running its own baseline) can afford
tighter bands.

Exit-code contract (``gated-cts obs diff/check``): 0 clean (improved
is clean), 1 at least one regression, 2 invalid input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.errors import InputError
from repro.obs.jsonio import canonical_dumps
from repro.obs.ledger import RunRecord
from repro.obs.metrics import get_registry

#: Sections a comparison may cover, in report order.
ALL_SECTIONS = ("pins", "time", "memory", "counters")

#: Statuses that make a diff fail (exit 1).
FAILING = ("regression", "pin-mismatch")


@dataclass(frozen=True)
class Thresholds:
    """The explicit noise model of one comparison."""

    time_rel: float = 1.5
    """Phase (and root) time ratio above which slower -> regression."""
    time_floor_ns: int = 50_000_000
    """Phases faster than this in *both* runs are never flagged."""
    mem_rel: float = 1.5
    """Peak-heap ratio above which bigger -> regression."""
    mem_floor_bytes: int = 1_000_000
    """Peaks below this in both runs are never flagged."""
    counter_rel: float = 0.25
    """Counters may drift this fraction in either direction."""
    counter_floor: int = 32
    """Counters at or below this in both runs are never flagged."""

    def __post_init__(self):
        if self.time_rel <= 1.0 or self.mem_rel <= 1.0:
            raise InputError(
                "ratio thresholds must be > 1.0", field="thresholds"
            )
        if self.counter_rel < 0.0:
            raise InputError(
                "counter_rel must be >= 0", field="thresholds"
            )


@dataclass(frozen=True)
class Finding:
    """One compared quantity and its verdict."""

    section: str
    name: str
    status: str
    """``ok`` | ``improved`` | ``regression`` | ``pin-mismatch`` |
    ``new`` | ``missing``"""
    baseline: Any = None
    current: Any = None
    ratio: Optional[float] = None
    message: str = ""

    @property
    def failing(self) -> bool:
        return self.status in FAILING

    def line(self) -> str:
        """The one-line ``repro.check``-style diagnostic."""
        tag = self.status.upper()
        core = "obs.check: %-12s [%s] %s" % (tag, self.section, self.name)
        if self.message:
            core += ": %s" % self.message
        return core


@dataclass
class RunDiff:
    """The full comparison of two run records."""

    baseline_id: str
    current_id: str
    sections: Tuple[str, ...]
    thresholds: Thresholds
    findings: List[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.failing]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def notable(self) -> List[Finding]:
        """Everything except silent ``ok`` rows."""
        return [f for f in self.findings if f.status != "ok"]

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.status] = counts.get(finding.status, 0) + 1
        parts = ["%d %s" % (counts[k], k) for k in sorted(counts)]
        verdict = "clean" if self.ok else "REGRESSED"
        return "obs.check: %s  (%s; %d compared)  %s -> %s" % (
            verdict,
            ", ".join(parts) if parts else "nothing compared",
            len(self.findings),
            self.baseline_id[:12],
            self.current_id[:12],
        )

    def report(self) -> str:
        lines = [f.line() for f in self.notable()]
        lines.append(self.summary())
        return "\n".join(lines)


def _fmt_ns(ns: float) -> str:
    return "%.4gs" % (ns / 1e9)


def _fmt_bytes(n: float) -> str:
    return "%.4gMiB" % (n / (1024.0 * 1024.0))


def _ratio(baseline: float, current: float) -> Optional[float]:
    return (current / baseline) if baseline > 0 else None


def _compare_scalar(
    section: str,
    name: str,
    baseline: float,
    current: float,
    rel: float,
    floor: float,
    fmt,
) -> Finding:
    """Ratio-vs-threshold verdict for one timed/sized quantity."""
    if baseline <= floor and current <= floor:
        return Finding(section, name, "ok", baseline, current)
    ratio = _ratio(baseline, current)
    message = "%s -> %s" % (fmt(baseline), fmt(current))
    if ratio is not None:
        message += " (%.2fx, threshold %.2fx)" % (ratio, rel)
    if ratio is None or ratio > rel:
        return Finding(section, name, "regression", baseline, current, ratio, message)
    if ratio < 1.0 / rel:
        return Finding(section, name, "improved", baseline, current, ratio, message)
    return Finding(section, name, "ok", baseline, current, ratio)


def _compare_pins(baseline: RunRecord, current: RunRecord) -> Iterable[Finding]:
    names = sorted(set(baseline.pins) | set(current.pins))
    for name in names:
        if name not in current.pins:
            yield Finding(
                "pins", name, "missing", baseline.pins[name], None,
                message="pin dropped from current run",
            )
            continue
        if name not in baseline.pins:
            yield Finding(
                "pins", name, "new", None, current.pins[name],
                message="pin absent from baseline",
            )
            continue
        base, cur = baseline.pins[name], current.pins[name]
        if canonical_dumps(base) == canonical_dumps(cur):
            yield Finding("pins", name, "ok", base, cur)
        else:
            yield Finding(
                "pins", name, "pin-mismatch", base, cur,
                message="%r -> %r (pins must be byte-identical)" % (base, cur),
            )


def _compare_time(
    baseline: RunRecord, current: RunRecord, t: Thresholds
) -> Iterable[Finding]:
    yield _compare_scalar(
        "time", "(root)", baseline.root_ns, current.root_ns,
        t.time_rel, t.time_floor_ns, _fmt_ns,
    )
    base_rows, cur_rows = baseline.phase_rows(), current.phase_rows()
    for name in sorted(set(base_rows) | set(cur_rows)):
        if name not in cur_rows:
            yield Finding("time", name, "missing", message="phase vanished")
            continue
        if name not in base_rows:
            yield Finding("time", name, "new", message="phase not in baseline")
            continue
        yield _compare_scalar(
            "time", name,
            base_rows[name]["total_ns"], cur_rows[name]["total_ns"],
            t.time_rel, t.time_floor_ns, _fmt_ns,
        )


def _compare_memory(
    baseline: RunRecord, current: RunRecord, t: Thresholds
) -> Iterable[Finding]:
    base_root, cur_root = baseline.root_mem_peak_bytes, current.root_mem_peak_bytes
    if base_root is not None and cur_root is not None:
        yield _compare_scalar(
            "memory", "(root)", base_root, cur_root,
            t.mem_rel, t.mem_floor_bytes, _fmt_bytes,
        )
    base_rows, cur_rows = baseline.phase_rows(), current.phase_rows()
    for name in sorted(set(base_rows) & set(cur_rows)):
        base_peak = base_rows[name].get("mem_peak_bytes")
        cur_peak = cur_rows[name].get("mem_peak_bytes")
        if base_peak is None or cur_peak is None:
            continue
        yield _compare_scalar(
            "memory", name, base_peak, cur_peak,
            t.mem_rel, t.mem_floor_bytes, _fmt_bytes,
        )


def _compare_counters(
    baseline: RunRecord, current: RunRecord, t: Thresholds
) -> Iterable[Finding]:
    base_c, cur_c = baseline.counters(), current.counters()
    for name in sorted(set(base_c) & set(cur_c)):
        base, cur = base_c[name], cur_c[name]
        if base <= t.counter_floor and cur <= t.counter_floor:
            yield Finding("counters", name, "ok", base, cur)
            continue
        low = base * (1.0 - t.counter_rel)
        high = base * (1.0 + t.counter_rel)
        if low <= cur <= high:
            yield Finding(
                "counters", name, "ok", base, cur, _ratio(base, cur)
            )
        else:
            yield Finding(
                "counters", name, "regression", base, cur, _ratio(base, cur),
                message="%d -> %d (allowed %d..%d)"
                % (base, cur, int(low), int(high)),
            )


def compare_runs(
    baseline: RunRecord,
    current: RunRecord,
    thresholds: Optional[Thresholds] = None,
    sections: Sequence[str] = ALL_SECTIONS,
) -> RunDiff:
    """Compare two run records; see the module docstring for the model."""
    thresholds = thresholds or Thresholds()
    for section in sections:
        if section not in ALL_SECTIONS:
            raise InputError(
                "unknown diff section %r (choose from %s)"
                % (section, ", ".join(ALL_SECTIONS)),
                field="sections",
            )
    diff = RunDiff(
        baseline_id=baseline.run_id,
        current_id=current.run_id,
        sections=tuple(sections),
        thresholds=thresholds,
    )
    if "pins" in sections:
        diff.findings.extend(_compare_pins(baseline, current))
    if "time" in sections:
        diff.findings.extend(_compare_time(baseline, current, thresholds))
    if "memory" in sections:
        diff.findings.extend(_compare_memory(baseline, current, thresholds))
    if "counters" in sections:
        diff.findings.extend(_compare_counters(baseline, current, thresholds))
    registry = get_registry()
    registry.counter("sentinel.comparisons").inc()
    registry.counter("sentinel.regressions_found").inc(len(diff.regressions))
    return diff


# ----------------------------------------------------------------------
# trend
# ----------------------------------------------------------------------
def format_trend(records: Sequence[RunRecord], pins: Sequence[str] = ()) -> str:
    """One line per record, oldest first: the ledger as a time series."""
    from repro.analysis.report import format_table

    headers = ["run", "created", "label", "root s", "peak MiB", "plans"]
    headers += list(pins)
    rows = []
    for record in records:
        peak = record.root_mem_peak_bytes
        row = [
            record.run_id[:12],
            record.created_unix,
            record.label,
            record.root_ns / 1e9,
            (peak / (1024.0 * 1024.0)) if peak is not None else "-",
            record.counters().get("dme.plans_computed", "-"),
        ]
        row += [record.pins.get(name, "-") for name in pins]
        rows.append(row)
    return format_table(headers, rows, title="Run-ledger trend")


# ----------------------------------------------------------------------
# self test
# ----------------------------------------------------------------------
def synthetic_record(
    time_factor: float = 1.0,
    mem_factor: float = 1.0,
    counter_factor: float = 1.0,
    pins: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    """A small, fully deterministic record for sentinel self-tests.

    Factors scale the planted ``topology.gated`` phase time, its peak
    memory, and the ``dme.plans_computed`` counter relative to the
    canonical baseline shape, so tests (and ``obs selftest``) can plant
    a precise synthetic regression.
    """
    topo_ns = int(2_000_000_000 * time_factor)
    measure_ns = 100_000_000
    root_ns = topo_ns + measure_ns + 50_000_000
    topo_peak = int(64_000_000 * mem_factor)
    phases = {
        "root_ns": root_ns,
        "root_s": root_ns / 1e9,
        "covered_ns": topo_ns + measure_ns,
        "coverage": (topo_ns + measure_ns) / root_ns,
        "root_mem_peak_bytes": max(topo_peak, 8_000_000),
        "phases": [
            {
                "name": "topology.gated",
                "count": 1,
                "total_ns": topo_ns,
                "total_s": topo_ns / 1e9,
                "fraction": topo_ns / root_ns,
                "mem_peak_bytes": topo_peak,
                "mem_alloc_blocks": 1000,
            },
            {
                "name": "flow.measure",
                "count": 1,
                "total_ns": measure_ns,
                "total_s": measure_ns / 1e9,
                "fraction": measure_ns / root_ns,
                "mem_peak_bytes": 8_000_000,
                "mem_alloc_blocks": 200,
            },
        ],
    }
    metrics = {
        "dme.plans_computed": {
            "type": "counter",
            "value": int(5000 * counter_factor),
        },
        "dme.kernel_batches": {"type": "counter", "value": 400},
    }
    return RunRecord(
        kind="selftest",
        label="sentinel-selftest",
        config={"benchmark": "synthetic"},
        fingerprint={"python": "synthetic"},
        phases=phases,
        spans=[],
        metrics=metrics,
        pins=pins
        if pins is not None
        else {"wirelength": 123456.789012, "gate_count": 254},
        created_unix=0,
    )


def self_test(thresholds: Optional[Thresholds] = None) -> Tuple[bool, str]:
    """Does the sentinel catch planted regressions and pass clean runs?

    Plants a synthetic 2x ``topology.gated`` slowdown, a 3x memory
    spike, a counter blowup and a pin flip against the canonical
    baseline, and also diffs the baseline against itself.  Returns
    ``(ok, report)`` where ``ok`` requires every planted fault to be
    caught *and* the identical pair to diff clean.
    """
    thresholds = thresholds or Thresholds()
    baseline = synthetic_record()
    lines = []
    ok = True

    clean = compare_runs(baseline, synthetic_record(), thresholds)
    lines.append("identical runs: %s" % clean.summary())
    ok &= clean.ok

    planted = {
        "2x topology.gated slowdown": synthetic_record(time_factor=2.0),
        "3x memory spike": synthetic_record(mem_factor=3.0),
        "counter blowup": synthetic_record(counter_factor=2.0),
        "pin flip": synthetic_record(
            pins={"wirelength": 123456.789013, "gate_count": 254}
        ),
    }
    for what, record in planted.items():
        diff = compare_runs(baseline, record, thresholds)
        caught = not diff.ok
        lines.append(
            "planted %s: %s" % (what, "caught" if caught else "MISSED")
        )
        ok &= caught
    lines.append("sentinel self-test: %s" % ("ok" if ok else "FAILED"))
    return ok, "\n".join(lines)
