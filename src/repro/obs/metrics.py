"""Named counters, gauges and histograms for the routing flow.

The registry is the sink the ad-hoc instrumentation structs publish
into: :class:`~repro.cts.dme.MergerStats` counters, the
:class:`~repro.activity.probability.ActivityOracle` LRU hit/miss
numbers and the :class:`~repro.cts.candidate_index.SegmentGridIndex`
query counters all land here under stable dotted names
(``dme.plans_computed``, ``oracle.statistics.hits``,
``dme.index.cells_scanned``, ...), so exporters and tests read one
uniform ``as_dict()`` instead of reaching into per-module structs.

Metric names follow the span naming convention: ``phase.subphase``
(see ``DESIGN.md`` section "Observability").

Like the tracer, the module keeps a process-global default registry.
Publishing is cheap (a dict lookup plus an add) and happens at phase
boundaries, not in inner loops, so the registry is always on.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional
from repro.check.errors import ContractError, ContractTypeError


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ContractError("counters only increase; use a gauge")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary: count / sum / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError``
    (silent aliasing would corrupt exported values).
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ContractTypeError(
                "metric %r is a %s, not a %s"
                % (name, type(metric).__name__, cls.__name__)
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry.

        Counters sum, gauges take the other registry's value when it
        has one (last-write-wins, matching :meth:`Gauge.set`), and
        histograms concatenate their streams (count and sum add,
        min/max widen).  Kind mismatches raise
        :class:`~repro.check.errors.ContractTypeError` just like
        aliased lookups do.  This is how per-shard worker registries
        fold into the parent without losing ``dme.*`` / ``oracle.*``
        totals.
        """
        for name in other.names():
            metric = other._metrics[name]
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                if metric.value is not None:
                    self.gauge(name).set(metric.value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(name)
                mine.count += metric.count
                mine.total += metric.total
                if metric.min < mine.min:
                    mine.min = metric.min
                if metric.max > mine.max:
                    mine.max = metric.max
            else:  # pragma: no cover - registry only creates the three
                raise ContractTypeError(
                    "metric %r has unknown kind %s"
                    % (name, type(metric).__name__)
                )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self):
        return sorted(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """All metrics, keyed by name (sorted), values via ``as_dict``."""
        return {name: self._metrics[name].as_dict() for name in self.names()}


#: Process-global registry; always on (publishing is phase-boundary cheap).
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous
