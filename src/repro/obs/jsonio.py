"""The one JSON serialization policy for bench artifacts and RunRecords.

Every machine-readable artifact the repo persists -- the committed
``BENCH_*.json`` files at the repo root, the ``.repro-runs/``
RunRecords, the committed sentinel baselines -- goes through this
module so they agree on shape:

* one ``schema_version`` key (bumped when a consumer-visible field
  changes meaning, never for additions);
* floats in *timing/derived* sections rounded to a fixed number of
  decimals (:func:`round_floats`) so re-running a bench on the same
  machine produces minimal diffs, while **result pins are never
  rounded** -- byte-identical pins are the regression contract;
* no wall-clock timestamps inside bench payloads (committed artifacts
  must be reproducible byte-for-byte); RunRecords carry a single
  ``created_unix`` stamped by the ledger, outside the content digest;
* content digests over a canonical encoding (sorted keys, no
  whitespace) so records are addressable by what they say, not by how
  the writer happened to indent them.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict

#: Bump only on a breaking shape change; consumers tolerate additions.
SCHEMA_VERSION = 1

#: The key every persisted payload carries.
SCHEMA_KEY = "schema_version"

#: Decimal places kept for timing/ratio floats in bench payloads.
BENCH_FLOAT_DECIMALS = 9


def round_floats(obj: Any, decimals: int = BENCH_FLOAT_DECIMALS) -> Any:
    """Recursively round every float in a JSON-shaped structure.

    Sub-nanosecond noise in ``seconds`` fields is measurement residue,
    not signal; rounding it keeps committed bench JSON diffs focused
    on real movement.  Ints and bools pass through untouched.
    """
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, float):
        return round(obj, decimals)
    if isinstance(obj, dict):
        return {k: round_floats(v, decimals) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [round_floats(v, decimals) for v in obj]
    return obj


def canonical_dumps(payload: Any) -> str:
    """Canonical encoding: sorted keys, minimal separators, no NaN.

    Two payloads with equal content produce the same string, which is
    what :func:`content_digest` hashes -- indentation and key order are
    presentation, not content.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical encoding."""
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()


def write_json(path, payload: Any, indent: int = 2) -> None:
    """Pretty, key-sorted writer with a trailing newline (git-friendly)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=indent, sort_keys=True)
        fh.write("\n")


def load_json(path) -> Any:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def bench_payload(bench: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize one bench artifact: schema key, name, rounded floats."""
    out: Dict[str, Any] = {SCHEMA_KEY: SCHEMA_VERSION, "bench": bench}
    out.update(round_floats(payload))
    return out


def write_bench_json(path, bench: str, payload: Dict[str, Any]) -> None:
    """Persist one ``BENCH_*.json`` artifact through the shared policy."""
    write_json(path, bench_payload(bench, payload))


def unix_now() -> int:
    """Whole-second wall-clock stamp for ledger metadata.

    Only the ledger calls this (RunRecord ``created_unix``); committed
    bench artifacts must stay timestamp-free.
    """
    return int(time.time())
