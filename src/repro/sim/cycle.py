"""Clock-by-clock replay of an instruction trace over a routed network.

Model
-----
Each cycle executes one instruction; a tree edge switches (twice, per
the clock activity factor) exactly when its *controlling enable* --
the nearest maskable gate at or above it -- is on, i.e. when the
instruction's usage mask intersects that enable's module set.  An
enable star edge switches when the enable's value differs from the
previous cycle's.

Implementation
--------------
Edges are grouped by controlling enable, so the per-cycle work is one
boolean lookup per *enable*, not per edge, and the whole trace is
evaluated with two vectorized gathers:

* ``activation[g, k]`` -- does instruction ``k`` wake enable ``g``?
  (|enables| x K booleans, built once from the ISA masks);
* per-cycle switched capacitance = ``caps @ activation[:, stream]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.activity.isa import InstructionSet
from repro.activity.stream import InstructionStream
from repro.check.errors import InputError
from repro.core.controller import EnableRouting
from repro.cts.topology import ClockTree
from repro.obs import get_registry, get_tracer
from repro.tech.parameters import Technology


@dataclass(frozen=True)
class SimulationResult:
    """Per-cycle switched capacitance of one replayed trace."""

    clock_per_cycle: np.ndarray
    controller_per_cycle: np.ndarray
    """Controller switching is pair-based; entry ``t`` covers the
    transition into cycle ``t`` (entry 0 is zero)."""

    @property
    def cycles(self) -> int:
        return int(self.clock_per_cycle.size)

    @property
    def mean_clock(self) -> float:
        return float(self.clock_per_cycle.mean())

    @property
    def mean_controller(self) -> float:
        """Average over the trace's B-1 transitions (the P_tr basis)."""
        if self.cycles < 2:
            return 0.0
        return float(self.controller_per_cycle[1:].mean())

    @property
    def mean_total(self) -> float:
        return self.mean_clock + self.mean_controller

    @property
    def peak_total(self) -> float:
        return float((self.clock_per_cycle + self.controller_per_cycle).max())


class ClockNetworkSimulator:
    """Replays instruction traces over a routed (possibly gated) tree."""

    def __init__(
        self,
        tree: ClockTree,
        tech: Technology,
        isa: InstructionSet,
        routing: Optional[EnableRouting] = None,
    ):
        with get_tracer().span("sim.build", enables=0) as span:
            self._tech = tech
            self._isa = isa
            clock_groups, always_on = self._group_clock_caps(tree, tech)
            star_groups = self._group_star_caps(tree, tech, routing)
            self._always_on_cap = always_on

            masks: List[int] = sorted(set(clock_groups) | set(star_groups))
            self._clock_caps = np.array(
                [clock_groups.get(m, 0.0) for m in masks], dtype=float
            )
            self._star_caps = np.array(
                [star_groups.get(m, 0.0) for m in masks], dtype=float
            )
            if masks:
                self._activation = np.array(
                    [[bool(mask & instr) for instr in isa.masks] for mask in masks],
                    dtype=float,
                )
            else:  # fully unmasked network (e.g. the buffered baseline)
                self._activation = np.zeros((0, len(isa)), dtype=float)
            span.set(enables=len(masks))

    # ------------------------------------------------------------------
    # static structure
    # ------------------------------------------------------------------
    @staticmethod
    def _group_clock_caps(
        tree: ClockTree, tech: Technology
    ) -> Tuple[Dict[int, float], float]:
        """Per-enable clock capacitance; 0-mask = always-on portion."""

        def attached(node) -> float:
            if node.is_sink:
                return node.sink.load_cap
            return sum(
                tree.node(c).edge_cell.input_cap
                for c in node.children
                if tree.node(c).edge_cell is not None
            )

        a_clk = tech.clock_transitions_per_cycle
        groups: Dict[int, float] = {}
        always_on = a_clk * attached(tree.root)
        controlling: Dict[int, Optional[int]] = {tree.root_id: None}
        for node in tree.preorder():
            if node.id == tree.root_id:
                continue
            if node.has_gate:
                controlling[node.id] = node.id
            else:
                controlling[node.id] = controlling[node.parent]
            cap = a_clk * (tech.wire_cap(node.edge_length) + attached(node))
            owner = controlling[node.id]
            if owner is None:
                always_on += cap
            else:
                mask = tree.node(owner).module_mask
                groups[mask] = groups.get(mask, 0.0) + cap
        return groups, always_on

    @staticmethod
    def _group_star_caps(
        tree: ClockTree, tech: Technology, routing: Optional[EnableRouting]
    ) -> Dict[int, float]:
        if routing is None:
            return {}
        c = tech.unit_wire_capacitance
        gate_in = tech.masking_gate.input_cap
        groups: Dict[int, float] = {}
        for route in routing.routes:
            mask = tree.node(route.node_id).module_mask
            cap = c * route.length + gate_in
            groups[mask] = groups.get(mask, 0.0) + cap
        return groups

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def run(self, stream: InstructionStream) -> SimulationResult:
        """Replay a trace; every id must be < the ISA's size."""
        with get_tracer().span("sim.replay", cycles=len(stream)):
            ids = stream.ids
            if ids.max() >= len(self._isa):
                raise InputError(
                    "stream references an instruction outside the ISA"
                )
            active = self._activation[:, ids]  # enables x cycles
            clock = self._clock_caps @ active + self._always_on_cap
            controller = np.zeros(ids.size, dtype=float)
            if ids.size > 1:
                toggles = np.abs(active[:, 1:] - active[:, :-1])
                controller[1:] = self._star_caps @ toggles
            get_registry().counter("sim.cycles_replayed").inc(int(ids.size))
            return SimulationResult(
                clock_per_cycle=clock, controller_per_cycle=controller
            )
