"""Cycle-accurate switched-capacitance simulation.

The paper replaces clock-by-clock simulation with table-driven
statistics because the simulation is "very expensive".  This package
implements that expensive simulation anyway -- vectorized, so it is
affordable -- and uses it as the *ground truth* the statistical
accounting is verified against: replaying the very trace the tables
were built from must reproduce ``W(T)`` and ``W(S)`` exactly (they are
plug-in statistics of the same empirical distribution), and replaying
a *different* trace from the same workload measures how well the
probabilistic model generalizes.
"""

from repro.sim.cycle import ClockNetworkSimulator, SimulationResult

__all__ = ["ClockNetworkSimulator", "SimulationResult"]
