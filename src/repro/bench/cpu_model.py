"""Probabilistic CPU workload model.

Section 5 of the paper: "The instruction stream and the used modules
for each instruction are generated according to a probabilistic model
of the CPU when it executes typical programs" with two reported
properties: the average number of used modules per instruction is
about 40% of the modules, and the streams are tens of thousands of
cycles long.

``CpuModel`` reproduces that setup:

* an ISA of ``K`` instructions whose usage bitmasks are drawn so the
  popularity-weighted average usage fraction hits ``target_activity``
  (modules get heterogeneous "popularity" so some are hot and some are
  nearly idle -- that heterogeneity is what gated clocking exploits);
* a Zipf-like instruction popularity (some instructions are rare, the
  paper's argument for table-driven statistics over brute force);
* a first-order Markov chain with a ``locality`` knob controlling how
  bursty execution is (burstier -> fewer enable transitions -> cheaper
  controller tree).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.activity.isa import InstructionSet
from repro.activity.probability import ActivityOracle
from repro.activity.stream import InstructionStream, MarkovStreamModel
from repro.activity.tables import ActivityTables
from repro.check.errors import ContractError


@dataclass(frozen=True)
class CpuModelConfig:
    """Knobs of the synthetic CPU."""

    num_modules: int
    num_instructions: int = 24
    target_activity: float = 0.4
    """Average fraction of modules used per executed instruction
    (paper Table 4's Ave(M(I)) is about 0.4)."""

    locality: float = 0.55
    """Self-transition bias of the instruction Markov chain, [0, 1)."""

    zipf_exponent: float = 1.0
    """Skew of instruction popularity (0 = uniform)."""

    appeal_alpha: float = 0.35
    appeal_beta: float = 0.5
    """Beta-distribution shape of per-cluster appeal.  The defaults are
    u-shaped: a real processor has hot always-clocked units and cold
    rarely-used ones, and that heterogeneity is precisely what clock
    gating exploits.  (alpha=beta=large would make every unit equally
    lukewarm and gating pointless.)"""

    num_clusters: int = 0
    """Number of functional clusters the modules are grouped into;
    0 picks ``max(8, num_modules // 24)``.  Modules of one cluster
    (an ALU, a register file, a decoder...) are activated *together*
    by the instructions that use the unit -- the activity correlation
    a real RTL usage table exhibits and that activity-driven clock
    gating exploits.  ``num_clusters == num_modules`` makes every
    module independent (the ablation case)."""

    cluster_coherence: float = 0.85
    """Probability that a module of an active cluster is exercised by
    the instruction (1.0 = perfectly coherent clusters)."""

    background_usage: float = 0.02
    """Probability that an instruction uses a module outside its
    active clusters (control/debug sprinkle)."""

    seed: int = 0

    def __post_init__(self):
        if self.num_modules < 1 or self.num_instructions < 2:
            raise ContractError("need >= 1 module and >= 2 instructions")
        if not 0.0 < self.target_activity < 1.0:
            raise ContractError("target_activity must lie in (0, 1)")
        if not 0.0 <= self.locality < 1.0:
            raise ContractError("locality must lie in [0, 1)")
        if self.num_clusters < 0 or self.num_clusters > self.num_modules:
            raise ContractError("num_clusters must lie in [0, num_modules]")
        if not 0.0 < self.cluster_coherence <= 1.0:
            raise ContractError("cluster_coherence must lie in (0, 1]")
        if not 0.0 <= self.background_usage < 1.0:
            raise ContractError("background_usage must lie in [0, 1)")

    @property
    def resolved_num_clusters(self) -> int:
        if self.num_clusters:
            return self.num_clusters
        return min(self.num_modules, max(8, self.num_modules // 24))

    def with_activity(self, target_activity: float) -> "CpuModelConfig":
        """A copy with a different usage density (the Fig. 4 sweep)."""
        return replace(self, target_activity=target_activity)


class CpuModel:
    """A drawn instance of the synthetic CPU: ISA + instruction chain."""

    def __init__(self, config: CpuModelConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.popularity = self._draw_popularity(rng)
        self.cluster_of = self._assign_clusters(rng)
        """Module index -> functional-cluster index."""
        self.isa = self._draw_isa(rng)
        self.markov = MarkovStreamModel.from_locality(
            popularity=self.popularity, locality=config.locality
        )

    # ------------------------------------------------------------------
    # construction details
    # ------------------------------------------------------------------
    def _draw_popularity(self, rng: np.random.Generator) -> np.ndarray:
        k = self.config.num_instructions
        ranks = np.arange(1, k + 1, dtype=float)
        weights = ranks ** (-self.config.zipf_exponent)
        rng.shuffle(weights)
        return weights / weights.sum()

    def _assign_clusters(self, rng: np.random.Generator) -> np.ndarray:
        """Near-balanced random grouping of modules into clusters."""
        n = self.config.num_modules
        num_clusters = self.config.resolved_num_clusters
        assignment = np.arange(n) % num_clusters
        rng.shuffle(assignment)
        return assignment

    def _draw_isa(self, rng: np.random.Generator) -> InstructionSet:
        """Draw the RTL usage table with cluster-correlated activity.

        Each instruction activates whole functional clusters (an
        activated cluster exercises each of its modules with
        ``cluster_coherence``), plus a small background sprinkle.
        Cluster appeals are beta-distributed (u-shaped by default:
        hot and cold units) and rescaled so the popularity-weighted
        mean fraction of used modules hits ``target_activity``.  Low
        targets scale the distribution down; high targets scale its
        idle side up (blending toward 1), so the achieved mean tracks
        the target over the whole (0, 1) range -- needed by the Fig. 4
        activity sweep.
        """
        cfg = self.config
        n, k = cfg.num_modules, cfg.num_instructions
        num_clusters = cfg.resolved_num_clusters
        appeal = rng.beta(cfg.appeal_alpha, cfg.appeal_beta, size=num_clusters)
        # Per-module usage probability given cluster appeal a:
        #   p = a * coherence + (1 - a * coherence) * background.
        # Solve for the mean cluster appeal that hits the target.
        span = cfg.cluster_coherence * (1.0 - cfg.background_usage)
        wanted = (cfg.target_activity - cfg.background_usage) / span
        wanted = min(max(wanted, 1e-3), 1.0 - 1e-3)
        mean = appeal.mean()
        if wanted <= mean:
            appeal *= wanted / mean
        else:
            appeal = 1.0 - (1.0 - appeal) * (1.0 - wanted) / (1.0 - mean)
        appeal = np.clip(appeal, 0.0, 1.0)

        cluster_active = rng.random((k, num_clusters)) < appeal[None, :]
        member_active = cluster_active[:, self.cluster_of]
        coherent = rng.random((k, n)) < cfg.cluster_coherence
        usage = member_active & coherent
        if cfg.background_usage > 0:
            usage |= rng.random((k, n)) < cfg.background_usage
        # No instruction may use zero modules (it must clock something).
        for row in range(k):
            if not usage[row].any():
                usage[row, rng.integers(0, n)] = True
        lists = [set(np.nonzero(usage[row])[0].tolist()) for row in range(k)]
        return InstructionSet.from_usage_lists(lists, num_modules=n)

    # ------------------------------------------------------------------
    # products
    # ------------------------------------------------------------------
    def stream(self, length: int, seed: Optional[int] = None) -> InstructionStream:
        """Sample an instruction trace of the given length."""
        rng = np.random.default_rng(self.config.seed + 7919 if seed is None else seed)
        return self.markov.generate(length, rng)

    def tables_from_stream(self, length: int = 10000, seed: Optional[int] = None) -> ActivityTables:
        """IFT/IMATT from a sampled trace (the paper's methodology)."""
        return ActivityTables.from_stream(self.isa, self.stream(length, seed))

    def tables_analytic(self) -> ActivityTables:
        """Exact stationary IFT/IMATT of the Markov chain (no sampling)."""
        return ActivityTables.from_markov(self.isa, self.markov)

    def oracle(self, stream_length: Optional[int] = 10000) -> ActivityOracle:
        """An activity oracle; ``stream_length=None`` uses analytic tables."""
        if stream_length is None:
            return ActivityOracle(self.tables_analytic())
        return ActivityOracle(self.tables_from_stream(stream_length))
