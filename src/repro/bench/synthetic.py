"""Seeded synthetic workloads at sharding scale (10k-100k sinks).

The r1-r5 family tops out at 3101 sinks; the sharded router's scaling
story needs inputs one to two orders of magnitude larger, and
committing 100k-sink files would bloat the repository for data that is
a pure function of a seed.  This module (and the ``gated-cts gen``
CLI) regenerates them instead:

* **Placement** is a Gaussian mixture: modules belong to functional
  clusters (the :class:`~repro.bench.cpu_model.CpuModel`'s
  ``cluster_of``), each cluster gets a uniform center on the die, and
  every sink lands normally around its module's cluster center -- the
  placed-design locality assumption of
  :meth:`~repro.bench.sinks.SinkGenerator.generate_clustered`.
* **Activity** is drawn from the same :class:`CpuModel`, so the masks
  are *correlated with placement*: modules that switch together sit
  together, which is exactly the structure both the gating objective
  and the spatial partitioner exploit.
* **Scale** caps the module universe at :data:`MAX_MODULES` -- sinks
  map many-to-one onto modules above that -- keeping module masks
  within a few machine words and the instruction count within the
  int64 signature fast path (the r benchmarks' module == sink
  identity would put 100k-bit integers on the merge hot path).

The die side grows with ``sqrt(N)`` (constant sink density), matching
the r-family convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.activity.isa import InstructionSet
from repro.activity.probability import ActivityOracle
from repro.activity.stream import InstructionStream
from repro.activity.tables import ActivityTables
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.check.errors import InputError
from repro.core.controller import Die
from repro.cts.topology import Sink
from repro.geometry.point import Point

#: Module-universe cap: sinks map many-to-one above this count.
MAX_MODULES = 512

#: Instruction-set width; <= 63 keeps activation signatures in int64.
NUM_INSTRUCTIONS = 32

#: r-family die side at r5 density, lambda (see repro.bench.sinks).
_REFERENCE_SIDE = 30000.0
_REFERENCE_SINKS = 3101

#: Sink load capacitance range, pF (the r-family range).
_LOAD_CAP_RANGE = (0.02, 0.08)


@dataclass(frozen=True)
class SyntheticCase:
    """One generated workload: sinks + ISA + instruction stream."""

    name: str
    sinks: List[Sink]
    die: Die
    isa: InstructionSet
    stream: InstructionStream

    def oracle(self) -> ActivityOracle:
        return ActivityOracle(ActivityTables.from_stream(self.isa, self.stream))


def synthetic_die_side(num_sinks: int) -> float:
    """Die side keeping r5's sink density at any ``N``."""
    return _REFERENCE_SIDE * math.sqrt(num_sinks / _REFERENCE_SINKS)


def generate_synthetic_case(
    num_sinks: int,
    seed: int = 0,
    target_activity: float = 0.4,
    locality: float = 0.55,
    spread: float = 0.08,
    stream_length: int = 10000,
) -> SyntheticCase:
    """Draw a seeded clustered workload of ``num_sinks`` sinks.

    Deterministic for a fixed argument tuple: the CPU model, cluster
    centers, placements, load caps and instruction stream all derive
    from ``seed``.  ``spread`` is the placement blob sigma as a
    fraction of the die side.
    """
    if num_sinks < 2:
        raise InputError(
            "synthetic cases need at least two sinks, got %d" % num_sinks,
            field="num_sinks",
        )
    if spread <= 0:
        raise InputError("spread must be positive", field="spread")
    num_modules = min(num_sinks, MAX_MODULES)
    model = CpuModel(
        CpuModelConfig(
            num_modules=num_modules,
            num_instructions=NUM_INSTRUCTIONS,
            target_activity=target_activity,
            locality=locality,
            seed=seed,
        )
    )
    side = synthetic_die_side(num_sinks)
    rng = np.random.default_rng(seed)
    num_clusters = int(model.cluster_of.max()) + 1
    centers_x = rng.uniform(0.0, side, num_clusters)
    centers_y = rng.uniform(0.0, side, num_clusters)
    # Sink i clocks module i mod M: modules stay balanced and, through
    # cluster_of, every sink inherits its module's functional cluster.
    modules = np.arange(num_sinks) % num_modules
    clusters = model.cluster_of[modules]
    xs = np.clip(
        centers_x[clusters] + rng.normal(0.0, spread * side, num_sinks), 0.0, side
    )
    ys = np.clip(
        centers_y[clusters] + rng.normal(0.0, spread * side, num_sinks), 0.0, side
    )
    caps = rng.uniform(*_LOAD_CAP_RANGE, num_sinks)
    sinks = [
        Sink(
            name="s%d" % i,
            location=Point(float(xs[i]), float(ys[i])),
            load_cap=float(caps[i]),
            module=int(modules[i]),
        )
        for i in range(num_sinks)
    ]
    return SyntheticCase(
        name="synth%d_s%d" % (num_sinks, seed),
        sinks=sinks,
        die=Die(0.0, 0.0, side, side),
        isa=model.isa,
        stream=model.stream(stream_length),
    )
