"""Ready-to-route benchmark cases (sinks + workload + oracle).

``load_benchmark("r1")`` reproduces one row of the paper's Table 4:
the sink set, the CPU model sized to it, a sampled instruction stream
of ten thousand cycles, and the activity oracle built from it.

The ``scale`` argument (or the ``REPRO_BENCH_SCALE`` environment
variable, which the pytest benches honor) shrinks sink counts for
quick runs; relative comparisons between routers are preserved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.activity.probability import ActivityOracle
from repro.activity.stream import InstructionStream
from repro.activity.tables import ActivityTables
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.sinks import R_BENCHMARK_SIZES, generate_sinks
from repro.check.errors import InputError
from repro.core.controller import Die
from repro.cts.topology import Sink

#: Instruction-set sizes per benchmark (the paper's per-benchmark
#: instruction counts were lost to OCR; these scale modestly with
#: design size, as real ISAs do).
_INSTRUCTION_COUNTS: Dict[str, int] = {
    "r1": 16,
    "r2": 24,
    "r3": 32,
    "r4": 40,
    "r5": 48,
}

DEFAULT_STREAM_LENGTH = 10000


def benchmark_names() -> List[str]:
    """The benchmark ids, smallest first."""
    return sorted(R_BENCHMARK_SIZES, key=lambda n: R_BENCHMARK_SIZES[n])


def bench_scale(default: float = 0.25) -> float:
    """Benchmark scale from ``REPRO_BENCH_SCALE`` (default 0.25)."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise InputError("REPRO_BENCH_SCALE must lie in (0, 1]")
    return value


@dataclass(frozen=True)
class BenchmarkCase:
    """One paper benchmark, fully instantiated."""

    name: str
    sinks: Tuple[Sink, ...]
    die: Die
    cpu: CpuModel
    stream: InstructionStream
    tables: ActivityTables
    oracle: ActivityOracle

    @property
    def num_sinks(self) -> int:
        return len(self.sinks)

    def characteristics(self) -> Dict[str, float]:
        """The Table 4 row for this benchmark."""
        return {
            "sinks": self.num_sinks,
            "instructions": len(self.cpu.isa),
            "stream_cycles": len(self.stream),
            "ave_modules_per_instruction": self.cpu.isa.average_usage_fraction(
                weights=self.tables.ift.tolist()
            ),
            "average_module_activity": self.tables.average_module_activity(),
        }


def load_benchmark(
    name: str,
    scale: float = 1.0,
    stream_length: int = DEFAULT_STREAM_LENGTH,
    target_activity: float = 0.4,
    locality: float = 0.55,
    placement_spread: Optional[float] = 0.12,
    seed: Optional[int] = None,
) -> BenchmarkCase:
    """Instantiate one of r1-r5 with its synthetic workload.

    ``placement_spread`` controls how tightly each functional cluster's
    modules are placed together (``None`` = uniform placement, the
    placement-blind ablation case).
    """
    generator = generate_sinks(name, scale=scale, seed=seed)
    cpu = CpuModel(
        CpuModelConfig(
            num_modules=generator.num_sinks,
            num_instructions=_INSTRUCTION_COUNTS[name],
            target_activity=target_activity,
            locality=locality,
            seed=(seed if seed is not None else 1000 + int(name[1:])),
        )
    )
    if placement_spread is None:
        sinks = tuple(generator.generate())
    else:
        sinks = tuple(
            generator.generate_clustered(cpu.cluster_of, spread=placement_spread)
        )
    stream = cpu.stream(stream_length)
    tables = ActivityTables.from_stream(cpu.isa, stream)
    return BenchmarkCase(
        name=name,
        sinks=sinks,
        die=generator.die(),
        cpu=cpu,
        stream=stream,
        tables=tables,
        oracle=ActivityOracle(tables),
    )
