"""Synthetic r1-r5 sink benchmarks.

Tsay's r1-r5 (ICCAD'91) are the standard zero-skew routing benchmarks
the paper uses; they contain 267 / 598 / 862 / 1903 / 3101 sinks.  The
files themselves are not redistributable, so we draw seeded sink sets
with the same counts: uniform placement over a square die whose side
grows with sqrt(N) (constant sink density, as in real designs) and
load capacitances uniform over a small range.  All of the paper's
comparisons are relative between routers on identical sinks, so the
result *shapes* are insensitive to the exact coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.check.errors import InputError
from repro.check.errors import ContractError
from repro.cts.topology import Sink
from repro.core.controller import Die
from repro.geometry.point import Point

#: Sink counts of Tsay's r1-r5.
R_BENCHMARK_SIZES: Dict[str, int] = {
    "r1": 267,
    "r2": 598,
    "r3": 862,
    "r4": 1903,
    "r5": 3101,
}

#: Die side shared by all benchmarks, in lambda.  The r benchmarks are
#: treated as one die-size family of increasing sink density, so the
#: controller-star economics (edge length ~ D/4 regardless of N,
#: total star wire growing with the gate count) match the paper's
#: section-6 analysis.
_DIE_SIDE = 30000.0

#: Sink load capacitance range, pF.
_LOAD_CAP_RANGE = (0.02, 0.08)


@dataclass(frozen=True)
class SinkGenerator:
    """Seeded generator of benchmark sink sets."""

    num_sinks: int
    die_side: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        if self.num_sinks < 1:
            raise ContractError("need at least one sink")

    def resolved_die_side(self) -> float:
        if self.die_side is not None:
            return self.die_side
        return _DIE_SIDE

    def die(self) -> Die:
        side = self.resolved_die_side()
        return Die(0.0, 0.0, side, side)

    def generate(self) -> List[Sink]:
        """Draw uniformly placed sinks (deterministic for a config)."""
        rng = np.random.default_rng(self.seed)
        side = self.resolved_die_side()
        xs = rng.uniform(0.0, side, self.num_sinks)
        ys = rng.uniform(0.0, side, self.num_sinks)
        return self._build(xs, ys, rng)

    def generate_clustered(
        self, cluster_of: np.ndarray, spread: float = 0.12
    ) -> List[Sink]:
        """Draw sinks grouped into placement blobs per functional cluster.

        A placed design keeps the modules of one functional unit close
        together; ``spread`` is the blob's Gaussian sigma as a fraction
        of the die side (a large value degrades to uniform placement).
        Module ``i`` becomes sink ``i``, so the spatial clusters line
        up with the activity clusters of the CPU model.
        """
        cluster_of = np.asarray(cluster_of)
        if cluster_of.shape != (self.num_sinks,):
            raise ContractError("cluster assignment must cover every sink")
        if spread <= 0:
            raise ContractError("spread must be positive")
        rng = np.random.default_rng(self.seed)
        side = self.resolved_die_side()
        num_clusters = int(cluster_of.max()) + 1
        centers_x = rng.uniform(0.0, side, num_clusters)
        centers_y = rng.uniform(0.0, side, num_clusters)
        xs = centers_x[cluster_of] + rng.normal(0.0, spread * side, self.num_sinks)
        ys = centers_y[cluster_of] + rng.normal(0.0, spread * side, self.num_sinks)
        xs = np.clip(xs, 0.0, side)
        ys = np.clip(ys, 0.0, side)
        return self._build(xs, ys, rng)

    def _build(
        self, xs: np.ndarray, ys: np.ndarray, rng: np.random.Generator
    ) -> List[Sink]:
        caps = rng.uniform(*_LOAD_CAP_RANGE, self.num_sinks)
        return [
            Sink(
                name="s%d" % i,
                location=Point(float(xs[i]), float(ys[i])),
                load_cap=float(caps[i]),
                module=i,
            )
            for i in range(self.num_sinks)
        ]


def generate_sinks(
    name: str, scale: float = 1.0, seed: Optional[int] = None
) -> SinkGenerator:
    """A generator for one of the r1-r5 benchmarks.

    ``scale`` shrinks the sink count (and die, via the density rule)
    for quick runs: ``scale=0.25`` turns r5's 3101 sinks into 775.
    """
    if name not in R_BENCHMARK_SIZES:
        raise KeyError("unknown benchmark %r (expected r1..r5)" % name)
    if not 0.0 < scale <= 1.0:
        raise InputError("scale must lie in (0, 1]", field="scale")
    count = max(2, int(round(R_BENCHMARK_SIZES[name] * scale)))
    if seed is None:
        seed = 1000 + int(name[1:])
    return SinkGenerator(num_sinks=count, seed=seed)
