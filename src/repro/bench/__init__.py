"""Benchmark instances: sink sets and the probabilistic CPU workload.

The paper evaluates on Tsay's r1-r5 sink benchmarks with instruction
streams "generated according to a probabilistic model of the CPU".
The original sink files are not redistributable, so
:mod:`repro.bench.sinks` synthesizes seeded sink sets with the same
sink counts; :mod:`repro.bench.cpu_model` synthesizes the ISA + Markov
instruction stream with the paper's ~40% average module usage; and
:mod:`repro.bench.suite` bundles both into ready-to-route benchmark
cases.
"""

from repro.bench.sinks import R_BENCHMARK_SIZES, SinkGenerator, generate_sinks
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.suite import BenchmarkCase, load_benchmark, benchmark_names

__all__ = [
    "R_BENCHMARK_SIZES",
    "SinkGenerator",
    "generate_sinks",
    "CpuModel",
    "CpuModelConfig",
    "BenchmarkCase",
    "load_benchmark",
    "benchmark_names",
]
