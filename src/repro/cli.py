"""``gated-cts``: command-line driver for the gated clock router.

Subcommands
-----------
``route``
    Route one benchmark (or an external sink file) with one method and
    print the result summary; optionally dump the tree (JSON) and a
    layout picture (SVG).
``characteristics``
    Print the Table 4 row(s) for the synthetic benchmarks.
``compare``
    Buffered vs gated vs gate-reduced on one benchmark (a Fig. 3 bar
    group).
``sweep``
    Gate-reduction sweep on one benchmark (the Fig. 5 data).
``study``
    Run a committed campaign spec (benchmarks x configurations) and
    print/serialize the whole comparison.
``audit``
    Re-verify every network invariant (skew, caps, enables, embedding,
    controller star) of a routed tree -- either a JSON dump from
    ``route --out`` or a freshly routed benchmark.  Exit code 1 when
    findings are reported.
``lint``
    Run the project-invariant static analyzer (:mod:`repro.lint`,
    rules REP001..REP007) over ``src/repro``.  Exit code 1 when
    findings are reported; ``--format json`` for machine-readable
    output, ``--update-baseline`` to grandfather current findings.
``obs``
    The run ledger and regression sentinel: ``obs list`` / ``obs
    trend`` browse recorded runs, ``obs diff A B`` compares two
    records with noise-aware thresholds, ``obs check --baseline REF``
    gates the latest (or given) run against a committed baseline, and
    ``obs selftest`` proves the sentinel catches planted regressions.
    Exit code 1 when a regression is detected.

Examples::

    gated-cts route --benchmark r1 --scale 0.4 --method reduced --svg out.svg
    gated-cts route --sinks my.sinks --isa my_isa.json --instr-trace my.trace
    gated-cts route --benchmark r1 --ledger --profile-memory
    gated-cts compare --benchmark r2 --scale 0.4
    gated-cts sweep --benchmark r1 --scale 0.4 --points 6
    gated-cts study --spec studies/paper_fig3.json --out results.json
    gated-cts audit --tree out.json
    gated-cts audit --benchmark r1 --scale 0.2
    gated-cts lint --format json
    gated-cts obs diff latest~1 latest
    gated-cts obs check --baseline baselines/obs_r1_route.json \\
        --sections pins,counters

Exit codes: 0 success, 1 findings (``audit``/``lint``) or detected
regressions (``obs diff``/``obs check``), 2 invalid input (typed
``ReproError`` or ``OSError`` -- printed as one-line diagnostics, with
the full traceback available under ``--log-level debug``).

Observability (all routing subcommands)
---------------------------------------
``--trace OUT.json`` records a hierarchical span trace of the run and
writes it as Chrome ``trace_event`` JSON (load in ``chrome://tracing``
or Perfetto); a per-phase wall-clock table is printed as well.
``--trace-jsonl OUT.jsonl`` writes the raw span log as JSON lines,
``--metrics-out OUT.json`` dumps the metrics registry (merger plan
counters, oracle cache hits, star-edge histograms, ...), and
``--log-level debug`` surfaces the library's guarded debug logging.
``--profile-memory`` attaches the tracemalloc sampler so every span
(and the printed phase table) carries peak-heap / allocated-block
columns.  ``--ledger [DIR]`` persists a content-addressed RunRecord
(config digest, environment fingerprint, phase tree, metrics, result
pins) into the run ledger (``.repro-runs/`` by default) for ``obs
diff/trend/check``.  ``--progress-jsonl OUT.jsonl`` streams live
phase-start/finish/percent events as JSON lines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import (
    ComparisonRow,
    format_characteristics,
    format_comparison,
    format_phase_times,
    format_table,
)
from repro.bench.suite import benchmark_names, load_benchmark
from repro.check.errors import ReproError
from repro.core.controller import ControllerLayout
from repro.core.flow import route_buffered, route_gated, route_sharded
from repro.core.gate_reduction import GateReductionPolicy
from repro.io.svg import save_svg
from repro.io.treejson import save_tree
from repro.obs import (
    DEFAULT_LEDGER_DIR,
    DME_DETAIL_SPANS,
    LOG_LEVELS,
    MetricsRegistry,
    configure_logging,
    disable_tracing,
    enable_tracing,
    get_registry,
    phase_profile,
    set_registry,
    write_chrome_trace,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.tech.presets import date98_technology


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """Observability flags, shared by every subcommand."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write a Chrome trace_event span trace of the run",
    )
    group.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="OUT.jsonl",
        help="write the raw span log as JSON lines",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="OUT.json",
        help="write the metrics registry snapshot as JSON",
    )
    group.add_argument(
        "--log-level",
        default=None,
        choices=list(LOG_LEVELS),
        help="configure the repro logger (handlers installed once)",
    )
    group.add_argument(
        "--profile-memory",
        action="store_true",
        help="attach the tracemalloc sampler: every span (and the "
        "phase table) gains peak-heap and allocated-block columns",
    )
    group.add_argument(
        "--ledger",
        nargs="?",
        const=DEFAULT_LEDGER_DIR,
        default=None,
        metavar="DIR",
        help="persist a content-addressed RunRecord of this invocation "
        "into the run ledger (default directory %s)" % DEFAULT_LEDGER_DIR,
    )
    group.add_argument(
        "--progress-jsonl",
        default=None,
        metavar="OUT.jsonl",
        help="stream live phase/percent progress events as JSON lines",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmark", default="r1", choices=benchmark_names(), help="benchmark id"
    )
    parser.add_argument(
        "--scale", type=float, default=0.4, help="sink-count scale in (0, 1]"
    )
    parser.add_argument(
        "--activity", type=float, default=0.4, help="target average module activity"
    )
    parser.add_argument(
        "--candidate-limit",
        type=int,
        default=16,
        help="k-nearest greedy candidate restriction (0 = exact greedy)",
    )
    parser.add_argument(
        "--skew-bound",
        type=float,
        default=0.0,
        help="skew budget in delay units (0 = exact zero skew)",
    )
    parser.add_argument(
        "--gate-sizing",
        action="store_true",
        help="resize gates instead of snaking wire on unbalanced merges",
    )
    parser.add_argument(
        "--no-vectorize",
        action="store_true",
        help="disable the NumPy kernel screens of the greedy merger "
        "(decision-neutral; results are byte-identical either way)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="re-verify every network invariant after routing "
        "(skew, caps, enables, embedding, controller star); a typed "
        "error is raised on the first violation",
    )
    parser.add_argument("--seed", type=int, default=None, help="benchmark seed")


def _limit(args: argparse.Namespace) -> Optional[int]:
    return None if args.candidate_limit == 0 else args.candidate_limit


def _load_external(args: argparse.Namespace):
    """Sinks/workload from user files instead of a synthetic benchmark."""
    from repro.core.controller import Die
    from repro.io.sinkfile import read_sinks
    from repro.io.tracefile import load_workload

    from repro.check.validate import validate_sinks

    if not (args.isa and args.instr_trace):
        raise SystemExit("--sinks requires --isa and --instr-trace")
    sinks = tuple(read_sinks(args.sinks))
    oracle = load_workload(args.isa, args.instr_trace)
    # Cross-file check: every sink's module id must exist in the ISA's
    # module universe, or the activity lookup would silently misbehave.
    validate_sinks(sinks, num_modules=oracle.isa.num_modules, source=args.sinks)
    die = Die.bounding([s.location for s in sinks])

    class _ExternalCase:
        pass

    case = _ExternalCase()
    case.sinks = sinks
    case.oracle = oracle
    case.die = die
    return case


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.core.gate_sizing import GateSizingPolicy

    tech = date98_technology()
    if args.sinks:
        case = _load_external(args)
    else:
        case = load_benchmark(
            args.benchmark,
            scale=args.scale,
            target_activity=args.activity,
            seed=args.seed,
        )
    refine = None
    if args.refine:
        from repro.cts.refine import RefineConfig

        # One seed drives the whole pipeline: the same --seed that
        # parameterized the benchmark (or `gen`) also seeds the
        # annealer, so `gen --seed S` piped into `route --refine
        # --seed S` is reproducible end to end.
        refine = RefineConfig(
            moves=args.moves,
            seed=args.seed if args.seed is not None else 0,
        )
    if args.method == "buffered":
        from repro.check.errors import InputError

        if args.refine:
            raise InputError(
                "--refine applies to the gated/reduced methods only",
                field="refine",
            )
        if args.shards is not None:
            raise InputError(
                "--shards applies to the gated/reduced methods only",
                field="shards",
            )
        result = route_buffered(
            case.sinks,
            tech,
            candidate_limit=_limit(args),
            skew_bound=args.skew_bound,
            vectorize=not args.no_vectorize,
            audit=args.audit,
        )
    else:
        reduction = (
            GateReductionPolicy.from_knob(args.knob, tech)
            if args.method == "reduced"
            else None
        )
        if args.shards is not None:
            result = route_sharded(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                num_shards=args.shards,
                num_workers=args.workers,
                reduction=reduction,
                num_controllers=args.controllers,
                candidate_limit=_limit(args),
                skew_bound=args.skew_bound,
                vectorize=not args.no_vectorize,
                audit=args.audit,
                refine=refine,
            )
        else:
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                reduction=reduction,
                num_controllers=args.controllers,
                candidate_limit=_limit(args),
                gate_sizing=GateSizingPolicy() if args.gate_sizing else None,
                skew_bound=args.skew_bound,
                vectorize=not args.no_vectorize,
                audit=args.audit,
                refine=refine,
            )
    if args.audit:
        print("audit: clean")
    # Exposed so a --ledger RunRecord can pin the routed result.
    args.run_pins = result.pins()
    print(result.summary())
    if args.out:
        save_tree(result.tree, args.out)
        print("tree written to %s" % args.out)
    if args.svg:
        layout = (
            ControllerLayout.centralized(case.die)
            if args.controllers == 1
            else ControllerLayout.distributed(case.die, args.controllers)
        )
        save_svg(result.tree, args.svg, routing=result.routing, layout=layout)
        print("layout written to %s" % args.svg)
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    """Generate a seeded synthetic workload as routable input files.

    Emits ``NAME.sinks`` / ``NAME.isa.json`` / ``NAME.trace`` (with
    ``NAME = synth<N>_s<seed>``) into ``--out-dir``; feed them back
    through ``route --sinks NAME.sinks --isa NAME.isa.json
    --instr-trace NAME.trace``.  Committing the seed reproduces the
    exact files, so sharding-scale inputs never enter the repository.
    """
    import os

    from repro.bench.synthetic import generate_synthetic_case
    from repro.io.sinkfile import write_sinks
    from repro.io.tracefile import save_workload

    case = generate_synthetic_case(
        args.sinks,
        seed=args.seed,
        target_activity=args.activity,
        spread=args.spread,
        stream_length=args.stream_length,
    )
    os.makedirs(args.out_dir, exist_ok=True)
    base = os.path.join(args.out_dir, case.name)
    sinks_path = base + ".sinks"
    isa_path = base + ".isa.json"
    trace_path = base + ".trace"
    write_sinks(case.sinks, sinks_path)
    save_workload(case.isa, case.stream, isa_path, trace_path)
    args.run_pins = {
        "num_sinks": len(case.sinks),
        "seed": args.seed,
        "die_side": case.die.width,
    }
    print(
        "generated %d sinks (seed %d): %s %s %s"
        % (len(case.sinks), args.seed, sinks_path, isa_path, trace_path)
    )
    return 0


def _cmd_characteristics(args: argparse.Namespace) -> int:
    rows = {}
    names = [args.benchmark] if args.benchmark else benchmark_names()
    for name in names:
        case = load_benchmark(
            name, scale=args.scale, target_activity=args.activity, seed=args.seed
        )
        rows[name] = case.characteristics()
    print(format_characteristics(rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    tech = date98_technology()
    case = load_benchmark(
        args.benchmark, scale=args.scale, target_activity=args.activity, seed=args.seed
    )
    limit = _limit(args)
    vectorize = not args.no_vectorize
    results = [
        route_buffered(case.sinks, tech, candidate_limit=limit, vectorize=vectorize),
        route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=limit,
            vectorize=vectorize,
        ),
        route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=limit,
            reduction=GateReductionPolicy.from_knob(args.knob, tech),
            vectorize=vectorize,
        ),
    ]
    rows = [ComparisonRow.from_result(args.benchmark, r) for r in results]
    # One pin set per method, namespaced, so a --ledger record of a
    # compare run is diffable the same way a route record is.
    args.run_pins = {
        "%s.%s" % (result.method, key): value
        for result in results
        for key, value in result.pins().items()
    }
    print(format_comparison(rows, title="Fig. 3 comparison (%s)" % args.benchmark))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    tech = date98_technology()
    case = load_benchmark(
        args.benchmark, scale=args.scale, target_activity=args.activity, seed=args.seed
    )
    limit = _limit(args)
    rows = []
    for i in range(args.points):
        knob = i / (args.points - 1) if args.points > 1 else 0.0
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=limit,
            reduction=(
                GateReductionPolicy.from_knob(knob, tech) if knob > 0 else None
            ),
            vectorize=not args.no_vectorize,
        )
        rows.append(
            [
                knob,
                result.gate_reduction,
                result.switched_cap.total,
                result.switched_cap.clock_tree,
                result.switched_cap.controller_tree,
                result.area.total / 1e6,
            ]
        )
    print(
        format_table(
            ["knob", "reduction", "W total", "W clock", "W ctrl", "area (1e6)"],
            rows,
            title="Fig. 5 sweep (%s)" % args.benchmark,
        )
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Audit a routed tree: from a JSON dump or routed fresh.

    Exit code 0 when every invariant holds, 1 when the audit ran and
    reported findings, 2 (via ``main``) when the inputs themselves are
    invalid.
    """
    from repro.check.auditor import audit_network
    from repro.check.validate import validate_technology

    if args.tree:
        from repro.io.treejson import load_tree

        tree = load_tree(args.tree)
        validate_technology(tree.tech, strict=True)
        routing = None
        what = args.tree
    else:
        tech = date98_technology()
        case = load_benchmark(
            args.benchmark,
            scale=args.scale,
            target_activity=args.activity,
            seed=args.seed,
        )
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=_limit(args),
            skew_bound=args.skew_bound,
            vectorize=not args.no_vectorize,
        )
        tree = result.tree
        routing = result.routing
        what = "benchmark %s" % args.benchmark
    report = audit_network(tree, routing=routing, skew_bound=args.skew_bound)
    print("auditing %s" % what)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static-analysis gate: 0 clean, 1 findings, 2 error.

    See :mod:`repro.lint` for the rule catalog (REP001..REP007),
    suppression comments and the baseline workflow.
    """
    from repro.lint.cli import run_lint_cli

    return run_lint_cli(args)


def _thresholds_from(args: argparse.Namespace):
    """CLI threshold knobs -> the sentinel's explicit noise model."""
    from repro.obs import Thresholds

    return Thresholds(
        time_rel=args.time_rel,
        time_floor_ns=int(args.time_floor_ms * 1e6),
        mem_rel=args.mem_rel,
        mem_floor_bytes=int(args.mem_floor_mb * 1024 * 1024),
        counter_rel=args.counter_rel,
    )


def _sections_from(args: argparse.Namespace):
    from repro.obs.sentinel import ALL_SECTIONS

    if not args.sections:
        return ALL_SECTIONS
    return tuple(s.strip() for s in args.sections.split(",") if s.strip())


def _cmd_obs_list(args: argparse.Namespace) -> int:
    """All recorded runs in the ledger, oldest first."""
    from repro.obs import RunLedger, format_trend

    records = RunLedger(args.dir).records()
    if not records:
        print("run ledger %s is empty" % args.dir)
        return 0
    print(format_trend(records))
    return 0


def _cmd_obs_trend(args: argparse.Namespace) -> int:
    """The last N records as a time series with selected pins."""
    from repro.obs import RunLedger, format_trend

    records = RunLedger(args.dir).records()
    if not records:
        print("run ledger %s is empty" % args.dir)
        return 0
    pins = tuple(p for p in args.pins.split(",") if p) if args.pins else ()
    print(format_trend(records[-args.last :], pins=pins))
    return 0


def _run_diff(args, baseline_ref: str, current_ref: str) -> int:
    """Shared engine of ``obs diff`` and ``obs check``: 0/1/2."""
    from repro.obs import RunLedger, compare_runs

    ledger = RunLedger(args.dir)
    baseline = ledger.load(baseline_ref)
    current = ledger.load(current_ref)
    diff = compare_runs(
        baseline,
        current,
        thresholds=_thresholds_from(args),
        sections=_sections_from(args),
    )
    print(diff.report())
    return diff.exit_code


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    return _run_diff(args, args.baseline_ref, args.current_ref)


def _cmd_obs_check(args: argparse.Namespace) -> int:
    return _run_diff(args, args.baseline, args.current)


def _cmd_obs_selftest(args: argparse.Namespace) -> int:
    """Prove the sentinel catches planted regressions: 0 ok, 1 broken."""
    from repro.obs import self_test

    ok, report = self_test(_thresholds_from(args))
    print(report)
    return 0 if ok else 1


def _add_obs_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dir",
        default=DEFAULT_LEDGER_DIR,
        help="run-ledger directory (default %s)" % DEFAULT_LEDGER_DIR,
    )


def _add_thresholds(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("noise thresholds")
    group.add_argument(
        "--time-rel",
        type=float,
        default=1.5,
        help="phase-time ratio above which slower is a regression",
    )
    group.add_argument(
        "--time-floor-ms",
        type=float,
        default=50.0,
        help="phases faster than this in both runs are never flagged",
    )
    group.add_argument(
        "--mem-rel",
        type=float,
        default=1.5,
        help="peak-heap ratio above which bigger is a regression",
    )
    group.add_argument(
        "--mem-floor-mb",
        type=float,
        default=1.0,
        help="peaks below this in both runs are never flagged",
    )
    group.add_argument(
        "--counter-rel",
        type=float,
        default=0.25,
        help="allowed two-sided relative drift of work counters",
    )
    group.add_argument(
        "--sections",
        default=None,
        help="comma list from pins,time,memory,counters (default all); "
        "cross-machine CI checks typically use pins,counters",
    )


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.analysis.study import StudySpec, run_study

    if args.template:
        StudySpec().save(args.template)
        print("template written to %s" % args.template)
        return 0
    spec = StudySpec.load(args.spec) if args.spec else StudySpec()
    result = run_study(spec)
    print(result.report())
    if args.out:
        result.save(args.out)
        print("results written to %s" % args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gated-cts",
        description="Gated zero-skew clock routing (Oh & Pedram, DATE 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="route one benchmark")
    _add_common(p_route)
    _add_obs(p_route)
    p_route.add_argument(
        "--sinks", default=None, help="external sink file (see repro.io.sinkfile)"
    )
    p_route.add_argument(
        "--isa", default=None, help="external ISA JSON (see repro.io.tracefile)"
    )
    p_route.add_argument(
        "--instr-trace",
        default=None,
        help="external instruction trace file (was --trace; that flag now "
        "writes a span trace)",
    )
    p_route.add_argument(
        "--method",
        default="reduced",
        choices=["buffered", "gated", "reduced"],
        help="routing method",
    )
    p_route.add_argument("--knob", type=float, default=0.5, help="reduction knob")
    p_route.add_argument(
        "--controllers", type=int, default=1, help="number of controllers (power of 2)"
    )
    p_route.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="partition into K spatial shards, route each shard's gated "
        "subtree independently and stitch with the exact zero-skew "
        "top-tree merge (gated/reduced methods only; for gated, K=1 "
        "reproduces the unsharded tree byte-for-byte; for reduced, the "
        "reduction is applied post-stitch in demote mode rather than "
        "inside the merge objective)",
    )
    p_route.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="W",
        help="worker processes for --shards (1 = route shards inline)",
    )
    p_route.add_argument(
        "--refine",
        action="store_true",
        help="anneal the finished gated/reduced tree with the "
        "refinement post-pass (NNI subtree swaps, gate insertion/"
        "removal, controller reassignment); never worse than the "
        "greedy tree, byte-deterministic for a fixed --seed",
    )
    p_route.add_argument(
        "--moves",
        type=int,
        default=200,
        metavar="N",
        help="move budget for --refine (default 200)",
    )
    p_route.add_argument("--out", default=None, help="write the tree as JSON")
    p_route.add_argument("--svg", default=None, help="write a layout SVG")
    p_route.set_defaults(func=_cmd_route)

    p_gen = sub.add_parser(
        "gen",
        help="generate a seeded synthetic workload (clustered sinks + "
        "ISA + instruction trace) for sharding-scale runs",
    )
    _add_obs(p_gen)
    p_gen.add_argument(
        "--sinks", type=int, required=True, metavar="N", help="number of sinks"
    )
    p_gen.add_argument("--seed", type=int, default=0, help="generator seed")
    p_gen.add_argument(
        "--activity", type=float, default=0.4, help="target average module activity"
    )
    p_gen.add_argument(
        "--spread",
        type=float,
        default=0.08,
        help="placement-blob sigma as a fraction of the die side",
    )
    p_gen.add_argument(
        "--stream-length", type=int, default=10000, help="instruction-trace length"
    )
    p_gen.add_argument(
        "--out-dir",
        default=".",
        help="directory receiving NAME.sinks / NAME.isa.json / NAME.trace",
    )
    p_gen.set_defaults(func=_cmd_gen)

    p_chars = sub.add_parser("characteristics", help="Table 4 rows")
    _add_common(p_chars)
    _add_obs(p_chars)
    p_chars.set_defaults(func=_cmd_characteristics, benchmark=None)

    p_cmp = sub.add_parser("compare", help="buffered vs gated vs reduced")
    _add_common(p_cmp)
    _add_obs(p_cmp)
    p_cmp.add_argument("--knob", type=float, default=0.5, help="reduction knob")
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser("sweep", help="gate-reduction sweep")
    _add_common(p_sweep)
    _add_obs(p_sweep)
    p_sweep.add_argument("--points", type=int, default=5, help="sweep points")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_audit = sub.add_parser(
        "audit",
        help="re-verify every invariant of a routed tree (JSON dump or "
        "freshly routed benchmark)",
    )
    _add_common(p_audit)
    _add_obs(p_audit)
    p_audit.add_argument(
        "--tree",
        default=None,
        metavar="TREE.json",
        help="audit this tree dump (from 'route --out') instead of "
        "routing a benchmark",
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_lint = sub.add_parser(
        "lint",
        help="run the project-invariant static analyzer (repro.lint) "
        "over src/repro; exit 1 on findings",
    )
    _add_obs(p_lint)
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_obs = sub.add_parser(
        "obs",
        help="run ledger + regression sentinel (list/trend/diff/check/"
        "selftest); exit 1 on detected regressions",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_list = obs_sub.add_parser("list", help="all recorded runs, oldest first")
    _add_obs_store(p_list)
    p_list.set_defaults(func=_cmd_obs_list)

    p_trend = obs_sub.add_parser(
        "trend", help="last N records as a time series with selected pins"
    )
    _add_obs_store(p_trend)
    p_trend.add_argument("--last", type=int, default=10, help="records to show")
    p_trend.add_argument(
        "--pins",
        default="wirelength,switched_cap_total",
        help="comma list of pin columns to include ('' for none)",
    )
    p_trend.set_defaults(func=_cmd_obs_trend)

    p_diff = obs_sub.add_parser(
        "diff",
        help="compare two run records (refs: path, id prefix, latest~N)",
    )
    _add_obs_store(p_diff)
    _add_thresholds(p_diff)
    p_diff.add_argument("baseline_ref", help="baseline run reference")
    p_diff.add_argument("current_ref", help="current run reference")
    p_diff.set_defaults(func=_cmd_obs_diff)

    p_check = obs_sub.add_parser(
        "check",
        help="gate a run against a baseline record (CI entry point)",
    )
    _add_obs_store(p_check)
    _add_thresholds(p_check)
    p_check.add_argument(
        "--baseline",
        required=True,
        help="baseline reference (typically a committed RunRecord path)",
    )
    p_check.add_argument(
        "current",
        nargs="?",
        default="latest",
        help="current run reference (default: latest ledger record)",
    )
    p_check.set_defaults(func=_cmd_obs_check)

    p_selftest = obs_sub.add_parser(
        "selftest",
        help="plant synthetic time/memory/counter/pin regressions and "
        "verify the sentinel catches all of them",
    )
    _add_thresholds(p_selftest)
    p_selftest.set_defaults(func=_cmd_obs_selftest)

    p_study = sub.add_parser("study", help="run a spec-driven campaign")
    _add_obs(p_study)
    p_study.add_argument("--spec", default=None, help="study spec JSON")
    p_study.add_argument(
        "--template",
        default=None,
        help="write a default spec to this path and exit",
    )
    p_study.add_argument("--out", default=None, help="write results as JSON")
    p_study.set_defaults(func=_cmd_study)

    return parser


def _ledger_config(args: argparse.Namespace) -> dict:
    """The argparse namespace minus plumbing: what shaped the run."""
    skip = {
        "func",
        "run_pins",
        "trace",
        "trace_jsonl",
        "metrics_out",
        "log_level",
        "ledger",
        "progress_jsonl",
        "out",
        "svg",
    }
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in skip and not callable(value)
    }


def _record_run(args: argparse.Namespace, tracer, registry) -> None:
    """Persist this invocation's RunRecord into the ledger."""
    from repro.obs import RunLedger, record_from_trace

    label = ":".join(
        str(part)
        for part in (
            args.command,
            getattr(args, "benchmark", None),
            getattr(args, "method", None),
        )
        if part is not None
    )
    record = record_from_trace(
        kind="cli",
        label=label,
        config=_ledger_config(args),
        tracer=tracer,
        pins=getattr(args, "run_pins", {}),
        registry=registry,
    )
    path = RunLedger(args.ledger).save(record)
    print("run record %s written to %s" % (record.run_id[:12], path))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Exit codes: 0 success, 1 findings (``audit``/``lint``) or detected
    regressions (``obs diff``/``obs check``), 2 invalid input -- every
    typed :class:`ReproError` (and ``OSError`` on file arguments) is
    rendered as a one-line diagnostic on stderr.  ``--log-level
    debug`` re-raises so the full traceback is visible.
    """
    args = build_parser().parse_args(argv)
    if getattr(args, "log_level", None) is not None:
        configure_logging(args.log_level)
    profile_memory = getattr(args, "profile_memory", False)
    ledger_dir = getattr(args, "ledger", None)
    progress_path = getattr(args, "progress_jsonl", None)
    tracing = (
        getattr(args, "trace", None) is not None
        or getattr(args, "trace_jsonl", None) is not None
        or profile_memory
        or ledger_dir is not None
        or progress_path is not None
    )
    tracer = enable_tracing(profile_memory=profile_memory) if tracing else None
    registry = None
    previous_registry = None
    if tracer is not None:
        # A fresh registry per traced invocation keeps RunRecords
        # comparable: counters cover exactly this run, not whatever
        # accumulated in the process before it (in-process callers,
        # tests, future job-server workers).
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
    progress_stream = None
    if progress_path is not None:
        from repro.obs import ProgressEmitter

        progress_stream = open(progress_path, "w", encoding="utf-8")
        tracer.set_listener(ProgressEmitter(stream=progress_stream))
    try:
        code = args.func(args)
    except (ReproError, OSError) as exc:
        if getattr(args, "log_level", None) == "debug":
            raise
        kind = type(exc).__name__
        message = exc.diagnostic() if isinstance(exc, ReproError) else str(exc)
        print("gated-cts: %s: %s" % (kind, message), file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            disable_tracing()  # also stops an attached memory sampler
            if previous_registry is not None:
                set_registry(previous_registry)
        if progress_stream is not None:
            progress_stream.close()
    if tracer is not None:
        if getattr(args, "trace", None):
            write_chrome_trace(tracer.spans, args.trace)
            print("span trace written to %s" % args.trace)
        if getattr(args, "trace_jsonl", None):
            write_spans_jsonl(tracer.spans, args.trace_jsonl)
            print("span log written to %s" % args.trace_jsonl)
        if progress_path is not None:
            print("progress events written to %s" % progress_path)
        if ledger_dir is not None:
            # Assembled after the root span closed and tracing was
            # torn down, so the ledger's own work never pollutes the
            # timings (or memory peaks) it records.
            _record_run(args, tracer, registry)
        print(
            format_phase_times(
                phase_profile(tracer.spans, detail_names=DME_DETAIL_SPANS)
            )
        )
    if getattr(args, "metrics_out", None):
        write_metrics_json(registry or get_registry(), args.metrics_out)
        print("metrics written to %s" % args.metrics_out)
    return code


if __name__ == "__main__":
    sys.exit(main())
