"""Simulated-annealing refinement of a finished gated clock tree.

The paper's section-4.2 router is greedy and one-shot: every merge and
every gating decision is final the moment it is taken.  This module
adds a post-pass that perturbs the finished tree with three move
classes and keeps what lowers the total switched capacitance
``W(T) + W(S)`` (Eq. 3 evaluated over the whole network):

* **NNI subtree swap** -- a nearest-neighbour-interchange on the
  topology: swap one child of an internal node with its sibling's
  subtree.  Only the module set of the rotated node changes; every
  ancestor keeps its sink set, so the zero-skew repair is confined to
  the root path.
* **Gate insertion / removal** -- toggle the masking gate on one edge.
  Electrically the edge's cell changes (input-pin decoupling, intrinsic
  delay); probabilistically the edge either starts masking its region
  with its own ``P(EN)`` or falls back to inheriting the net above.
* **Controller reassignment** -- move one gate's enable route to a
  different controller.  Pure star-cost arithmetic; mainly repairs
  partition-ownership drift after reembedding moves gate pins.

Scoring is two-tier, cheapest first (the escalation pattern of the
routing surveys): a *screen* recomputes Eq. 3 terms only over the
affected node set -- the root path whose zero-skew splits the move
invalidates (repaired in place with :func:`zero_skew_split` /
:func:`merge_regions`, exactly the bottom-up construction), plus the
unmasked regions whose effective enable probability the move flips.
Only *accepted* moves pay for the full fixed-topology
:func:`~repro.cts.reembed.reembed` pass and an exact whole-network
re-measurement.  A keep-best snapshot (``ClockTree.clone``) makes the
pass monotone from the caller's perspective: the returned tree is the
best exactly-measured state ever visited, never worse than the input.

Determinism: all randomness flows from one ``numpy`` generator seeded
by :attr:`RefineConfig.seed`; the cooling schedule is geometric in the
move index (never wall clock), so a fixed ``(tree, config)`` pair
refines byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.activity.probability import ActivityOracle
from repro.check.errors import InputError, ReproError
from repro.cts.merge import Tap, merge_regions, zero_skew_split
from repro.cts.reembed import reembed
from repro.cts.topology import ClockNode, ClockTree
from repro.obs import get_registry, get_tracer
from repro.tech.parameters import Technology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import ControllerLayout

# ``repro.core`` builds on this package, so the Eq. 3 accounting and
# controller geometry helpers must be imported lazily: a module-level
# import would close the cts -> core -> cts cycle during package init.


def _core():
    from repro.core.controller import gate_location
    from repro.core.switched_cap import _attached_cap, clock_tree_switched_cap

    return gate_location, _attached_cap, clock_tree_switched_cap

__all__ = ["RefineConfig", "RefineResult", "AnnealingRefiner", "refine_tree"]

#: Node fields a move (or its root-path repair) may touch; the
#: snapshot/restore cycle copies exactly these.
_SNAPSHOT_FIELDS = (
    "children",
    "parent",
    "edge_length",
    "edge_cell",
    "edge_maskable",
    "snaked",
    "merging_segment",
    "module_mask",
    "enable_probability",
    "enable_transition_probability",
    "subtree_cap",
    "sink_delay",
    "sink_delay_min",
    "location",
)

#: Sentinel distinguishing "gate had no explicit assignment" from
#: "assigned to controller 0" in the per-move undo records.
_NO_ASSIGNMENT = -1


@dataclass(frozen=True)
class RefineConfig:
    """Annealing knobs; the defaults match the CLI's ``--refine``."""

    moves: int = 200
    """Move proposals to evaluate (the fixed budget)."""

    seed: int = 0
    """Seed of the ``numpy`` generator driving every random choice."""

    initial_temperature: float = 0.02
    """Starting temperature as a fraction of the input tree's cost."""

    cooling_ratio: float = 1e-3
    """Final over initial temperature of the geometric schedule."""

    weights: Tuple[float, float, float] = (0.45, 0.35, 0.20)
    """Proposal mix (NNI swap, gate toggle, controller reassignment)."""

    def __post_init__(self):
        if self.moves < 0:
            raise InputError("move budget must be non-negative", field="moves")
        if not math.isfinite(self.initial_temperature) or self.initial_temperature < 0:
            raise InputError(
                "initial_temperature must be finite and non-negative",
                field="initial_temperature",
            )
        if not 0.0 < self.cooling_ratio <= 1.0:
            raise InputError(
                "cooling_ratio must be in (0, 1]", field="cooling_ratio"
            )
        if len(self.weights) != 3 or any(w < 0 for w in self.weights):
            raise InputError(
                "weights must be three non-negative numbers", field="weights"
            )
        if sum(self.weights) <= 0:
            raise InputError(
                "at least one move class needs positive weight", field="weights"
            )


@dataclass
class RefineResult:
    """What the annealer did and what it bought."""

    moves_proposed: int = 0
    moves_accepted: int = 0
    moves_rejected: int = 0
    moves_infeasible: int = 0
    nni_accepted: int = 0
    gate_accepted: int = 0
    reassign_accepted: int = 0
    reembeds: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    best_cost: float = 0.0

    @property
    def improvement(self) -> float:
        """Switched capacitance shaved off the greedy tree (>= 0)."""
        return self.initial_cost - self.best_cost

    @property
    def improvement_fraction(self) -> float:
        if self.initial_cost <= 0:
            return 0.0
        return self.improvement / self.initial_cost

    def summary(self) -> str:
        return (
            "refine: %d/%d moves accepted (%d nni, %d gate, %d reassign), "
            "W %.6g -> %.6g (-%.3g%%)"
            % (
                self.moves_accepted,
                self.moves_proposed,
                self.nni_accepted,
                self.gate_accepted,
                self.reassign_accepted,
                self.initial_cost,
                self.best_cost,
                100.0 * self.improvement_fraction,
            )
        )


class AnnealingRefiner:
    """One refinement run over one tree; see the module docstring."""

    def __init__(
        self,
        tree: ClockTree,
        tech: Technology,
        oracle: ActivityOracle,
        layout: ControllerLayout,
        config: RefineConfig,
    ):
        self._original = tree
        self.tree = tree.clone()
        self.tech = tech
        self.oracle = oracle
        self.layout = layout
        self.config = config
        (
            self._gate_location,
            self._attached_cap,
            self._clock_tree_cap,
        ) = _core()
        self.rng = np.random.default_rng(config.seed)
        self.result = RefineResult()
        #: Explicit controller assignment for gates the pass touched;
        #: gates not listed route to their partition owner.
        self.assignment: Dict[int, int] = {}
        self._best_tree: Optional[ClockTree] = None
        self._best_assignment: Optional[Dict[int, int]] = None
        # Move-target universes.  NNI and gate toggles never add or
        # remove nodes, so both id lists are stable across the run.
        root = tree.root_id
        self._internal_ids = [
            n.id for n in tree.internal_nodes() if n.id != root and n.parent is not None
        ]
        self._edge_ids = [n.id for n in tree.nodes() if n.id != root and n.parent is not None]

    # ------------------------------------------------------------------
    # exact cost accounting
    # ------------------------------------------------------------------
    def _star_cost(self) -> float:
        """Exact ``W(S)`` under the current placements and assignment."""
        return sum(self._star_term(node) for node in self.tree.gates())

    def _star_term(self, node: ClockNode) -> float:
        c = self.tech.unit_wire_capacitance
        gate_in = self.tech.masking_gate.input_cap
        pin = self._gate_location(self.tree, node)
        index = self.assignment.get(node.id)
        if index is None:
            index, ctrl = self.layout.controller_for(pin)
        else:
            ctrl = self.layout.points[index]
        length = pin.manhattan_to(ctrl)
        return (c * length + gate_in) * node.enable_transition_probability

    def _exact_cost(self) -> float:
        return self._clock_tree_cap(self.tree, self.tech) + self._star_cost()

    # ------------------------------------------------------------------
    # incremental screen: affected sets and local Eq. 3 terms
    # ------------------------------------------------------------------
    def _effective_probability(self, node: ClockNode) -> float:
        """Eq. 3's effective enable: nearest maskable gate at/above."""
        while node.parent is not None:
            if node.has_gate:
                return node.enable_probability
            node = self.tree.node(node.parent)
        return 1.0

    def _region(self, nid: int) -> List[int]:
        """``nid`` plus descendants inheriting the net above it.

        The walk stops below gated edges: their subtrees see their own
        enable, so a probability change above cannot reach them.
        """
        out = [nid]
        stack = list(self.tree.node(nid).children)
        while stack:
            cid = stack.pop()
            child = self.tree.node(cid)
            out.append(cid)
            if not child.has_gate:
                stack.extend(child.children)
        return out

    def _path_ids(self, start: int) -> List[int]:
        """``start`` and its ancestors up to the root, bottom first."""
        out = [start]
        parent = self.tree.node(start).parent
        while parent is not None:
            out.append(parent)
            parent = self.tree.node(parent).parent
        return out

    def _affected(self, path: Iterable[int], regions: Iterable[int]) -> Set[int]:
        """Every node whose Eq. 3 term the move can change."""
        affected: Set[int] = set()
        for nid in path:
            affected.add(nid)
            affected.update(self.tree.node(nid).children)
        for nid in regions:
            affected.update(self._region(nid))
        return affected

    def _local_cost(self, ids: Set[int]) -> float:
        """Eq. 3 terms of the given nodes only (clock + star shares).

        Same per-edge formula as
        :func:`repro.core.switched_cap.clock_tree_switched_cap` plus the
        star terms of gated members; deltas of two evaluations over one
        id set are exact whenever the set covers everything the move
        changed -- placements excepted, which the post-accept reembed
        and exact re-measurement settle.
        """
        c = self.tech.unit_wire_capacitance
        a_clk = self.tech.clock_transitions_per_cycle
        root = self.tree.root_id
        total = 0.0
        for nid in sorted(ids):
            node = self.tree.node(nid)
            if nid == root:
                total += a_clk * self._attached_cap(self.tree, nid)
                continue
            eff = self._effective_probability(node)
            total += a_clk * eff * (
                c * node.edge_length + self._attached_cap(self.tree, nid)
            )
            if node.has_gate:
                total += self._star_term(node)
        return total

    # ------------------------------------------------------------------
    # snapshot / restore and the zero-skew root-path repair
    # ------------------------------------------------------------------
    def _snapshot(self, ids: Set[int]) -> Dict[int, tuple]:
        return {
            nid: tuple(
                getattr(self.tree.node(nid), f) for f in _SNAPSHOT_FIELDS
            )
            for nid in ids
        }

    def _restore(self, snapshot: Dict[int, tuple]) -> None:
        for nid, values in snapshot.items():
            node = self.tree.node(nid)
            for field, value in zip(_SNAPSHOT_FIELDS, values):
                setattr(node, field, value)

    def _repair_upward(self, start: int) -> None:
        """Recompute zero-skew splits from ``start`` up to the root.

        The mini bottom-up pass of :func:`repro.cts.reembed.reembed`,
        confined to one root path: every node on it re-merges its
        children's *current* merging segments and presented caps, so the
        path's edge lengths, segments and delays are exact for the
        mutated topology.  Placements are left stale -- the screen does
        not need them, and an accepted move reembeds the whole tree.
        """
        tech = self.tech
        nid: Optional[int] = start
        while nid is not None:
            node = self.tree.node(nid)
            if not node.is_sink:
                children = [self.tree.node(c) for c in node.children]
                if len(children) == 1:
                    (child,) = children
                    tap = Tap(
                        cap=child.subtree_cap,
                        delay=child.sink_delay,
                        cell=child.edge_cell,
                    )
                    child.edge_length = 0.0
                    child.snaked = False
                    node.merging_segment = child.merging_segment
                    node.subtree_cap = tap.presented_cap(0.0, tech)
                    node.sink_delay = tap.edge_delay(0.0, tech)
                else:
                    left, right = children
                    distance = left.merging_segment.distance_to(
                        right.merging_segment
                    )
                    split = zero_skew_split(
                        distance,
                        Tap(
                            cap=left.subtree_cap,
                            delay=left.sink_delay,
                            cell=left.edge_cell,
                        ),
                        Tap(
                            cap=right.subtree_cap,
                            delay=right.sink_delay,
                            cell=right.edge_cell,
                        ),
                        tech,
                    )
                    left.edge_length = split.length_a
                    left.snaked = split.snaked == "a"
                    right.edge_length = split.length_b
                    right.snaked = split.snaked == "b"
                    node.merging_segment = merge_regions(
                        left.merging_segment, right.merging_segment, split
                    )
                    node.subtree_cap = split.merged_cap
                    node.sink_delay = split.delay
                node.sink_delay_min = node.sink_delay
            nid = node.parent
        self.tree.root.sink_delay_min = self.tree.root.sink_delay

    # ------------------------------------------------------------------
    # move proposals: each returns (delta, undo) or None if infeasible
    # ------------------------------------------------------------------
    def _propose_nni(self):
        """Swap a random child of a random internal node with its
        sibling's subtree."""
        if not self._internal_ids:
            return None
        pivot_id = self._internal_ids[
            int(self.rng.integers(len(self._internal_ids)))
        ]
        pivot = self.tree.node(pivot_id)
        if len(pivot.children) != 2 or pivot.parent is None:
            return None
        grand = self.tree.node(pivot.parent)
        if len(grand.children) != 2:
            return None
        sibling_id = (
            grand.children[1] if grand.children[0] == pivot_id else grand.children[0]
        )
        slot = int(self.rng.integers(2))
        moved_id = pivot.children[slot]
        kept_id = pivot.children[1 - slot]

        affected = self._affected(
            self._path_ids(pivot_id), (moved_id, kept_id, sibling_id)
        )
        before = self._local_cost(affected)
        snapshot = self._snapshot(affected)

        # Swap: the sibling descends under the pivot, the moved child
        # ascends into the sibling's slot.
        new_pivot_children = list(pivot.children)
        new_pivot_children[slot] = sibling_id
        pivot.children = tuple(new_pivot_children)
        grand.children = tuple(
            moved_id if cid == sibling_id else cid for cid in grand.children
        )
        self.tree.node(sibling_id).parent = pivot_id
        self.tree.node(moved_id).parent = grand.id
        pivot.module_mask = (
            self.tree.node(sibling_id).module_mask
            | self.tree.node(kept_id).module_mask
        )
        stats = self.oracle.statistics(pivot.module_mask)
        pivot.enable_probability = stats.signal_probability
        pivot.enable_transition_probability = stats.transition_probability

        try:
            self._repair_upward(pivot_id)
        except ReproError:
            # Degenerate geometry on the path (cannot re-balance);
            # everything the swap and the partial repair touched is in
            # the snapshot, so restoring it voids the move exactly.
            self._restore(snapshot)
            return None
        delta = self._local_cost(affected) - before
        return delta, snapshot, None, "nni"

    def _propose_gate_toggle(self):
        """Insert a masking gate on a bare edge, or remove one."""
        edge_id = self._edge_ids[int(self.rng.integers(len(self._edge_ids)))]
        node = self.tree.node(edge_id)
        if node.edge_cell is not None and not node.edge_maskable:
            return None  # buffers (e.g. demoted gates) are off-limits
        assert node.parent is not None
        affected = self._affected(self._path_ids(node.parent), (edge_id,))
        before = self._local_cost(affected)
        snapshot = self._snapshot(affected)
        old_assignment = self.assignment.get(edge_id, _NO_ASSIGNMENT)

        if node.has_gate:
            node.edge_cell = None
            node.edge_maskable = False
            self.assignment.pop(edge_id, None)
        else:
            node.edge_cell = self.tech.masking_gate
            node.edge_maskable = True
            stats = self.oracle.statistics(node.module_mask)
            node.enable_probability = stats.signal_probability
            node.enable_transition_probability = stats.transition_probability

        try:
            self._repair_upward(node.parent)
        except ReproError:
            self._restore(snapshot)
            self._undo(None, (edge_id, old_assignment))
            return None
        delta = self._local_cost(affected) - before
        return delta, snapshot, (edge_id, old_assignment), "gate"

    def _propose_reassign(self):
        """Move one gate's enable route to a different controller.

        Exact by construction (no tree state changes), so acceptance
        skips the reembed/re-measure escalation entirely.
        """
        if self.layout.count < 2:
            return None
        gates = self.tree.gates()
        if not gates:
            return None
        node = gates[int(self.rng.integers(len(gates)))]
        pin = self._gate_location(self.tree, node)
        current = self.assignment.get(node.id)
        if current is None:
            current, _ = self.layout.controller_for(pin)
        target = int(self.rng.integers(self.layout.count - 1))
        if target >= current:
            target += 1
        c = self.tech.unit_wire_capacitance
        old_len = pin.manhattan_to(self.layout.points[current])
        new_len = pin.manhattan_to(self.layout.points[target])
        delta = c * (new_len - old_len) * node.enable_transition_probability
        old_assignment = self.assignment.get(node.id, _NO_ASSIGNMENT)
        self.assignment[node.id] = target
        return delta, None, (node.id, old_assignment), "reassign"

    # ------------------------------------------------------------------
    # the annealing loop
    # ------------------------------------------------------------------
    def _undo(self, snapshot, assignment_undo) -> None:
        if snapshot is not None:
            self._restore(snapshot)
        if assignment_undo is not None:
            nid, old = assignment_undo
            if old == _NO_ASSIGNMENT:
                self.assignment.pop(nid, None)
            else:
                self.assignment[nid] = old

    def _temperature(self, move_index: int, initial_cost: float) -> float:
        t0 = self.config.initial_temperature * max(initial_cost, 0.0)
        if t0 <= 0 or self.config.moves <= 1:
            return t0
        exponent = move_index / (self.config.moves - 1)
        return t0 * self.config.cooling_ratio**exponent

    def _accept(self, delta: float, temperature: float) -> bool:
        if delta <= 0.0:
            return True
        if temperature <= 0.0:
            return False
        return float(self.rng.random()) < math.exp(-delta / temperature)

    def run(self) -> Tuple[ClockTree, Optional[Dict[int, int]], RefineResult]:
        """Anneal for the configured budget; return the best state.

        The returned tree is the input tree itself when no move beat
        it (and the assignment is ``None``: every gate keeps its
        partition owner) -- a zero budget is a byte-identical no-op.
        """
        config = self.config
        result = self.result
        if config.moves == 0 or len(self._edge_ids) == 0:
            result.initial_cost = result.final_cost = result.best_cost = (
                self._exact_cost()
            )
            return self._original, None, result

        tracer = get_tracer()
        registry = get_registry()
        weights = np.asarray(config.weights, dtype=float)
        thresholds = np.cumsum(weights / weights.sum())
        proposers = (
            self._propose_nni,
            self._propose_gate_toggle,
            self._propose_reassign,
        )
        with tracer.span(
            "refine.anneal", n=len(self.tree), moves=config.moves, seed=config.seed
        ) as span:
            current = self._exact_cost()
            result.initial_cost = current
            best = current
            for k in range(config.moves):
                result.moves_proposed += 1
                pick = float(self.rng.random())
                proposer = proposers[int(np.searchsorted(thresholds, pick))]
                proposal = proposer()
                if proposal is None:
                    result.moves_infeasible += 1
                    tracer.progress(k + 1, config.moves)
                    continue
                delta, snapshot, assignment_undo, kind = proposal
                if not self._accept(delta, self._temperature(k, result.initial_cost)):
                    self._undo(snapshot, assignment_undo)
                    result.moves_rejected += 1
                    tracer.progress(k + 1, config.moves)
                    continue
                result.moves_accepted += 1
                if kind == "nni":
                    result.nni_accepted += 1
                elif kind == "gate":
                    result.gate_accepted += 1
                else:
                    result.reassign_accepted += 1
                if snapshot is not None:
                    # Tree moves escalate: full fixed-topology reembed,
                    # then an exact whole-network re-measurement.
                    reembed(self.tree)
                    result.reembeds += 1
                    current = self._exact_cost()
                else:
                    current += delta
                if current < best:
                    best = current
                    self._best_tree = self.tree.clone()
                    self._best_assignment = dict(self.assignment)
                tracer.progress(k + 1, config.moves)
            result.final_cost = current
            result.best_cost = best if self._best_tree is not None else result.initial_cost
            span.set(
                accepted=result.moves_accepted,
                rejected=result.moves_rejected,
                infeasible=result.moves_infeasible,
                reembeds=result.reembeds,
                improvement=result.improvement,
            )
        registry.counter("refine.moves_proposed").inc(result.moves_proposed)
        registry.counter("refine.moves_accepted").inc(result.moves_accepted)
        registry.counter("refine.moves_infeasible").inc(result.moves_infeasible)
        registry.counter("refine.reembeds").inc(result.reembeds)
        registry.gauge("refine.improvement").set(result.improvement)
        if self._best_tree is None:
            return self._original, None, result
        return self._best_tree, self._best_assignment, result


def refine_tree(
    tree: ClockTree,
    tech: Technology,
    oracle: ActivityOracle,
    layout: ControllerLayout,
    config: Optional[RefineConfig] = None,
) -> Tuple[ClockTree, Optional[Dict[int, int]], RefineResult]:
    """Refine a finished gated tree; never returns a worse one.

    Returns ``(best_tree, assignment, result)``.  ``assignment`` maps
    gate node ids to controller indices for
    :func:`repro.core.controller.route_enables`; it is ``None`` when
    the input tree was never beaten (including a zero move budget), in
    which case ``best_tree`` *is* the untouched input object.
    """
    return AnnealingRefiner(
        tree, tech, oracle, layout, config or RefineConfig()
    ).run()
