"""Vectorized NumPy kernels for the DME hot path.

The greedy merger's inner loops (``_initialize_best``,
``_recompute_best``, ``_introduce``) evaluate one candidate pair at a
time: a ``Trr.distance_to`` call, a ``zero_skew_split``, and a cost.
This module evaluates the same arithmetic over whole candidate
*batches* with NumPy array expressions, so a screen over N candidates
is a handful of vector operations instead of N Python call chains.

Exact-parity contract
---------------------
Every kernel mirrors its scalar counterpart **operation for operation**
in IEEE-754 double precision: the same subtractions, the same
association order, the same ``max``/``min`` structure.  NumPy's
elementwise float64 arithmetic performs the identical rounding to
CPython's float arithmetic, so the batched results are bit-identical
to the scalar ones -- not merely close.  The merger relies on this to
keep its greedy decisions (and therefore ``merge_trace``) byte-equal
between ``vectorize=True`` and ``vectorize=False`` runs; the property
tests in ``tests/test_cts_kernels.py`` assert exact float equality.

What is batched:

* :func:`batch_segment_distance` -- ``Trr.distance_to`` over
  ``(ulo, uhi, vlo, vhi)`` arrays;
* :func:`batch_zero_skew_split` -- the
  ``repro.cts.merge.zero_skew_split`` linear balance ``x = num / den``
  (plain wires, or uniform cells on both edges via ``cell_a`` /
  ``cell_b``), with the degenerate-denominator and out-of-range
  classification masks.  Out-of-range (snaking) lanes are *classified
  only*: their results are not modelled here, and the merger falls
  back to the scalar ``plan()`` for them;
* :func:`batch_star_length` -- controller-to-segment-center Manhattan
  distance (the enable-star estimate of the Eq. 3 cost terms).

:class:`NodeArrays` is the struct-of-arrays mirror of per-node merge
state the merger keeps in sync through ``_retire``/``_introduce``;
:class:`ActiveIds` maintains the active-id array with O(1)
swap-removal so candidate gathers are single fancy-index operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.cts.merge import DEGENERATE_DEN_EPS, DEGENERATE_SKEW_EPS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dme -> kernels)
    from repro.cts.topology import ClockNode


def as_id_array(ids: Sequence[int]) -> np.ndarray:
    """Candidate ids as an ``int64`` array (the kernels' id dtype).

    Scalar counterpart: none -- dtype plumbing, no scalar arithmetic.
    """
    return np.asarray(list(ids), dtype=np.int64)


def rank_by_cost(ids: np.ndarray, costs: np.ndarray) -> np.ndarray:
    """Indices ordering candidates by ``(cost, id)`` ascending.

    This is the scalar greedy's exact comparison: cheapest cost first,
    float ties broken by the smaller node id.

    Scalar counterpart: repro.cts.dme.BottomUpMerger._recompute_best
    """
    return np.lexsort((ids, costs))


def scatter_by_mask(
    mask: np.ndarray, when_true: np.ndarray, when_false: np.ndarray
) -> np.ndarray:
    """Interleave two per-lane result arrays back into mask order.

    ``when_true`` holds the lanes where ``mask`` is set (in order),
    ``when_false`` the rest.  Used to recombine the two orientation
    sub-batches of a canonical candidate screen.

    Scalar counterpart: none -- index plumbing, no scalar arithmetic.
    """
    out = np.empty(mask.shape, dtype=np.float64)
    out[mask] = when_true
    out[~mask] = when_false
    return out


def batch_segment_distance(
    a_ulo: float,
    a_uhi: float,
    a_vlo: float,
    a_vhi: float,
    b_ulo: np.ndarray,
    b_uhi: np.ndarray,
    b_vlo: np.ndarray,
    b_vhi: np.ndarray,
) -> np.ndarray:
    """``Trr.distance_to`` of one query segment against a batch.

    Mirrors ``_interval_gap``: ``max(0, lo2 - hi1, lo1 - hi2)`` per
    axis, then the max of the two gaps.  ``max`` is rounding-free, so
    the result is bit-identical to the scalar call in either pair
    orientation (the gap arguments just swap).

    Scalar counterpart: repro.geometry.trr.Trr.distance_to
    """
    gu = np.maximum(0.0, np.maximum(b_ulo - a_uhi, a_ulo - b_uhi))
    gv = np.maximum(0.0, np.maximum(b_vlo - a_vhi, a_vlo - b_vhi))
    return np.maximum(gu, gv)


def batch_star_length(
    px: float,
    py: float,
    ulo: np.ndarray,
    uhi: np.ndarray,
    vlo: np.ndarray,
    vhi: np.ndarray,
) -> np.ndarray:
    """Manhattan distance from one point to each segment's center.

    Mirrors ``point.manhattan_to(segment.center())``:
    ``center = from_uv((ulo+uhi)/2, (vlo+vhi)/2)`` then
    ``|px - cx| + |py - cy|``, with the exact intermediate roundings of
    the scalar chain.

    Scalar counterpart: repro.geometry.point.Point.manhattan_to
    """
    u = (ulo + uhi) / 2.0
    v = (vlo + vhi) / 2.0
    cx = (u + v) / 2.0
    cy = (u - v) / 2.0
    return np.abs(px - cx) + np.abs(py - cy)


@dataclass(frozen=True)
class BatchSplit:
    """Vectorized ``zero_skew_split`` outcome over a candidate batch.

    The per-lane values (``length_a`` .. ``merged_cap``) are valid only
    where ``in_range`` is True; snaking lanes (``snake_a``/``snake_b``)
    carry zeros there and must be re-evaluated with the scalar
    ``zero_skew_split``.
    """

    x: np.ndarray
    length_a: np.ndarray
    length_b: np.ndarray
    delay: np.ndarray
    presented_a: np.ndarray
    presented_b: np.ndarray
    merged_cap: np.ndarray
    in_range: np.ndarray
    degenerate: np.ndarray
    snake_a: np.ndarray
    snake_b: np.ndarray


def batch_zero_skew_split(
    length: np.ndarray,
    cap_a: float,
    delay_a: float,
    cap_b: np.ndarray,
    delay_b: np.ndarray,
    r: float,
    c: float,
    cell_a=None,
    cell_b=None,
) -> BatchSplit:
    """``zero_skew_split`` over a batch of candidates.

    Side ``a`` is usually the (scalar) query node and side ``b`` the
    candidate arrays, but every expression below broadcasts
    symmetrically: passing the arrays as side ``a`` and the scalars as
    side ``b`` produces the identical per-lane float chains in the
    swapped pair orientation -- the canonical initialization scans use
    this for candidates below the query id.  ``cell_a`` / ``cell_b``
    are the cells (gate/buffer
    models exposing ``drive_resistance`` / ``intrinsic_delay`` /
    ``input_cap``) on the two new edges, or ``None`` for plain wire --
    uniform across the batch, which is exactly the case the merger's
    uniform cell policies produce.  With no cells the drive/intrinsic
    terms vanish exactly (``0.0 * finite == 0.0`` and ``0.0 + x == x``
    for the non-negative operands involved), so each expression below
    reproduces the scalar function's float chain bit for bit on the
    in-range path -- with or without cells.

    Scalar counterpart: repro.cts.merge.zero_skew_split
    """
    ra = cell_a.drive_resistance if cell_a is not None else 0.0
    ia = cell_a.intrinsic_delay if cell_a is not None else 0.0
    rb = cell_b.drive_resistance if cell_b is not None else 0.0
    ib = cell_b.intrinsic_delay if cell_b is not None else 0.0

    den = c * (ra + rb) + r * (cap_a + cap_b) + r * c * length
    # Tap.unloaded_delay: t' = D + R * C + t, association preserved.
    skew = (ib + rb * cap_b + delay_b) - (ia + ra * cap_a + delay_a)
    num = length * (rb * c + r * cap_b) + r * c * length * length / 2.0 + skew

    degenerate = den <= DEGENERATE_DEN_EPS
    safe_den = np.where(degenerate, 1.0, den)
    x = num / safe_den
    if degenerate.any():
        # Scalar classification: equal subtrees split trivially, a
        # slower side forces the snaking path via an out-of-range x.
        deg_x = np.where(
            np.abs(skew) <= DEGENERATE_SKEW_EPS,
            length / 2.0,
            np.where(skew > 0, length + 1.0, -1.0),
        )
        x = np.where(degenerate, deg_x, x)

    snake_b = x < 0.0
    snake_a = x > length
    in_range = ~(snake_a | snake_b)

    e_a = np.where(in_range, x, 0.0)
    e_b = np.where(in_range, length - x, 0.0)
    edge_delay_a = (
        ia + ra * (c * e_a + cap_a) + r * e_a * (c * e_a / 2.0 + cap_a) + delay_a
    )
    edge_delay_b = (
        ib + rb * (c * e_b + cap_b) + r * e_b * (c * e_b / 2.0 + cap_b) + delay_b
    )
    if cell_a is not None:
        presented_a = np.full_like(e_a, cell_a.input_cap)
    else:
        presented_a = c * e_a + cap_a
    if cell_b is not None:
        presented_b = np.full_like(e_b, cell_b.input_cap)
    else:
        presented_b = c * e_b + cap_b
    return BatchSplit(
        x=x,
        length_a=e_a,
        length_b=e_b,
        delay=np.maximum(edge_delay_a, edge_delay_b),
        presented_a=presented_a,
        presented_b=presented_b,
        merged_cap=presented_a + presented_b,
        in_range=in_range,
        degenerate=degenerate,
        snake_a=snake_a,
        snake_b=snake_b,
    )


def out_of_range_lanes(split: BatchSplit) -> list:
    """Lane indices the batch split could not model (snaking sides).

    Scalar counterpart: none -- mask bookkeeping over
    :class:`BatchSplit`; the snaking lanes themselves are re-evaluated
    by the scalar ``zero_skew_split``.
    """
    return np.nonzero(~split.in_range)[0].tolist()


class NodeArrays:
    """Struct-of-arrays mirror of the merger's per-node state.

    One float64 row per node id: merging-segment extents in rotated
    coordinates, presented subtree capacitance, zero-skew sink delay
    (which equals the unloaded delay on the cell-free path the split
    kernel models), and the enable probabilities the Eq. 3 bound terms
    read.  ``sig`` is an ``int64`` column of activation signatures
    (:meth:`repro.activity.probability.ActivityOracle.activation_signature`);
    signatures of merged pairs are one ``np.bitwise_or`` away, which is
    what lets the cost kernels batch the oracle lookups.  Rows are
    written once -- at construction for sinks and from ``_introduce``
    for merged nodes -- and never change afterwards, so candidate
    gathers are plain fancy indexing.
    """

    _FIELDS = (
        "ulo",
        "uhi",
        "vlo",
        "vhi",
        "cap",
        "delay",
        "enable_p",
        "enable_ptr",
    )

    __slots__ = _FIELDS + ("sig",)

    def __init__(self, capacity: int):
        capacity = max(1, int(capacity))
        for name in self._FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=np.float64))
        self.sig = np.zeros(capacity, dtype=np.int64)

    def _grow(self, needed: int) -> None:
        size = max(needed + 1, 2 * self.ulo.size)
        for name in self._FIELDS:
            old = getattr(self, name)
            grown = np.zeros(size, dtype=np.float64)
            grown[: old.size] = old
            setattr(self, name, grown)
        grown_sig = np.zeros(size, dtype=np.int64)
        grown_sig[: self.sig.size] = self.sig
        self.sig = grown_sig

    def set_row(self, nid: int, node: "ClockNode", sig: int = 0) -> None:
        """Mirror one node's merge state under its id."""
        if nid >= self.ulo.size:
            self._grow(nid)
        seg = node.merging_segment
        self.ulo[nid], self.uhi[nid], self.vlo[nid], self.vhi[nid] = seg.bounds_uv
        self.cap[nid] = node.subtree_cap
        self.delay[nid] = node.sink_delay
        self.enable_p[nid] = node.enable_probability
        self.enable_ptr[nid] = node.enable_transition_probability
        self.sig[nid] = sig


class ActiveIds:
    """Dense ``int64`` array of active node ids with O(1) add/remove.

    Removal swaps the last id into the vacated slot, so the live prefix
    stays contiguous and a candidate batch is one slice (order is
    arbitrary -- the kernels rank by ``(cost, id)``, which is
    order-independent).
    """

    __slots__ = ("_ids", "_pos", "_count")

    def __init__(self, ids: Iterable[int], capacity: int = 0):
        self._ids = np.empty(max(1, int(capacity)), dtype=np.int64)
        self._pos = {}
        self._count = 0
        for nid in ids:
            self.add(nid)

    def __len__(self) -> int:
        return self._count

    def add(self, nid: int) -> None:
        if nid in self._pos:
            return
        if self._count == self._ids.size:
            grown = np.empty(2 * self._ids.size, dtype=np.int64)
            grown[: self._count] = self._ids[: self._count]
            self._ids = grown
        self._ids[self._count] = nid
        self._pos[nid] = self._count
        self._count += 1

    def discard(self, nid: int) -> None:
        pos = self._pos.pop(nid, None)
        if pos is None:
            return
        last = self._count - 1
        if pos != last:
            moved = int(self._ids[last])
            self._ids[pos] = moved
            self._pos[moved] = pos
        self._count = last

    def view(self) -> np.ndarray:
        """The live ids (a borrowed view; do not mutate)."""
        return self._ids[: self._count]

    def others(self, nid: int) -> np.ndarray:
        """The live ids except ``nid`` (a fresh array)."""
        view = self.view()
        return view[view != nid]
