"""Spatial candidate index for the greedy merger's k-nearest queries.

During bottom-up merging every active subtree root carries a merging
segment (a Manhattan arc, stored as a degenerate
:class:`~repro.geometry.trr.Trr`).  With a ``candidate_limit`` the
greedy engine repeatedly needs, for one segment, its ``k`` nearest
active segments -- previously a full sort of all active nodes,
O(N log N) per query.

:class:`SegmentGridIndex` answers the same query from a uniform grid
over segment *centers* in the rotated ``(u, v) = (x + y, x - y)``
coordinates, where Manhattan distance in the layout becomes the
Chebyshev (L-infinity) distance, so grid rings are square and the ring
radius is a true distance bound.  A query expands rings of cells
around the query center, collecting candidates with their **exact**
segment-to-segment distances, until the ring bound proves that no
unscanned segment can still enter the result:

``dist(q, s) >= Linf(center_q, center_s) - rad_q - rad_s
            >= r * cell - rad_q - max_rad``

after completing ring ``r`` (``rad`` is a segment's half-extent; the
index keeps a high-water maximum over inserted segments, which stays a
valid -- merely conservative -- bound after removals).  Because large
segments are born late in a merge and retire soon after, a grow-only
high-water mark loosens the stop bound exactly when queries get
expensive; the index therefore recomputes the true maximum whenever
the live population halves since the mark was last exact, an O(N)
scan amortized O(1) per removal (``radius_recomputes`` counts scans,
``tightened_queries`` the queries that ran with a tightened bound).

Results are ranked by ``(exact distance, id)``, byte-identical to the
full-sort implementation the merger used before, so switching to the
index cannot change any greedy decision.  The expansion stops only
when the bound *strictly* exceeds the k-th best distance, so distance
ties are still broken by id exactly as the sort did.  Each ring's
exact distances can optionally be answered by one vectorized call
(the ``batch_distance`` hook of :meth:`SegmentGridIndex.nearest`)
instead of a Python loop; the hook is pinned bit-identical to
``Trr.distance_to``, so it cannot change a result either.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check.errors import ContractError
from repro.geometry.trr import Trr


class SegmentGridIndex:
    """Uniform grid over merging-segment centers with ring expansion.

    Parameters
    ----------
    cell_size:
        Grid pitch in the rotated coordinates.  Any positive value is
        correct; a pitch near the typical nearest-neighbour spacing
        makes queries touch O(k) cells.
    """

    def __init__(self, cell_size: float):
        if not cell_size > 0.0:
            raise ContractError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._segments: Dict[int, Trr] = {}
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        self._cell_of: Dict[int, Tuple[int, int]] = {}
        #: High-water half-extent over the *live* segments.  A stale
        #: (too large) value only delays the stop condition, it cannot
        #: make a query inexact; it is recomputed exactly whenever the
        #: population halves below :attr:`_peak_population`.
        self._max_radius = 0.0
        #: Largest half-extent ever inserted (never lowered; used only
        #: to detect that ``_max_radius`` has been tightened below it).
        self._ever_max_radius = 0.0
        #: Population when ``_max_radius`` was last known exact.
        self._peak_population = 0
        # High-water bounding box of occupied cells, for termination.
        self._bounds: Optional[List[int]] = None  # [ulo, uhi, vlo, vhi]
        #: Query counters (read by the merger's ``MergerStats``).
        self.queries = 0
        self.cells_scanned = 0
        self.radius_recomputes = 0
        self.tightened_queries = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._segments

    @staticmethod
    def _center(segment: Trr) -> Tuple[float, float]:
        return (
            (segment.ulo + segment.uhi) / 2.0,
            (segment.vlo + segment.vhi) / 2.0,
        )

    @staticmethod
    def _radius(segment: Trr) -> float:
        return max(segment.u_extent, segment.v_extent) / 2.0

    def _cell(self, u: float, v: float) -> Tuple[int, int]:
        return (
            int(math.floor(u / self.cell_size)),
            int(math.floor(v / self.cell_size)),
        )

    def insert(self, item_id: int, segment: Trr) -> None:
        """Register an active segment under ``item_id``."""
        if item_id in self._segments:
            raise ContractError("id %d is already indexed" % item_id)
        u, v = self._center(segment)
        cell = self._cell(u, v)
        self._segments[item_id] = segment
        self._cell_of[item_id] = cell
        self._cells.setdefault(cell, set()).add(item_id)
        self._max_radius = max(self._max_radius, self._radius(segment))
        self._ever_max_radius = max(self._ever_max_radius, self._max_radius)
        self._peak_population = max(self._peak_population, len(self._segments))
        if self._bounds is None:
            self._bounds = [cell[0], cell[0], cell[1], cell[1]]
        else:
            b = self._bounds
            b[0] = min(b[0], cell[0])
            b[1] = max(b[1], cell[0])
            b[2] = min(b[2], cell[1])
            b[3] = max(b[3], cell[1])

    def remove(self, item_id: int) -> None:
        """Drop a retired segment from the index."""
        if item_id not in self._segments:
            raise KeyError(item_id)
        del self._segments[item_id]
        cell = self._cell_of.pop(item_id)
        bucket = self._cells[cell]
        bucket.discard(item_id)
        if not bucket:
            del self._cells[cell]
        if len(self._segments) * 2 <= self._peak_population:
            # The population halved since the radius mark was last
            # exact: re-derive it from the survivors so late queries
            # stop on the live maximum, not on long-retired giants.
            self._max_radius = max(
                (self._radius(s) for s in self._segments.values()), default=0.0
            )
            self._peak_population = len(self._segments)
            self.radius_recomputes += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _ring(self, cu: int, cv: int, r: int) -> Iterator[Tuple[int, int]]:
        """Cells at Chebyshev distance exactly ``r``, clamped to bounds."""
        b = self._bounds
        if b is None:
            return
        if r == 0:
            if b[0] <= cu <= b[1] and b[2] <= cv <= b[3]:
                yield (cu, cv)
            return
        ulo, uhi = max(cu - r, b[0]), min(cu + r, b[1])
        for gv in (cv - r, cv + r):
            if b[2] <= gv <= b[3]:
                for gu in range(ulo, uhi + 1):
                    yield (gu, gv)
        vlo, vhi = max(cv - r + 1, b[2]), min(cv + r - 1, b[3])
        for gu in (cu - r, cu + r):
            if b[0] <= gu <= b[1]:
                for gv in range(vlo, vhi + 1):
                    yield (gu, gv)

    def nearest(
        self,
        segment: Trr,
        k: int,
        exclude: Optional[int] = None,
        batch_distance=None,
    ) -> List[int]:
        """The ``k`` indexed segments nearest to ``segment``.

        Ranked by ``(Trr.distance_to, id)`` -- exactly the order a full
        sort over all indexed segments would produce.  ``exclude``
        omits one id (the querying node itself when it is indexed).

        ``batch_distance(segment, ids) -> distances`` optionally
        answers one ring's exact segment distances in a single call
        (the merger passes its vectorized segment-distance kernel).
        The callback must be bit-identical to ``Trr.distance_to`` per
        id; results are then ranked by the same ``(distance, id)``
        sort either way, so the hook cannot change a query result.
        """
        if k < 1:
            raise ContractError("k must be positive")
        self.queries += 1
        if self._max_radius < self._ever_max_radius:
            self.tightened_queries += 1
        total = len(self._segments) - (1 if exclude in self._segments else 0)
        if total <= 0:
            return []
        qu, qv = self._center(segment)
        q_rad = self._radius(segment)
        cu, cv = self._cell(qu, qv)
        found: List[Tuple[float, int]] = []
        r = 0
        while True:
            ring_ids: List[int] = []
            for cell in self._ring(cu, cv, r):
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                self.cells_scanned += 1
                for iid in bucket:
                    if iid == exclude:
                        continue
                    ring_ids.append(iid)
            if ring_ids:
                if batch_distance is not None:
                    found.extend(zip(batch_distance(segment, ring_ids), ring_ids))
                else:
                    found.extend(
                        (segment.distance_to(self._segments[iid]), iid)
                        for iid in ring_ids
                    )
            if len(found) >= total:
                break
            if len(found) >= k:
                found.sort()
                # After ring r every unscanned center is > r*cell away
                # (strictly, >= r*cell measured from the query point's
                # own cell); subtract both half-extents for a segment
                # distance bound.  Stop only on a *strict* win so that
                # equal-distance ties are still resolved by id.
                bound = r * self.cell_size - q_rad - self._max_radius
                if bound > found[k - 1][0]:
                    break
            r += 1
        found.sort()
        return [iid for _, iid in found[:k]]
