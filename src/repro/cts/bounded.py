"""Bounded-skew merging: zero skew generalized to a skew budget.

The paper builds exact zero-skew trees; most practical flows allow a
small skew bound and bank the wirelength savings.  This module extends
the merge arithmetic: every subtree carries a *delay interval*
``[lo, hi]`` (the spread of its sink delays), and a merge must keep
the merged interval's width within the bound.  The mechanics:

* splitting the merging distance ``x + (L - x) = L`` costs the same
  wire for any ``x``, so the split aims at the interval-center balance
  point (the zero-skew formula applied to interval midpoints), clamped
  to ``[0, L]``;
* if the clamped split already satisfies the bound -- the win over
  zero skew -- no detour wire is added;
* otherwise the fast side is snaked only far enough to close the gap
  to the bound, not to exact equality.

Feasibility is inductive: a merge of two subtrees with widths within
the bound always yields a width within the bound (aligning centers
gives width ``max(w_a, w_b)``), so the only failure mode is a caller
passing a subtree that already violates the budget.

``bound = 0`` reduces exactly to :func:`repro.cts.merge.zero_skew_split`
(a property the tests check).
"""

from __future__ import annotations

from repro.check.errors import GeometryError
from repro.check.errors import ContractError
from repro.cts.merge import SplitResult, Tap, zero_skew_split
from repro.tech.parameters import Technology

_EPS = 1e-12


class SkewBoundError(GeometryError):
    """A subtree wider than the skew budget was passed to a merge."""


def _edge_increment(tap: Tap, length: float, tech: Technology) -> float:
    """Delay added by the edge (cell + wire), excluding the subtree."""
    return Tap(cap=tap.cap, delay=0.0, cell=tap.cell).edge_delay(length, tech)


def _center_balance_point(
    length: float, tap_a: Tap, tap_b: Tap, lo_a: float, lo_b: float, tech: Technology
) -> float:
    """Unclamped zero-skew point for the interval midpoints."""
    mid_a = Tap(cap=tap_a.cap, delay=(lo_a + tap_a.delay) / 2.0, cell=tap_a.cell)
    mid_b = Tap(cap=tap_b.cap, delay=(lo_b + tap_b.delay) / 2.0, cell=tap_b.cell)
    r = tech.unit_wire_resistance
    c = tech.unit_wire_capacitance
    den = (
        c * (mid_a.drive_resistance + mid_b.drive_resistance)
        + r * (mid_a.cap + mid_b.cap)
        + r * c * length
    )
    skew_at_zero = mid_b.unloaded_delay() - mid_a.unloaded_delay()
    if den <= _EPS:
        if abs(skew_at_zero) <= 1e-12:
            return length / 2.0
        return length + 1.0 if skew_at_zero > 0 else -1.0
    num = (
        length * (mid_b.drive_resistance * c + r * mid_b.cap)
        + r * c * length * length / 2.0
        + skew_at_zero
    )
    return num / den


def _snake_to_gap(fast: Tap, fast_lo: float, target_lo: float, tech: Technology) -> float:
    """Wirelength raising the fast side's *low* edge to ``target_lo``."""
    from repro.cts.merge import _snake_length

    return _snake_length(Tap(cap=fast.cap, delay=fast_lo, cell=fast.cell), target_lo, tech)


def bounded_skew_split(
    length: float,
    tap_a: Tap,
    lo_a: float,
    tap_b: Tap,
    lo_b: float,
    bound: float,
    tech: Technology,
) -> SplitResult:
    """Split a merge so the merged delay interval stays within ``bound``.

    ``tap_x.delay`` is the subtree's *latest* sink delay (``hi``);
    ``lo_x`` its earliest.  Returns a :class:`SplitResult` whose
    ``delay`` / ``delay_min`` carry the merged interval.
    """
    if bound < 0:
        raise ContractError("skew bound must be non-negative")
    if length < 0:
        raise ContractError("merging distance must be non-negative")
    if bound == 0:
        return zero_skew_split(length, tap_a, tap_b, tech)
    if tap_a.delay - lo_a > bound + 1e-9 or tap_b.delay - lo_b > bound + 1e-9:
        raise SkewBoundError("subtree delay spread already exceeds the bound")

    def interval(e_a: float, e_b: float):
        da = _edge_increment(tap_a, e_a, tech)
        db = _edge_increment(tap_b, e_b, tech)
        lo = min(lo_a + da, lo_b + db)
        hi = max(tap_a.delay + da, tap_b.delay + db)
        return lo, hi

    x = min(max(_center_balance_point(length, tap_a, tap_b, lo_a, lo_b, tech), 0.0), length)
    lo, hi = interval(x, length - x)
    if hi - lo <= bound * (1 + 1e-12) + 1e-12:
        return SplitResult(
            length_a=x,
            length_b=length - x,
            delay=hi,
            presented_a=tap_a.presented_cap(x, tech),
            presented_b=tap_b.presented_cap(length - x, tech),
            snaked=None,
            delay_min=lo,
        )

    # The clamped split is out of budget: one side is too fast even at
    # the boundary.  Identify it by comparing the intervals at the
    # clamped split (robust also for zero-distance merges) and snake it
    # just far enough that the gap equals the bound.
    hi_a_clamped = tap_a.delay + _edge_increment(tap_a, x, tech)
    hi_b_clamped = tap_b.delay + _edge_increment(tap_b, length - x, tech)
    if hi_a_clamped < hi_b_clamped:
        # a is the fast side: give b no wire, snake a.
        db = _edge_increment(tap_b, 0.0, tech)
        target = (tap_b.delay + db) - bound
        e_a = max(_snake_to_gap(tap_a, lo_a, target, tech), length)
        e_b = 0.0
        snaked = "a"
    else:
        da = _edge_increment(tap_a, 0.0, tech)
        target = (tap_a.delay + da) - bound
        e_b = max(_snake_to_gap(tap_b, lo_b, target, tech), length)
        e_a = 0.0
        snaked = "b"
    lo, hi = interval(e_a, e_b)
    return SplitResult(
        length_a=e_a,
        length_b=e_b,
        delay=hi,
        presented_a=tap_a.presented_cap(e_a, tech),
        presented_b=tap_b.presented_cap(e_b, tech),
        snaked=snaked,
        delay_min=lo,
    )
