"""Sharded parallel gated routing: partition -> route -> exact stitch.

The paper's greedy merge is inherently sequential: every merge decision
conditions the next.  This module trades a sliver of optimality at the
*top* of the tree for parallelism everywhere below it:

1. **Partition** (:func:`partition_sinks`): recursive median bisection
   -- the same alternating-axis median cut
   :mod:`repro.cts.bisection` builds whole topologies with -- splits
   the sink set into ``K`` spatially coherent, balanced shards and
   records the cut tree as the stitch's merge order.
2. **Route** (:func:`route_shards`): each shard's gated subtree is
   built independently by the existing vectorized
   :class:`~repro.cts.dme.BottomUpMerger`, either inline or in a
   ``ProcessPoolExecutor`` worker pool.  Workers receive pickled
   shard sinks plus the :class:`~repro.activity.tables.ActivityTables`
   (the oracle itself carries per-instance LRU caches and is rebuilt
   worker-side), run with tracing disabled and a private
   :class:`~repro.obs.MetricsRegistry`, and return the finished shard
   tree, its merge trace and its metrics for the parent to fold in.
3. **Stitch** (:func:`stitch_shards`): shard trees are imported into
   one :class:`~repro.cts.topology.ClockTree` (per shard, in node-id
   order, so ids stay a valid bottom-up order) and the shard roots are
   merged along the cut tree with the *same*
   :func:`~repro.cts.merge.zero_skew_split` /
   :func:`~repro.cts.merge.merge_regions` machinery the merger uses,
   followed by the global top-down embedding.  Every merge in the
   final tree -- shard-internal or stitch-level -- is an exact
   zero-skew split, so the stitched tree has exact zero skew by
   construction and passes :func:`repro.check.audit_network` unchanged.

Two byte-stability contracts anchor the tests:

* ``num_shards=1`` reproduces the unsharded
  :func:`~repro.core.gated_routing.build_gated_tree` result exactly --
  same merge trace, same floats, same placement -- because the import
  preserves node ids and every copied field verbatim;
* for any ``K``, each shard's switched-capacitance contribution over
  its *internal* edges (:func:`shard_edge_cap_sums`) is bit-identical
  between the standalone shard tree and the stitched tree: with a gate
  on every edge the effective enable probability is node-local, the
  import preserves ids (hence summation order) and floats verbatim.
  The stitch's own edges form the one extra accounting bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.activity.probability import ActivityOracle
from repro.check.errors import ContractError, InputError
from repro.core.gated_routing import build_gated_tree
from repro.cts.dme import CellPolicy, GateEveryEdgePolicy
from repro.cts.merge import Tap, merge_regions, zero_skew_split
from repro.cts.topology import ClockTree, Sink
from repro.geometry.point import Point
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.tech.parameters import Technology

__all__ = [
    "ShardPlan",
    "ShardRoute",
    "partition_sinks",
    "route_shards",
    "shard_edge_cap_sums",
    "stitch_shards",
]


@dataclass(frozen=True)
class ShardPlan:
    """The partition and the stitch order it implies.

    ``shards`` holds, per shard, the indices into the original sink
    sequence (each sorted ascending).  ``merge_order`` is the cut tree
    read bottom-up: slots ``0 .. K-1`` are the shards themselves,
    every ``(left_slot, right_slot, new_slot)`` triple merges two
    subtree roots into a new slot, and the last triple's ``new_slot``
    is the clock root.  With one shard the order is empty.
    """

    shards: Tuple[Tuple[int, ...], ...]
    merge_order: Tuple[Tuple[int, int, int], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def partition_sinks(sinks: Sequence[Sink], num_shards: int) -> ShardPlan:
    """Cut ``sinks`` into ``num_shards`` balanced spatial shards.

    Recursive median bisection with alternating cut axes (the
    :mod:`repro.cts.bisection` construction, stopped at shard
    granularity): each cut sorts the remaining indices by the cut
    coordinate -- ties broken by sink index, so duplicate coordinates
    partition deterministically -- and splits them proportionally to
    the shard counts assigned to each side.  Shard sizes differ by at
    most one sink.
    """
    if num_shards < 1:
        raise InputError("num_shards must be positive", field="num_shards")
    if num_shards > len(sinks):
        raise InputError(
            "num_shards (%d) exceeds the sink count (%d)"
            % (num_shards, len(sinks)),
            field="num_shards",
        )
    shards: List[Tuple[int, ...]] = []
    merge_order: List[Tuple[int, int, int]] = []
    slots = [num_shards]  # next free slot id above the shard slots

    def split(indices: List[int], shard_count: int, vertical: bool) -> int:
        if shard_count == 1:
            shards.append(tuple(sorted(indices)))
            return len(shards) - 1
        left_count = shard_count // 2
        right_count = shard_count - left_count
        def key(i: int) -> Tuple[float, int]:
            location = sinks[i].location
            return ((location.x if vertical else location.y), i)

        ordered = sorted(indices, key=key)
        # Proportional split, clamped so both sides can still feed at
        # least one sink to every shard assigned to them.
        take = round(len(ordered) * left_count / shard_count)
        take = max(left_count, min(take, len(ordered) - right_count))
        left = split(ordered[:take], left_count, not vertical)
        right = split(ordered[take:], right_count, not vertical)
        slot = slots[0]
        slots[0] += 1
        merge_order.append((left, right, slot))
        return slot

    split(list(range(len(sinks))), num_shards, vertical=True)
    return ShardPlan(shards=tuple(shards), merge_order=tuple(merge_order))


@dataclass
class ShardRoute:
    """One routed shard, as returned by a worker (all fields pickle)."""

    index: int
    tree: ClockTree
    merge_trace: List[Tuple[int, int, int]]
    stats: Dict[str, int]
    seconds: float
    registry: Optional[MetricsRegistry] = None


def _route_one_shard(
    index: int,
    sinks: Sequence[Sink],
    tech: Technology,
    oracle: ActivityOracle,
    controller_point: Point,
    cell_policy: Optional[CellPolicy],
    candidate_limit: Optional[int],
    skew_bound: float,
    vectorize: bool,
    objective: str,
) -> ShardRoute:
    """Route one shard's gated subtree with the existing merger."""
    import time

    start = time.perf_counter()
    # build_gated_tree opens its own "topology.gated" span (a no-op in
    # workers, whose tracer is disabled by _worker_initializer).
    tree = build_gated_tree(
        sinks,
        tech,
        oracle,
        controller_point=controller_point,
        cell_policy=cell_policy,
        candidate_limit=candidate_limit,
        objective=objective,
        skew_bound=skew_bound,
        vectorize=vectorize,
    )
    # The merge trace and stats live on the merger, which
    # build_gated_tree does not return; recover the trace from the
    # construction order instead: node ids are assigned in merge order,
    # so (children of node i) in id order *is* the merge trace.
    trace = [
        (node.children[0], node.children[1], node.id)
        for node in tree.nodes()
        if node.children
    ]
    return ShardRoute(
        index=index,
        tree=tree,
        merge_trace=trace,
        stats=_snapshot_registry_counters(),
        seconds=time.perf_counter() - start,
    )


def _snapshot_registry_counters() -> Dict[str, int]:
    """The current registry's ``dme.*`` counters, for shard reporting."""
    registry = get_registry()
    out: Dict[str, int] = {}
    for name, payload in registry.as_dict().items():
        if name.startswith("dme.") and payload.get("type") == "counter":
            out[name] = payload["value"]
    return out


def _worker_initializer() -> None:
    """Make a forked/spawned worker process observability-safe.

    Workers inherit the parent's process-global tracer (possibly with
    an attached tracemalloc sampler whose feeder state belongs to the
    parent), its metrics registry, and -- under ``fork`` -- a running
    ``tracemalloc``.  Spans, samplers, progress listeners and the
    RunRecord ledger are strictly parent-side concerns: install a
    disabled tracer and a private registry, and stop any inherited
    allocation tracing before the shard does real work.
    """
    import tracemalloc

    from repro.obs import Tracer, set_tracer

    set_tracer(Tracer(enabled=False))
    set_registry(MetricsRegistry())
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def _pool_route_shard(payload: Tuple) -> ShardRoute:
    """Worker-side entry: rebuild the oracle, route, return the shard.

    The :class:`~repro.activity.probability.ActivityOracle` carries
    per-instance ``lru_cache`` wrappers and does not pickle; workers
    receive the underlying :class:`ActivityTables` and rebuild it (the
    oracle is a pure function of its tables, so worker-side
    probabilities are bit-identical to parent-side ones).
    """
    (
        index,
        sinks,
        tech,
        tables,
        controller_point,
        cell_policy,
        candidate_limit,
        skew_bound,
        vectorize,
        objective,
    ) = payload
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        shard = _route_one_shard(
            index,
            sinks,
            tech,
            ActivityOracle(tables),
            controller_point,
            cell_policy,
            candidate_limit,
            skew_bound,
            vectorize,
            objective,
        )
    finally:
        set_registry(previous)
    shard.registry = registry
    return shard


def route_shards(
    sinks: Sequence[Sink],
    plan: ShardPlan,
    tech: Technology,
    oracle: ActivityOracle,
    controller_point: Point,
    num_workers: int = 1,
    cell_policy: Optional[CellPolicy] = None,
    candidate_limit: Optional[int] = None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
    objective: str = "incremental",
) -> List[ShardRoute]:
    """Route every shard of ``plan``; returns shards in index order.

    ``num_workers <= 1`` routes inline (deterministic fallback, no
    pickling); more workers fan the shards out over a
    ``ProcessPoolExecutor``.  Results are identical either way: shard
    routing shares no state across shards, workers rebuild the oracle
    from its tables, and the stitch consumes shards in index order
    regardless of completion order.  Worker metrics registries are
    merged into the parent's (counters sum), so ``dme.*`` totals cover
    all shards in both modes.
    """
    from repro.obs import get_tracer

    registry = get_registry()
    if num_workers <= 1 or plan.num_shards == 1:
        shards = []
        for index, members in enumerate(plan.shards):
            shard_registry = MetricsRegistry()
            with get_tracer().span("shard.one", shard=index, n=len(members)):
                previous = set_registry(shard_registry)
                try:
                    shards.append(
                        _route_one_shard(
                            index,
                            [sinks[i] for i in members],
                            tech,
                            oracle,
                            controller_point,
                            cell_policy,
                            candidate_limit,
                            skew_bound,
                            vectorize,
                            objective,
                        )
                    )
                finally:
                    set_registry(previous)
            registry.merge(shard_registry)
        return shards

    from concurrent.futures import ProcessPoolExecutor

    tables = oracle.tables
    payloads = [
        (
            index,
            tuple(sinks[i] for i in members),
            tech,
            tables,
            controller_point,
            cell_policy,
            candidate_limit,
            skew_bound,
            vectorize,
            objective,
        )
        for index, members in enumerate(plan.shards)
    ]
    workers = min(num_workers, plan.num_shards)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_initializer
    ) as pool:
        # Workers reach the tracer/registry through build_gated_tree's
        # spans, but _worker_initializer installs a disabled tracer and
        # a fresh registry per worker first, and the shard registries
        # are merged parent-side after the join.
        shards = list(pool.map(_pool_route_shard, payloads))  # repro: noqa[REP011]
    shards.sort(key=lambda s: s.index)
    for shard in shards:
        if shard.registry is not None:
            registry.merge(shard.registry)
            shard.registry = None
    return shards


def _import_tree(out: ClockTree, shard_tree: ClockTree) -> int:
    """Copy a shard tree into ``out`` (id order); returns the new root id.

    Node ids are assigned in construction order (children before
    parents), so importing in id order keeps every child available
    when its parent arrives and preserves the *relative* id order --
    which is what keeps switched-cap accounting over shard-internal
    edges byte-stable (same floats, same summation order).
    """
    offset = len(out)
    for node in shard_tree.nodes():
        if node.is_sink:
            imported = out.add_leaf(node.sink)
        else:
            left, right = node.children
            imported = out.add_internal(
                left + offset, right + offset, node.merging_segment
            )
        imported.edge_length = node.edge_length
        imported.edge_cell = node.edge_cell
        imported.edge_maskable = node.edge_maskable
        imported.snaked = node.snaked
        imported.module_mask = node.module_mask
        imported.enable_probability = node.enable_probability
        imported.enable_transition_probability = (
            node.enable_transition_probability
        )
        imported.subtree_cap = node.subtree_cap
        imported.sink_delay = node.sink_delay
        imported.sink_delay_min = node.sink_delay_min
    return shard_tree.root_id + offset


def stitch_shards(
    shards: Sequence[ShardRoute],
    plan: ShardPlan,
    tech: Technology,
    oracle: ActivityOracle,
    cell_policy: Optional[CellPolicy] = None,
    skew_bound: float = 0.0,
) -> ClockTree:
    """Merge routed shard trees into one exactly zero-skew clock tree.

    Shard roots are merged along ``plan.merge_order`` with the same
    split/region machinery as any bottom-up merge
    (:func:`~repro.cts.merge.zero_skew_split` balances the Elmore
    delays exactly; :func:`~repro.cts.merge.merge_regions` intersects
    the cores), then the whole tree is embedded top-down.  Since every
    shard tree is internally zero-skew and every stitch merge splits
    exactly, the stitched tree has exact zero skew: at each stitch
    node both sides present equal sink delays, so the common delay
    propagates to the root unchanged.
    """
    if len(shards) != plan.num_shards:
        raise ContractError(
            "got %d routed shards for a %d-shard plan"
            % (len(shards), plan.num_shards)
        )
    policy = cell_policy or GateEveryEdgePolicy()
    out = ClockTree(tech)
    slots: Dict[int, int] = {}
    for shard in shards:
        slots[shard.index] = _import_tree(out, shard.tree)
    for left_slot, right_slot, new_slot in plan.merge_order:
        na = out.node(slots[left_slot])
        nb = out.node(slots[right_slot])
        distance = na.merging_segment.distance_to(nb.merging_segment)
        merged_mask = na.module_mask | nb.module_mask
        merged_probability = None
        if policy.needs_merged_probability:
            merged_probability = oracle.signal_probability(merged_mask)
        decision_a = policy.decide(na, merged_probability, distance, tech)
        decision_b = policy.decide(nb, merged_probability, distance, tech)
        if skew_bound > 0:
            from repro.cts.bounded import bounded_skew_split

            split = bounded_skew_split(
                distance,
                Tap(cap=na.subtree_cap, delay=na.sink_delay, cell=decision_a.cell),
                na.sink_delay_min,
                Tap(cap=nb.subtree_cap, delay=nb.sink_delay, cell=decision_b.cell),
                nb.sink_delay_min,
                skew_bound,
                tech,
            )
        else:
            split = zero_skew_split(
                distance,
                Tap(cap=na.subtree_cap, delay=na.sink_delay, cell=decision_a.cell),
                Tap(cap=nb.subtree_cap, delay=nb.sink_delay, cell=decision_b.cell),
                tech,
            )
        region = merge_regions(na.merging_segment, nb.merging_segment, split)
        merged = out.add_internal(na.id, nb.id, region)
        na.edge_length = split.length_a
        na.edge_cell = decision_a.cell
        na.edge_maskable = decision_a.maskable
        na.snaked = split.snaked == "a"
        nb.edge_length = split.length_b
        nb.edge_cell = decision_b.cell
        nb.edge_maskable = decision_b.maskable
        nb.snaked = split.snaked == "b"
        merged.module_mask = merged_mask
        merged.subtree_cap = split.merged_cap
        merged.sink_delay = split.delay
        merged.sink_delay_min = split.earliest_delay
        stats = oracle.statistics(merged_mask)
        merged.enable_probability = stats.signal_probability
        merged.enable_transition_probability = stats.transition_probability
        slots[new_slot] = merged.id
    root_slot = plan.merge_order[-1][2] if plan.merge_order else 0
    out.set_root(slots[root_slot])
    _place(out)
    registry = get_registry()
    registry.counter("shard.stitch_merges").inc(len(plan.merge_order))
    return out


def _place(tree: ClockTree) -> None:
    """Global top-down embedding (mirrors ``BottomUpMerger._place``)."""
    root = tree.root
    root.location = root.merging_segment.center()
    for node in tree.preorder():
        for child_id in node.children:
            child = tree.node(child_id)
            child.location = child.merging_segment.nearest_point_to(
                node.location
            )
    tree.validate_embedding()


def shard_edge_cap_sums(
    tree: ClockTree,
    tech: Technology,
    node_ranges: Sequence[Tuple[int, int]],
) -> List[float]:
    """Per-shard switched capacitance over shard-internal edges.

    ``node_ranges`` gives each shard's contiguous ``[start, stop)``
    node-id block in ``tree`` (shard roots excluded from their own
    block's *edge* terms only in the stitched tree, where they carry a
    stitch-level edge -- pass ``stop`` as the shard root id to scope
    the sum to internal edges).  Terms follow
    :func:`repro.core.switched_cap.clock_tree_switched_cap` exactly --
    ``a_clk * P(EN) * (c * length + attached)`` accumulated in id
    order -- restricted to edges whose *own* gate masks them, which is
    every edge under :class:`~repro.cts.dme.GateEveryEdgePolicy`.
    Identical id order and identical floats make each sum bit-stable
    between a standalone shard tree and its imported block.
    """
    c = tech.unit_wire_capacitance
    a_clk = tech.clock_transitions_per_cycle
    sums: List[float] = []
    for start, stop in node_ranges:
        total = 0.0
        for nid in range(start, stop):
            node = tree.node(nid)
            if not node.has_gate:
                raise ContractError(
                    "node %d has no masking gate; per-shard accounting "
                    "requires node-local enable probabilities (gate on "
                    "every edge)" % nid
                )
            attached = 0.0
            if node.is_sink:
                attached = node.sink.load_cap
            else:
                for child_id in node.children:
                    cell = tree.node(child_id).edge_cell
                    if cell is not None:
                        attached += cell.input_cap
            total += a_clk * node.enable_probability * (
                c * node.edge_length + attached
            )
        sums.append(total)
    return sums
