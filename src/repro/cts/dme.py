"""Deferred-merge embedding with a pluggable greedy objective.

The engine implements the construction shared by the paper's router and
the baselines:

1. **Bottom-up merging** (paper Fig. 2): every subtree root carries a
   merging segment (Manhattan arc).  A greedy loop repeatedly merges
   the pair of active subtrees with minimum *cost*; the cost function
   is a parameter -- geometric distance gives the nearest-neighbour
   baseline, the paper's Eq. 3 gives the min-switched-capacitance
   router.  Each merge performs an exact zero-skew split (with cells
   decided by a pluggable *cell policy*) and computes the new merging
   segment.
2. **Top-down placement**: the root is embedded at the center of its
   merging segment, every child at the point of its own segment
   nearest to its parent's placement.

The greedy pair selection keeps, per active subtree, its current best
partner; a lazy min-heap orders the candidates.  This gives the exact
greedy (same result as scanning all pairs each round) in roughly
O(N^2) cost evaluations.  An optional ``candidate_limit`` restricts
each node's candidates to its k geometrically nearest neighbours --
the speed/quality trade-off explored in the ablation bench.

Four switchable optimizations accelerate the loop without changing a
single greedy decision (``merge_trace`` is byte-identical with them on
or off; the tests assert this):

* a **merge-plan cache** memoizes :meth:`BottomUpMerger.plan` per
  *ordered* active pair (ordered, so a hit returns the exact floats an
  uncached call would have produced) and is invalidated when either
  side retires; the winning plan is reused at commit instead of being
  recomputed;
* a **spatial candidate index**
  (:class:`repro.cts.candidate_index.SegmentGridIndex`) answers the
  k-nearest-candidate queries of ``candidate_limit`` runs from a
  uniform grid instead of a full O(N log N) sort per query;
* **lower-bound pruning** skips full plan evaluations for candidates
  whose cheap cost lower bound (``cost.lower_bound``, see
  :mod:`repro.core.cost`) proves they cannot beat the current best.
  Bounds are shrunk by a relative margin far larger than accumulated
  float rounding, so a true winner can never be pruned by an
  ulp-level tie;
* **vectorized kernel screens** (``vectorize=True``, the default)
  batch-evaluate whole candidate sets with the NumPy kernels of
  :mod:`repro.cts.kernels`.  Costs exposing ``batch_cost`` (all the
  built-in objectives) get an *exact* screen: one kernel call ranks
  every candidate by ``(cost, id)`` and only the winner is planned
  scalar.  The optional ``batch_cost_ready`` hook lets a cost decline
  the exact screen per run (e.g. the switched-capacitance costs
  without a uniform cell decision), and costs declaring
  ``batch_cost_orientable`` extend it to the canonical initialization
  scans, whose below-``nid`` lanes run through swapped sub-batches;
  declined runs batch their lower bounds through
  ``batch_lower_bound`` instead.  Merged-pair enable probabilities are
  batched through activation signatures
  (:meth:`repro.activity.probability.ActivityOracle.batch_probabilities`),
  and ``candidate_limit`` index queries batch their ring distances
  through the same segment-distance kernel.  The kernels mirror the
  scalar float arithmetic bit for bit, and the engine falls back to
  scalar ``plan()`` for everything they do not model -- snaked splits,
  bounded skew, the cell sizer -- so greedy decisions never change.

Exact-greedy runs (no ``candidate_limit``) also repair orphaned
best-pair pointers *lazily*: pair costs are immutable and an orphan's
candidate set only shrinks until its entry pops, so the stale heap
entry's cost can only underestimate the node's true current best and
the recompute safely waits for :meth:`_pop_valid_pair`'s
partner-inactive branch.  ``candidate_limit`` runs keep the eager
per-merge repair -- their k-nearest candidate snapshots are
time-sensitive.

:class:`MergerStats` counts plans, cache hits, heap traffic, index
queries, pruned probes, kernel batches, and reused distances; the
scaling benches (``benchmarks/test_complexity_dme_cache.py``,
``benchmarks/test_dme_vectorize.py``) record them.
"""

from __future__ import annotations

import heapq
import logging
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.activity.probability import ActivityOracle
from repro.check.errors import InputError, InternalInvariantError
from repro.cts.candidate_index import SegmentGridIndex
from repro.obs import (
    get_registry,
    get_tracer,
    publish_index_stats,
    publish_merger_stats,
)
from repro.cts.merge import SplitResult, Tap, merge_regions, zero_skew_split
from repro.cts.topology import ClockNode, ClockTree, Sink
from repro.geometry.point import Point
from repro.quantity import LengthUm, Probability
from repro.tech.parameters import GateModel, Technology

try:  # NumPy is a declared dependency, but the scalar engine must stay
    # importable without it; vectorize silently degrades to scalar.
    from repro.cts import kernels as _kernels
except ImportError:  # pragma: no cover - NumPy present in CI images
    _kernels = None


@dataclass(frozen=True)
class CellDecision:
    """What to put at the top of a new edge."""

    cell: Optional[GateModel]
    maskable: bool = False

    def __post_init__(self):
        if self.maskable and self.cell is None:
            raise InputError("a maskable edge needs a gate cell", field="cell")


class CellPolicy:
    """Decides the cell on each new edge during bottom-up merging.

    ``decide`` must be a pure function of its arguments: the merger may
    call it more than once per candidate pair (e.g. from a cost lower
    bound) and caches the resulting plans.
    """

    needs_merged_probability = False
    """Set True when :meth:`decide` uses the merged node's P(EN)."""

    def decide(
        self,
        child: ClockNode,
        merged_probability: Optional[Probability],
        distance: LengthUm,
        tech: Technology,
    ) -> CellDecision:
        raise NotImplementedError

    def uniform_decision(self, tech: Technology) -> Optional[CellDecision]:
        """The constant decision this policy takes on *every* edge.

        Policies whose :meth:`decide` ignores the child, probability
        and distance arguments return that constant here; the
        vectorized cost kernels rely on it to evaluate whole candidate
        batches without per-pair ``decide`` calls.  The default
        ``None`` (for data-dependent policies such as merge-time gate
        reduction) simply keeps those batches on the scalar path -- it
        can never change a decision.
        """
        return None


class NoCellPolicy(CellPolicy):
    """Plain wires everywhere (unbuffered Tsay/DME tree)."""

    def decide(self, child, merged_probability, distance, tech) -> CellDecision:
        return CellDecision(cell=None)

    def uniform_decision(self, tech: Technology) -> Optional[CellDecision]:
        return CellDecision(cell=None)


class BufferEveryEdgePolicy(CellPolicy):
    """The baseline's buffer on every edge (never maskable)."""

    def decide(self, child, merged_probability, distance, tech) -> CellDecision:
        return CellDecision(cell=tech.buffer, maskable=False)

    def uniform_decision(self, tech: Technology) -> Optional[CellDecision]:
        return CellDecision(cell=tech.buffer, maskable=False)


class GateEveryEdgePolicy(CellPolicy):
    """The paper's default: a masking gate on every edge."""

    def decide(self, child, merged_probability, distance, tech) -> CellDecision:
        return CellDecision(cell=tech.masking_gate, maskable=True)

    def uniform_decision(self, tech: Technology) -> Optional[CellDecision]:
        return CellDecision(cell=tech.masking_gate, maskable=True)


@dataclass
class MergePlan:
    """Everything known about a candidate merge before committing it."""

    a_id: int
    b_id: int
    distance: LengthUm
    decision_a: CellDecision
    decision_b: CellDecision
    split: SplitResult
    merged_mask: int
    merged_probability: Optional[Probability]


@dataclass
class MergerStats:
    """Counters of the greedy engine's work, for benches and reports.

    ``plans_computed`` is the number of full :meth:`BottomUpMerger.plan`
    evaluations (zero-skew split + oracle statistics); everything the
    caching/pruning layers save shows up as ``plan_cache_hits`` and
    ``pruned_probes`` instead.

    The kernel counters track the vectorized screens:
    ``kernel_batches`` batched evaluations, ``kernel_candidates``
    candidate lanes they covered, and ``kernel_scalar_fallbacks``
    lanes handed back to the scalar ``plan()`` because the kernels do
    not model them (snaked splits).  ``distance_reuses`` counts
    ``plan()`` calls that received an already-measured segment distance
    instead of re-deriving it.

    The repair counters split best-pair recomputations by trigger:
    ``orphan_recomputes`` eager per-merge repairs of nodes whose best
    partner retired (``candidate_limit`` runs), ``repair_recomputes``
    lazy repairs taken when a stale best pair actually popped from the
    heap (exact-greedy runs).
    """

    plans_computed: int = 0
    plan_cache_hits: int = 0
    heap_pops: int = 0
    stale_entries: int = 0
    index_queries: int = 0
    pruned_probes: int = 0
    distance_reuses: int = 0
    kernel_batches: int = 0
    kernel_candidates: int = 0
    kernel_scalar_fallbacks: int = 0
    orphan_recomputes: int = 0
    repair_recomputes: int = 0

    @property
    def cost_probes(self) -> int:
        """Pair-cost requests answered (computed, cached, or pruned)."""
        return self.plans_computed + self.plan_cache_hits + self.pruned_probes

    def snapshot(self) -> Dict[str, int]:
        """Stable-key dict of every counter (plus derived totals).

        The keys are a public contract: the metrics exporters
        (``repro.obs``), :func:`repro.analysis.report.format_merger_stats`
        and the benches all read this instead of the attributes.
        """
        return {
            "plans_computed": self.plans_computed,
            "plan_cache_hits": self.plan_cache_hits,
            "heap_pops": self.heap_pops,
            "stale_entries": self.stale_entries,
            "index_queries": self.index_queries,
            "pruned_probes": self.pruned_probes,
            "distance_reuses": self.distance_reuses,
            "kernel_batches": self.kernel_batches,
            "kernel_candidates": self.kernel_candidates,
            "kernel_scalar_fallbacks": self.kernel_scalar_fallbacks,
            "orphan_recomputes": self.orphan_recomputes,
            "repair_recomputes": self.repair_recomputes,
            "cost_probes": self.cost_probes,
        }

    def as_dict(self) -> Dict[str, int]:
        """Alias of :meth:`snapshot` (kept for existing callers)."""
        return self.snapshot()


PairCost = Callable[["MergePlan", "BottomUpMerger"], float]

logger = logging.getLogger(__name__)

#: Relative shrink applied to cost lower bounds before they are allowed
#: to prune a candidate.  Rounding between a bound and the exact cost
#: differs by at most a few ulps (~1e-15 relative); the margin is a
#: thousand times that, yet negligible against any real cost gap.
_LOWER_BOUND_MARGIN = 1.0 - 1e-12


def nearest_neighbor_cost(plan: MergePlan, merger: "BottomUpMerger") -> LengthUm:
    """Geometric distance between merging segments (Edahiro-style)."""
    return plan.distance


def _nearest_neighbor_lower_bound(
    merger: "BottomUpMerger", na: ClockNode, nb: ClockNode, distance: LengthUm
) -> LengthUm:
    """The distance *is* the cost, so the bound is exact."""
    return distance


def _nearest_neighbor_batch_cost(merger, nid, others, distance, split=None):
    """Exact batched costs: the cost *is* the batched distance.

    ``batch_cost`` hooks receive the querying node, the candidate id
    array, their batched segment distances and (only when the cost sets
    ``batch_cost_needs_split``) a :class:`repro.cts.kernels.BatchSplit`.
    They must return per-lane costs bit-identical to ``cost(plan(...))``
    and symmetric under pair orientation.
    """
    return distance


def _nearest_neighbor_batch_lower_bound(merger, nid, others, distance):
    """Batched form of the (exact) distance lower bound."""
    return distance


nearest_neighbor_cost.lower_bound = _nearest_neighbor_lower_bound
nearest_neighbor_cost.batch_cost = _nearest_neighbor_batch_cost
nearest_neighbor_cost.batch_cost_needs_split = False
nearest_neighbor_cost.batch_lower_bound = _nearest_neighbor_batch_lower_bound


class BottomUpMerger:
    """Greedy bottom-up zero-skew merger with top-down embedding.

    Parameters
    ----------
    sinks:
        The clock sinks (at least one).
    tech:
        Technology constants.
    cost:
        Pair cost; the next merge is always a currently cheapest pair.
    cell_policy:
        Decides buffers/gates on new edges.
    oracle:
        Activity oracle; when given, every node is annotated with
        ``P(EN)`` / ``P_tr(EN)`` of its module set.  Without it all
        nodes behave as always-on (baseline trees).
    controller_point:
        Location of the gate controller, for costs that include
        controller-wiring terms.  Defaults to the sink bounding-box
        center (the paper's "center of the chip").
    candidate_limit:
        Optional k-nearest-neighbour candidate restriction.
    cell_sizer:
        Optional sizing hook (e.g.
        :class:`repro.core.gate_sizing.GateSizingPolicy`): given a
        merge whose unit-size split snakes, it may resize the new
        edges' cells to balance the delays with less wire.  Sizing may
        swap cells after the split, which invalidates the pin terms of
        cost lower bounds, so it disables lower-bound pruning.
    plan_cache / cost_pruning / spatial_index / vectorize:
        Debug flags for the four optimization layers (all on by
        default).  Turning any of them off changes no greedy decision,
        only how much work the engine does; the determinism tests and
        the scaling benches run both settings and compare traces.
        ``vectorize`` batch-evaluates candidate screens with the NumPy
        kernels of :mod:`repro.cts.kernels` for costs exposing batch
        hooks; everything the kernels do not model falls back to the
        scalar path automatically.
    """

    def __init__(
        self,
        sinks: Sequence[Sink],
        tech: Technology,
        cost: PairCost = nearest_neighbor_cost,
        cell_policy: Optional[CellPolicy] = None,
        oracle: Optional[ActivityOracle] = None,
        controller_point: Optional[Point] = None,
        candidate_limit: Optional[int] = None,
        cell_sizer=None,
        skew_bound: float = 0.0,
        plan_cache: bool = True,
        cost_pruning: bool = True,
        spatial_index: bool = True,
        vectorize: bool = True,
    ):
        if not sinks:
            raise InputError("at least one sink is required")
        if candidate_limit is not None and candidate_limit < 1:
            raise InputError(
                "candidate_limit must be positive", field="candidate_limit"
            )
        if not math.isfinite(skew_bound) or skew_bound < 0:
            raise InputError(
                "skew_bound must be non-negative", field="skew_bound"
            )
        self.tech = tech
        self.cost = cost
        self.cell_policy = cell_policy or NoCellPolicy()
        self.oracle = oracle
        self.candidate_limit = candidate_limit
        self.cell_sizer = cell_sizer
        self.skew_bound = skew_bound
        self._needs_merged_probability = bool(
            self.cell_policy.needs_merged_probability
            or getattr(cost, "needs_merged_probability", False)
        )
        self.stats = MergerStats()
        self._plan_cache_enabled = plan_cache
        self._plan_cache: Dict[Tuple[int, int], MergePlan] = {}
        self._plan_partners: Dict[int, Set[int]] = {}
        self._lower_bound = getattr(cost, "lower_bound", None)
        self._prune = bool(
            cost_pruning and self._lower_bound is not None and cell_sizer is None
        )
        self.tree = ClockTree(tech)
        for sink in sinks:
            node = self.tree.add_leaf(sink)
            if oracle is not None:
                stats = oracle.statistics(node.module_mask)
                node.enable_probability = stats.signal_probability
                node.enable_transition_probability = stats.transition_probability
        if controller_point is None:
            xs = [s.location.x for s in sinks]
            ys = [s.location.y for s in sinks]
            controller_point = Point(
                (min(xs) + max(xs)) / 2.0, (min(ys) + max(ys)) / 2.0
            )
        self.controller_point = controller_point
        self._active: Set[int] = set(range(len(sinks)))
        self._best: Dict[int, Tuple[float, int, int]] = {}
        self._reverse: Dict[int, Set[int]] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._generation = 0
        self._index: Optional[SegmentGridIndex] = None
        if spatial_index and candidate_limit is not None and len(sinks) > 1:
            self._index = SegmentGridIndex(self._index_cell_size(sinks))
            for nid in self._active:
                self._index.insert(nid, self.tree.node(nid).merging_segment)
        self._vectorize = bool(vectorize) and _kernels is not None
        self.node_arrays = None
        """Struct-of-arrays mirror (:class:`repro.cts.kernels.NodeArrays`)
        of active-node state, ``None`` when ``vectorize`` is off.  Batch
        cost hooks read candidate rows from it by id."""
        self._active_ids = None
        self._batch_cost = getattr(cost, "batch_cost", None)
        self._batch_cost_needs_split = bool(
            getattr(cost, "batch_cost_needs_split", False)
        )
        # Orientable batch costs accept ``swapped=True`` and evaluate
        # the (other, nid) orientation bit-exactly, so the canonical
        # initialization scans can exact-screen them too.
        self._batch_cost_orientable = bool(
            getattr(cost, "batch_cost_orientable", False)
        )
        self._batch_bound = getattr(cost, "batch_lower_bound", None)
        uniform = None
        self._signatures_ok = False
        if self._vectorize:
            uniform = self.cell_policy.uniform_decision(tech)
            # Activation signatures ride in an int64 array column, so
            # batched merged probabilities need the ISA to fit 63 bits;
            # wider ISAs keep the scalar per-pair oracle lookups.
            self._signatures_ok = bool(
                oracle is not None
                and getattr(oracle, "signature_bits", 64) <= 63
            )
            capacity = 2 * len(sinks) - 1
            self.node_arrays = _kernels.NodeArrays(capacity)
            for nid in range(len(sinks)):
                node = self.tree.node(nid)
                self.node_arrays.set_row(
                    nid, node, sig=self._node_signature(node)
                )
            self._active_ids = _kernels.ActiveIds(range(len(sinks)), capacity)
        self._uniform_decision = uniform
        # The exact screen replaces per-candidate plan() evaluation, so
        # it must cover every case bit-exactly: no bounded skew, no
        # sizing, and -- for costs that need the split -- a uniform
        # cell decision to feed the cell-aware batch split.  The cost's
        # optional ``batch_cost_ready`` hook gets the final say: the
        # switched-capacitance costs decline without a uniform decision
        # or (when they need merged probabilities) usable signatures.
        ready = getattr(cost, "batch_cost_ready", None)
        cost_ready = self._batch_cost is not None and (
            ready is None or bool(ready(self))
        )
        cells_modeled = uniform is not None
        self._exact_screen = bool(
            self._vectorize
            and cost_ready
            and self.skew_bound == 0
            and self.cell_sizer is None
            and (not self._batch_cost_needs_split or cells_modeled)
        )
        # The bound screen only reorders/batches lower bounds the
        # scalar pruning path would have computed anyway; the hook
        # itself declines (returns None) when it cannot vectorize.
        self._bound_screen = bool(
            self._vectorize and self._prune and self._batch_bound is not None
        )
        # Exact-greedy runs repair orphaned best pairs lazily at pop
        # time (see the module docstring); candidate_limit runs must
        # stay eager because their k-nearest candidate snapshots are
        # taken relative to the *current* active set.
        self._eager_repair = candidate_limit is not None
        self._index_batch = (
            self._index_batch_distance if self.node_arrays is not None else None
        )
        self.merge_trace: List[Tuple[int, int, int]] = []
        """(left, right, merged) triples, in merge order -- for tests."""

    @staticmethod
    def _index_cell_size(sinks: Sequence[Sink]) -> float:
        """Grid pitch near the expected nearest-neighbour spacing."""
        us = [s.location.u for s in sinks]
        vs = [s.location.v for s in sinks]
        span = max(max(us) - min(us), max(vs) - min(vs))
        if span <= 0.0:
            return 1.0
        return span / max(1.0, math.sqrt(len(sinks)))

    # ------------------------------------------------------------------
    # planning and executing a single merge
    # ------------------------------------------------------------------
    def _node_signature(self, node: ClockNode) -> int:
        """Activation signature stored with the node's array row.

        Zero when signatures are unusable (no oracle, or an ISA wider
        than the int64 column) -- the batched cost hooks then decline
        and the scalar oracle lookups take over.
        """
        if not self._signatures_ok:
            return 0
        return self.oracle.activation_signature(node.module_mask)

    def merged_probability(self, na: ClockNode, nb: ClockNode) -> Optional[float]:
        """``P(EN)`` of the union module set, exactly as :meth:`plan`
        computes it (``None`` when the cost/policy does not need it)."""
        if self._needs_merged_probability and self.oracle is not None:
            return self.oracle.signal_probability(na.module_mask | nb.module_mask)
        return None

    def plan(
        self, a_id: int, b_id: int, distance: Optional[float] = None
    ) -> MergePlan:
        """Evaluate the merge of two active subtrees without committing.

        ``distance`` threads an already-measured segment distance (from
        a candidate ranking or a kernel screen) so the plan does not
        re-derive it.  ``Trr.distance_to`` is symmetric at the bit
        level -- the interval-gap arguments merely swap under ``max`` --
        so a measurement taken in either pair orientation is exact.
        """
        self.stats.plans_computed += 1
        na, nb = self.tree.node(a_id), self.tree.node(b_id)
        if distance is None:
            distance = na.merging_segment.distance_to(nb.merging_segment)
        else:
            self.stats.distance_reuses += 1
        merged_mask = na.module_mask | nb.module_mask
        merged_probability = None
        if self._needs_merged_probability and self.oracle is not None:
            merged_probability = self.oracle.signal_probability(merged_mask)
        decision_a = self.cell_policy.decide(na, merged_probability, distance, self.tech)
        decision_b = self.cell_policy.decide(nb, merged_probability, distance, self.tech)
        if self.skew_bound > 0:
            from repro.cts.bounded import bounded_skew_split

            split = bounded_skew_split(
                distance,
                Tap(cap=na.subtree_cap, delay=na.sink_delay, cell=decision_a.cell),
                na.sink_delay_min,
                Tap(cap=nb.subtree_cap, delay=nb.sink_delay, cell=decision_b.cell),
                nb.sink_delay_min,
                self.skew_bound,
                self.tech,
            )
        else:
            split = zero_skew_split(
                distance,
                Tap(cap=na.subtree_cap, delay=na.sink_delay, cell=decision_a.cell),
                Tap(cap=nb.subtree_cap, delay=nb.sink_delay, cell=decision_b.cell),
                self.tech,
            )
        # Sizing re-balances to exact zero skew, which is always within
        # any bound; it only engages when the split had to snake.
        if self.cell_sizer is not None and split.snaked is not None:
            decision_a, decision_b, split = self.cell_sizer.resolve(
                distance,
                na.subtree_cap,
                na.sink_delay,
                decision_a,
                nb.subtree_cap,
                nb.sink_delay,
                decision_b,
                self.tech,
                split,
            )
        return MergePlan(
            a_id=a_id,
            b_id=b_id,
            distance=distance,
            decision_a=decision_a,
            decision_b=decision_b,
            split=split,
            merged_mask=merged_mask,
            merged_probability=merged_probability,
        )

    def _plan_pair(
        self, a_id: int, b_id: int, distance: Optional[float] = None
    ) -> MergePlan:
        """:meth:`plan` through the memo.

        Keys are *ordered* pairs: ``plan(a, b)`` and ``plan(b, a)``
        agree to rounding but not bit-for-bit (the split solves for the
        other side's edge first), and a cache must never change any
        float an uncached run would have produced.
        """
        if not self._plan_cache_enabled:
            return self.plan(a_id, b_id, distance)
        key = (a_id, b_id)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self.stats.plan_cache_hits += 1
            return cached
        plan = self.plan(a_id, b_id, distance)
        self._plan_cache[key] = plan
        self._plan_partners.setdefault(a_id, set()).add(b_id)
        self._plan_partners.setdefault(b_id, set()).add(a_id)
        return plan

    def _invalidate_plans(self, nid: int) -> None:
        """Drop every cached plan involving a retired node."""
        partners = self._plan_partners.pop(nid, None)
        if not partners:
            return
        for other in partners:
            self._plan_cache.pop((nid, other), None)
            self._plan_cache.pop((other, nid), None)
            remaining = self._plan_partners.get(other)
            if remaining is not None:
                remaining.discard(nid)
                if not remaining:
                    del self._plan_partners[other]

    def execute(self, plan: MergePlan) -> ClockNode:
        """Commit a planned merge: create the internal node."""
        na, nb = self.tree.node(plan.a_id), self.tree.node(plan.b_id)
        region = merge_regions(na.merging_segment, nb.merging_segment, plan.split)
        merged = self.tree.add_internal(plan.a_id, plan.b_id, region)

        na.edge_length = plan.split.length_a
        na.edge_cell = plan.decision_a.cell
        na.edge_maskable = plan.decision_a.maskable
        na.snaked = plan.split.snaked == "a"
        nb.edge_length = plan.split.length_b
        nb.edge_cell = plan.decision_b.cell
        nb.edge_maskable = plan.decision_b.maskable
        nb.snaked = plan.split.snaked == "b"

        merged.module_mask = plan.merged_mask
        merged.subtree_cap = plan.split.merged_cap
        merged.sink_delay = plan.split.delay
        merged.sink_delay_min = plan.split.earliest_delay
        if self.oracle is not None:
            stats = self.oracle.statistics(plan.merged_mask)
            merged.enable_probability = stats.signal_probability
            merged.enable_transition_probability = stats.transition_probability
        self.merge_trace.append((plan.a_id, plan.b_id, merged.id))
        return merged

    # ------------------------------------------------------------------
    # greedy pair selection
    # ------------------------------------------------------------------
    def _pair_cost(
        self, a_id: int, b_id: int, distance: Optional[float] = None
    ) -> float:
        return self.cost(self._plan_pair(a_id, b_id, distance), self)

    def _candidates_for(self, nid: int) -> List[int]:
        limit = self.candidate_limit
        if limit is None or len(self._active) - (nid in self._active) <= limit:
            return [o for o in self._active if o != nid]
        ms = self.tree.node(nid).merging_segment
        if self._index is not None:
            self.stats.index_queries += 1
            return self._index.nearest(
                ms, limit, exclude=nid, batch_distance=self._index_batch
            )
        others = [o for o in self._active if o != nid]
        others.sort(key=lambda o: (ms.distance_to(self.tree.node(o).merging_segment), o))
        return others[:limit]

    # ------------------------------------------------------------------
    # vectorized candidate screens
    # ------------------------------------------------------------------
    def _batch_distances(self, nid: int, ids):
        """Batched ``Trr.distance_to`` from ``nid`` to each candidate id."""
        self.stats.kernel_batches += 1
        self.stats.kernel_candidates += int(ids.size)
        seg = self.tree.node(nid).merging_segment
        arrays = self.node_arrays
        return _kernels.batch_segment_distance(
            seg.ulo,
            seg.uhi,
            seg.vlo,
            seg.vhi,
            arrays.ulo[ids],
            arrays.uhi[ids],
            arrays.vlo[ids],
            arrays.vhi[ids],
        )

    def _index_batch_distance(self, segment, ids) -> List[float]:
        """``batch_distance`` hook for :meth:`SegmentGridIndex.nearest`.

        Answers one grid ring's exact segment distances with a single
        kernel call; bit-identical to the per-candidate
        ``Trr.distance_to`` loop the index runs without the hook.
        """
        arr = _kernels.as_id_array(ids)
        self.stats.kernel_batches += 1
        self.stats.kernel_candidates += int(arr.size)
        arrays = self.node_arrays
        return _kernels.batch_segment_distance(
            segment.ulo,
            segment.uhi,
            segment.vlo,
            segment.vhi,
            arrays.ulo[arr],
            arrays.uhi[arr],
            arrays.vlo[arr],
            arrays.vhi[arr],
        ).tolist()

    def _kernel_candidates(self, nid: int):
        """:meth:`_candidates_for` as an id array, sorts batched."""
        limit = self.candidate_limit
        others = self._active_ids.others(nid)
        if limit is None or others.size <= limit:
            return others
        if self._index is not None:
            self.stats.index_queries += 1
            ms = self.tree.node(nid).merging_segment
            return _kernels.as_id_array(
                self._index.nearest(
                    ms, limit, exclude=nid, batch_distance=self._index_batch
                )
            )
        distance = self._batch_distances(nid, others)
        return others[_kernels.rank_by_cost(others, distance)[:limit]]

    def _screen_costs(self, nid: int, ids, canonical: bool = False):
        """Exact batched ``(costs, distances)`` over candidate ids.

        Per-lane costs are bit-identical to ``self.cost`` over scalar
        plans: in-range zero-skew lanes come from the batch kernels,
        every lane the kernels cannot model (snaked splits) falls back
        to a scalar plan, counted in ``kernel_scalar_fallbacks``.
        ``canonical`` evaluates every pair in ``(min id, max id)``
        orientation, matching the scalar initialization scans: for
        split-dependent costs, candidates below ``nid`` run through a
        *swapped* sub-batch (the split kernel is broadcasting-
        symmetric, so swapped lanes reproduce ``plan(other, nid)`` bit
        for bit).
        """
        distance = self._batch_distances(nid, ids)
        if not self._batch_cost_needs_split:
            return self._batch_cost(self, nid, ids, distance, None), distance
        if canonical:
            lo = ids < nid
            if lo.all():
                costs = self._oriented_costs(nid, ids, distance, swapped=True)
                return costs, distance
            if lo.any():
                hi = ~lo
                costs = _kernels.scatter_by_mask(
                    lo,
                    self._oriented_costs(
                        nid, ids[lo], distance[lo], swapped=True
                    ),
                    self._oriented_costs(
                        nid, ids[hi], distance[hi], swapped=False
                    ),
                )
                return costs, distance
        return self._oriented_costs(nid, ids, distance, swapped=False), distance

    def _oriented_costs(self, nid: int, ids, distance, swapped: bool):
        """Batched split-dependent costs for one pair orientation.

        ``swapped=False`` evaluates ``(nid, other)`` lanes;
        ``swapped=True`` evaluates ``(other, nid)`` -- the orientation
        the canonical scans need for candidates below ``nid``.  Lanes
        the split kernel cannot model fall back to a scalar plan in
        the matching orientation.
        """
        node = self.tree.node(nid)
        uniform = self._uniform_decision
        cell = uniform.cell if uniform is not None else None
        side_nid = (node.subtree_cap, node.sink_delay)
        side_oth = (self.node_arrays.cap[ids], self.node_arrays.delay[ids])
        (cap_a, delay_a), (cap_b, delay_b) = (
            (side_oth, side_nid) if swapped else (side_nid, side_oth)
        )
        split = _kernels.batch_zero_skew_split(
            distance,
            cap_a,
            delay_a,
            cap_b,
            delay_b,
            self.tech.unit_wire_resistance,
            self.tech.unit_wire_capacitance,
            cell_a=cell,
            cell_b=cell,
        )
        if swapped:
            costs = self._batch_cost(
                self, nid, ids, distance, split, swapped=True
            )
        else:
            costs = self._batch_cost(self, nid, ids, distance, split)
        lanes = _kernels.out_of_range_lanes(split)
        if lanes:
            costs = costs.copy()
            for j in lanes:
                other = int(ids[j])
                d = float(distance[j])
                if swapped:
                    costs[j] = self._pair_cost(other, nid, distance=d)
                else:
                    costs[j] = self._pair_cost(nid, other, distance=d)
                self.stats.kernel_scalar_fallbacks += 1
        return costs

    def _kernel_rank(self, nid: int, candidates: List[int]):
        """Batched lower bounds for :meth:`_ranked_candidates`, or
        ``None`` when the cost's ``batch_lower_bound`` declines."""
        ids = _kernels.as_id_array(candidates)
        distance = self._batch_distances(nid, ids)
        bounds = self._batch_bound(self, nid, ids, distance)
        if bounds is None:
            return None
        scaled = bounds * _LOWER_BOUND_MARGIN
        order = _kernels.rank_by_cost(ids, scaled)
        return list(
            zip(
                scaled[order].tolist(),
                ids[order].tolist(),
                distance[order].tolist(),
            )
        )

    def _ranked_candidates(
        self, nid: int
    ) -> List[Tuple[Optional[float], int, Optional[float]]]:
        """Candidates as ``(cost lower bound, id, distance)``, cheapest
        bound first.

        Without pruning the bound and distance are ``None`` and the
        original candidate order is kept.  The measured distance rides
        along so the plan evaluation that usually follows can reuse it
        (:attr:`MergerStats.distance_reuses`).
        """
        candidates = self._candidates_for(nid)
        if not self._prune:
            return [(None, o, None) for o in candidates]
        if self._bound_screen and candidates:
            ranked = self._kernel_rank(nid, candidates)
            if ranked is not None:
                return ranked
        node = self.tree.node(nid)
        ms = node.merging_segment
        scored = []
        for other in candidates:
            peer = self.tree.node(other)
            distance = ms.distance_to(peer.merging_segment)
            bound = self._lower_bound(self, node, peer, distance)
            scored.append((bound * _LOWER_BOUND_MARGIN, other, distance))
        scored.sort()
        return scored

    def _set_best(self, nid: int, cost: float, partner: int) -> None:
        old = self._best.get(nid)
        if old is not None:
            self._reverse.get(old[1], set()).discard(nid)
        self._generation += 1
        self._best[nid] = (cost, partner, self._generation)
        self._reverse.setdefault(partner, set()).add(nid)
        heapq.heappush(self._heap, (cost, nid, self._generation))

    def _recompute_best(self, nid: int, canonical: bool = False) -> None:
        """Re-scan a node's candidates for its cheapest partner.

        ``canonical`` evaluates each pair in ``(min id, max id)``
        orientation -- used by the exact-greedy initialization so the
        pruned per-node scans reproduce, bit for bit, the costs the
        shared all-pairs loop would have produced (``plan(a, b)`` and
        ``plan(b, a)`` agree only to rounding).

        With an exact kernel screen one batch ranks every candidate by
        ``(cost, id)`` -- the same comparison the scalar loop applies,
        over the same bit-identical floats -- and only the winner gets
        a scalar plan.  Split-dependent batch costs join the canonical
        scans only when they declare ``batch_cost_orientable``: the
        screen then evaluates candidates below ``nid`` through swapped
        sub-batches (see :meth:`_screen_costs`); non-orientable costs
        keep the pruned scalar canonical scan.
        """
        if self._exact_screen and not (
            canonical
            and self._batch_cost_needs_split
            and not self._batch_cost_orientable
        ):
            ids = self._kernel_candidates(nid)
            if ids.size == 0:
                self._best.pop(nid, None)
                return
            costs, distance = self._screen_costs(nid, ids, canonical=canonical)
            j = int(_kernels.rank_by_cost(ids, costs)[0])
            partner = int(ids[j])
            d = float(distance[j])
            if canonical and partner < nid:
                cost = self._pair_cost(partner, nid, distance=d)
            else:
                cost = self._pair_cost(nid, partner, distance=d)
            self._set_best(nid, cost, partner)
            return
        best_cost, best_partner = None, None
        ranked = self._ranked_candidates(nid)
        for i, (bound, other, distance) in enumerate(ranked):
            if (
                bound is not None
                and best_cost is not None
                and (bound, other) >= (best_cost, best_partner)
            ):
                # Ranked by bound, so no later candidate can win either.
                self.stats.pruned_probes += len(ranked) - i
                break
            if canonical and other < nid:
                cost = self._pair_cost(other, nid, distance=distance)
            else:
                cost = self._pair_cost(nid, other, distance=distance)
            if best_cost is None or (cost, other) < (best_cost, best_partner):
                best_cost, best_partner = cost, other
        if best_partner is None:
            self._best.pop(nid, None)
            return
        self._set_best(nid, best_cost, best_partner)

    def _initialize_best(self) -> None:
        if self.candidate_limit is not None:
            for nid in sorted(self._active):
                self._recompute_best(nid)
            return
        if self._prune or (
            self._exact_screen
            and (not self._batch_cost_needs_split or self._batch_cost_orientable)
        ):
            # Same outcome as the all-pairs loop below (canonical pair
            # orientation keeps every cost float identical), but the
            # lower-bound pruning -- or the exact kernel screen --
            # skips almost every plan evaluation.
            for nid in sorted(self._active):
                self._recompute_best(nid, canonical=True)
            return
        ids = sorted(self._active)
        best: Dict[int, Tuple[float, int]] = {}
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                cost = self._pair_cost(a, b)
                if a not in best or (cost, b) < best[a]:
                    best[a] = (cost, b)
                if b not in best or (cost, a) < best[b]:
                    best[b] = (cost, a)
        for nid, (cost, partner) in best.items():
            self._set_best(nid, cost, partner)

    def _pop_valid_pair(self) -> Tuple[int, int]:
        while self._heap:
            cost, nid, generation = heapq.heappop(self._heap)
            self.stats.heap_pops += 1
            if nid not in self._active:
                self.stats.stale_entries += 1
                continue
            current = self._best.get(nid)
            if current is None or current[2] != generation:
                self.stats.stale_entries += 1
                continue  # superseded by a newer _set_best
            partner = current[1]
            if partner not in self._active:
                # Lazy repair: the stale entry's cost never exceeded
                # this node's true current best, so it could not have
                # won a pop over any valid pair (module docstring).
                self.stats.repair_recomputes += 1
                self._recompute_best(nid)
                continue
            return nid, partner
        # The merge loop always leaves >= 2 active nodes with mutual
        # best pointers; an empty heap here means the bookkeeping
        # (generation counters, reverse pointers) broke mid-run.
        survivor = min(self._active) if self._active else None
        raise InternalInvariantError(
            "no mergeable pair left among %d active node(s) "
            "(best-pair heap drained; internal error)" % len(self._active),
            node=survivor,
        )

    def _retire(self, nid: int) -> Set[int]:
        """Deactivate a node; return nodes that pointed at it."""
        self._active.discard(nid)
        if self._active_ids is not None:
            self._active_ids.discard(nid)
        self._best.pop(nid, None)
        self._invalidate_plans(nid)
        if self._index is not None and nid in self._index:
            self._index.remove(nid)
        return self._reverse.pop(nid, set())

    def _activate(self, nid: int) -> None:
        """Mark a node active in the set, id array, and spatial index."""
        self._active.add(nid)
        if self._active_ids is not None:
            self._active_ids.add(nid)
        if self._index is not None:
            self._index.insert(nid, self.tree.node(nid).merging_segment)

    def _introduce(self, merged_id: int) -> None:
        """Register a new subtree and refresh neighbours' best pairs."""
        if self.node_arrays is not None:
            node = self.tree.node(merged_id)
            self.node_arrays.set_row(
                merged_id, node, sig=self._node_signature(node)
            )
        if self._exact_screen:
            self._introduce_screened(merged_id)
            return
        best_cost, best_partner = None, None
        for bound, other, distance in self._ranked_candidates(merged_id):
            if bound is not None:
                need_self = best_cost is None or (bound, other) < (
                    best_cost,
                    best_partner,
                )
                current = self._best.get(other)
                need_other = current is None or bound < current[0]
                if not (need_self or need_other):
                    self.stats.pruned_probes += 1
                    continue
            cost = self._pair_cost(merged_id, other, distance=distance)
            if best_cost is None or (cost, other) < (best_cost, best_partner):
                best_cost, best_partner = cost, other
            current = self._best.get(other)
            if current is None or (cost, merged_id) < (current[0], current[1]):
                self._set_best(other, cost, merged_id)
        self._activate(merged_id)
        if best_partner is not None:
            self._set_best(merged_id, best_cost, best_partner)

    def _introduce_screened(self, merged_id: int) -> None:
        """Kernel-screened :meth:`_introduce`.

        One batch evaluates every candidate's exact pair cost; only the
        new node's winning partner gets a scalar plan.  Neighbour
        updates apply the scalar loop's exact condition
        ``(cost, merged_id) < (current cost, current partner)`` to the
        bit-identical batched costs, so the resulting best-pair state
        matches the scalar path's (update *order* differs, but
        generation staleness makes heap outcomes order-independent).
        """
        ids = self._kernel_candidates(merged_id)
        best_cost, best_partner = None, None
        if ids.size:
            costs, distance = self._screen_costs(merged_id, ids)
            order = _kernels.rank_by_cost(ids, costs)
            j = int(order[0])
            best_partner = int(ids[j])
            best_cost = self._pair_cost(
                merged_id, best_partner, distance=float(distance[j])
            )
            for j in order.tolist():
                other = int(ids[j])
                cost = float(costs[j])
                current = self._best.get(other)
                if current is None or (cost, merged_id) < (current[0], current[1]):
                    self._set_best(other, cost, merged_id)
        self._activate(merged_id)
        if best_partner is not None:
            self._set_best(merged_id, best_cost, best_partner)

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------
    def run(self) -> ClockTree:
        """Build the tree: greedy bottom-up merge, then top-down embed."""
        num_sinks = len(self._active)
        logger.debug(
            "merging %d sinks (cost=%s, policy=%s, candidate_limit=%s, "
            "skew_bound=%g)",
            num_sinks,
            getattr(self.cost, "__name__", type(self.cost).__name__),
            type(self.cell_policy).__name__,
            self.candidate_limit,
            self.skew_bound,
        )
        tracer = get_tracer()
        with tracer.span(
            "dme.merge",
            n=num_sinks,
            cost=getattr(self.cost, "__name__", type(self.cost).__name__),
            policy=type(self.cell_policy).__name__,
            candidate_limit=self.candidate_limit,
            vectorize=self._vectorize,
        ) as span:
            if num_sinks == 1:
                (only,) = self._active
                self.tree.set_root(only)
                with tracer.span("dme.embed"):
                    self._place()
                return self.tree
            init_start = time.perf_counter_ns()
            with tracer.span("dme.init_best", n=num_sinks):
                self._initialize_best()
            registry = get_registry()
            registry.gauge("dme.init_best.seconds").set(
                (time.perf_counter_ns() - init_start) / 1e9
            )
            registry.counter("dme.init_best.runs").inc()
            with tracer.span("dme.merge_loop"):
                # The loop knows its exact extent (N-1 merges), which is
                # what makes the progress stream's percent estimate
                # monotonic instead of guessed; tracer.progress is one
                # attribute test when no listener is attached.
                total_merges = len(self._active) - 1
                merges_done = 0
                while len(self._active) > 1:
                    a_id, b_id = self._pop_valid_pair()
                    plan = self._plan_pair(a_id, b_id)
                    merged = self.execute(plan)
                    orphans = (self._retire(a_id) | self._retire(b_id)) & self._active
                    self._introduce(merged.id)
                    if self._eager_repair:
                        for orphan in orphans:
                            current = self._best.get(orphan)
                            if current is None or current[1] not in self._active:
                                self.stats.orphan_recomputes += 1
                                self._recompute_best(orphan)
                    merges_done += 1
                    tracer.progress(merges_done, total_merges)
            (root,) = self._active
            self.tree.set_root(root)
            with tracer.span("dme.embed"):
                self._place()
            span.set(
                plans_computed=self.stats.plans_computed,
                plan_cache_hits=self.stats.plan_cache_hits,
                pruned_probes=self.stats.pruned_probes,
                kernel_batches=self.stats.kernel_batches,
                distance_reuses=self.stats.distance_reuses,
            )
            publish_merger_stats(self.stats)
            publish_index_stats(self._index)
        if logger.isEnabledFor(logging.DEBUG):
            # Guarded: these arguments walk the whole tree.
            logger.debug(
                "tree built: wirelength %.4g, %d gates, root delay %.4g",
                self.tree.total_wirelength(),
                self.tree.gate_count(),
                self.tree.root.sink_delay,
            )
        return self.tree

    def _place(self) -> None:
        """Top-down embedding of merging segments into points."""
        root = self.tree.root
        root.location = root.merging_segment.center()
        for node in self.tree.preorder():
            for child_id in node.children:
                child = self.tree.node(child_id)
                child.location = child.merging_segment.nearest_point_to(node.location)
        self.tree.validate_embedding()
