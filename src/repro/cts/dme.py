"""Deferred-merge embedding with a pluggable greedy objective.

The engine implements the construction shared by the paper's router and
the baselines:

1. **Bottom-up merging** (paper Fig. 2): every subtree root carries a
   merging segment (Manhattan arc).  A greedy loop repeatedly merges
   the pair of active subtrees with minimum *cost*; the cost function
   is a parameter -- geometric distance gives the nearest-neighbour
   baseline, the paper's Eq. 3 gives the min-switched-capacitance
   router.  Each merge performs an exact zero-skew split (with cells
   decided by a pluggable *cell policy*) and computes the new merging
   segment.
2. **Top-down placement**: the root is embedded at the center of its
   merging segment, every child at the point of its own segment
   nearest to its parent's placement.

The greedy pair selection keeps, per active subtree, its current best
partner; a lazy min-heap orders the candidates.  This gives the exact
greedy (same result as scanning all pairs each round) in roughly
O(N^2) cost evaluations.  An optional ``candidate_limit`` restricts
each node's candidates to its k geometrically nearest neighbours --
the speed/quality trade-off explored in the ablation bench.
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.activity.probability import ActivityOracle
from repro.cts.merge import SplitResult, Tap, merge_regions, zero_skew_split
from repro.cts.topology import ClockNode, ClockTree, Sink
from repro.geometry.point import Point
from repro.tech.parameters import GateModel, Technology


@dataclass(frozen=True)
class CellDecision:
    """What to put at the top of a new edge."""

    cell: Optional[GateModel]
    maskable: bool = False

    def __post_init__(self):
        if self.maskable and self.cell is None:
            raise ValueError("a maskable edge needs a gate cell")


class CellPolicy:
    """Decides the cell on each new edge during bottom-up merging."""

    needs_merged_probability = False
    """Set True when :meth:`decide` uses the merged node's P(EN)."""

    def decide(
        self,
        child: ClockNode,
        merged_probability: Optional[float],
        distance: float,
        tech: Technology,
    ) -> CellDecision:
        raise NotImplementedError


class NoCellPolicy(CellPolicy):
    """Plain wires everywhere (unbuffered Tsay/DME tree)."""

    def decide(self, child, merged_probability, distance, tech) -> CellDecision:
        return CellDecision(cell=None)


class BufferEveryEdgePolicy(CellPolicy):
    """The baseline's buffer on every edge (never maskable)."""

    def decide(self, child, merged_probability, distance, tech) -> CellDecision:
        return CellDecision(cell=tech.buffer, maskable=False)


class GateEveryEdgePolicy(CellPolicy):
    """The paper's default: a masking gate on every edge."""

    def decide(self, child, merged_probability, distance, tech) -> CellDecision:
        return CellDecision(cell=tech.masking_gate, maskable=True)


@dataclass
class MergePlan:
    """Everything known about a candidate merge before committing it."""

    a_id: int
    b_id: int
    distance: float
    decision_a: CellDecision
    decision_b: CellDecision
    split: SplitResult
    merged_mask: int
    merged_probability: Optional[float]


PairCost = Callable[["MergePlan", "BottomUpMerger"], float]

logger = logging.getLogger(__name__)


def nearest_neighbor_cost(plan: MergePlan, merger: "BottomUpMerger") -> float:
    """Geometric distance between merging segments (Edahiro-style)."""
    return plan.distance


class BottomUpMerger:
    """Greedy bottom-up zero-skew merger with top-down embedding.

    Parameters
    ----------
    sinks:
        The clock sinks (at least one).
    tech:
        Technology constants.
    cost:
        Pair cost; the next merge is always a currently cheapest pair.
    cell_policy:
        Decides buffers/gates on new edges.
    oracle:
        Activity oracle; when given, every node is annotated with
        ``P(EN)`` / ``P_tr(EN)`` of its module set.  Without it all
        nodes behave as always-on (baseline trees).
    controller_point:
        Location of the gate controller, for costs that include
        controller-wiring terms.  Defaults to the sink bounding-box
        center (the paper's "center of the chip").
    candidate_limit:
        Optional k-nearest-neighbour candidate restriction.
    cell_sizer:
        Optional sizing hook (e.g.
        :class:`repro.core.gate_sizing.GateSizingPolicy`): given a
        merge whose unit-size split snakes, it may resize the new
        edges' cells to balance the delays with less wire.
    """

    def __init__(
        self,
        sinks: Sequence[Sink],
        tech: Technology,
        cost: PairCost = nearest_neighbor_cost,
        cell_policy: Optional[CellPolicy] = None,
        oracle: Optional[ActivityOracle] = None,
        controller_point: Optional[Point] = None,
        candidate_limit: Optional[int] = None,
        cell_sizer=None,
        skew_bound: float = 0.0,
    ):
        if not sinks:
            raise ValueError("at least one sink is required")
        if candidate_limit is not None and candidate_limit < 1:
            raise ValueError("candidate_limit must be positive")
        if skew_bound < 0:
            raise ValueError("skew_bound must be non-negative")
        self.tech = tech
        self.cost = cost
        self.cell_policy = cell_policy or NoCellPolicy()
        self.oracle = oracle
        self.candidate_limit = candidate_limit
        self.cell_sizer = cell_sizer
        self.skew_bound = skew_bound
        self._needs_merged_probability = bool(
            self.cell_policy.needs_merged_probability
            or getattr(cost, "needs_merged_probability", False)
        )
        self.tree = ClockTree(tech)
        for sink in sinks:
            node = self.tree.add_leaf(sink)
            if oracle is not None:
                stats = oracle.statistics(node.module_mask)
                node.enable_probability = stats.signal_probability
                node.enable_transition_probability = stats.transition_probability
        if controller_point is None:
            xs = [s.location.x for s in sinks]
            ys = [s.location.y for s in sinks]
            controller_point = Point(
                (min(xs) + max(xs)) / 2.0, (min(ys) + max(ys)) / 2.0
            )
        self.controller_point = controller_point
        self._active: Set[int] = set(range(len(sinks)))
        self._best: Dict[int, Tuple[float, int]] = {}
        self._reverse: Dict[int, Set[int]] = {}
        self._heap: List[Tuple[float, int]] = []
        self.merge_trace: List[Tuple[int, int, int]] = []
        """(left, right, merged) triples, in merge order -- for tests."""

    # ------------------------------------------------------------------
    # planning and executing a single merge
    # ------------------------------------------------------------------
    def plan(self, a_id: int, b_id: int) -> MergePlan:
        """Evaluate the merge of two active subtrees without committing."""
        na, nb = self.tree.node(a_id), self.tree.node(b_id)
        distance = na.merging_segment.distance_to(nb.merging_segment)
        merged_mask = na.module_mask | nb.module_mask
        merged_probability = None
        if self._needs_merged_probability and self.oracle is not None:
            merged_probability = self.oracle.signal_probability(merged_mask)
        decision_a = self.cell_policy.decide(na, merged_probability, distance, self.tech)
        decision_b = self.cell_policy.decide(nb, merged_probability, distance, self.tech)
        if self.skew_bound > 0:
            from repro.cts.bounded import bounded_skew_split

            split = bounded_skew_split(
                distance,
                Tap(cap=na.subtree_cap, delay=na.sink_delay, cell=decision_a.cell),
                na.sink_delay_min,
                Tap(cap=nb.subtree_cap, delay=nb.sink_delay, cell=decision_b.cell),
                nb.sink_delay_min,
                self.skew_bound,
                self.tech,
            )
        else:
            split = zero_skew_split(
                distance,
                Tap(cap=na.subtree_cap, delay=na.sink_delay, cell=decision_a.cell),
                Tap(cap=nb.subtree_cap, delay=nb.sink_delay, cell=decision_b.cell),
                self.tech,
            )
        # Sizing re-balances to exact zero skew, which is always within
        # any bound; it only engages when the split had to snake.
        if self.cell_sizer is not None and split.snaked is not None:
            decision_a, decision_b, split = self.cell_sizer.resolve(
                distance,
                na.subtree_cap,
                na.sink_delay,
                decision_a,
                nb.subtree_cap,
                nb.sink_delay,
                decision_b,
                self.tech,
                split,
            )
        return MergePlan(
            a_id=a_id,
            b_id=b_id,
            distance=distance,
            decision_a=decision_a,
            decision_b=decision_b,
            split=split,
            merged_mask=merged_mask,
            merged_probability=merged_probability,
        )

    def execute(self, plan: MergePlan) -> ClockNode:
        """Commit a planned merge: create the internal node."""
        na, nb = self.tree.node(plan.a_id), self.tree.node(plan.b_id)
        region = merge_regions(na.merging_segment, nb.merging_segment, plan.split)
        merged = self.tree.add_internal(plan.a_id, plan.b_id, region)

        na.edge_length = plan.split.length_a
        na.edge_cell = plan.decision_a.cell
        na.edge_maskable = plan.decision_a.maskable
        na.snaked = plan.split.snaked == "a"
        nb.edge_length = plan.split.length_b
        nb.edge_cell = plan.decision_b.cell
        nb.edge_maskable = plan.decision_b.maskable
        nb.snaked = plan.split.snaked == "b"

        merged.module_mask = plan.merged_mask
        merged.subtree_cap = plan.split.merged_cap
        merged.sink_delay = plan.split.delay
        merged.sink_delay_min = plan.split.earliest_delay
        if self.oracle is not None:
            stats = self.oracle.statistics(plan.merged_mask)
            merged.enable_probability = stats.signal_probability
            merged.enable_transition_probability = stats.transition_probability
        self.merge_trace.append((plan.a_id, plan.b_id, merged.id))
        return merged

    # ------------------------------------------------------------------
    # greedy pair selection
    # ------------------------------------------------------------------
    def _pair_cost(self, a_id: int, b_id: int) -> float:
        return self.cost(self.plan(a_id, b_id), self)

    def _candidates_for(self, nid: int) -> List[int]:
        others = [o for o in self._active if o != nid]
        limit = self.candidate_limit
        if limit is None or len(others) <= limit:
            return others
        ms = self.tree.node(nid).merging_segment
        others.sort(key=lambda o: (ms.distance_to(self.tree.node(o).merging_segment), o))
        return others[:limit]

    def _set_best(self, nid: int, cost: float, partner: int) -> None:
        old = self._best.get(nid)
        if old is not None:
            self._reverse.get(old[1], set()).discard(nid)
        self._best[nid] = (cost, partner)
        self._reverse.setdefault(partner, set()).add(nid)
        heapq.heappush(self._heap, (cost, nid))

    def _recompute_best(self, nid: int) -> None:
        best_cost, best_partner = None, None
        for other in self._candidates_for(nid):
            cost = self._pair_cost(nid, other)
            if best_cost is None or (cost, other) < (best_cost, best_partner):
                best_cost, best_partner = cost, other
        if best_partner is None:
            self._best.pop(nid, None)
            return
        self._set_best(nid, best_cost, best_partner)

    def _initialize_best(self) -> None:
        if self.candidate_limit is not None:
            for nid in self._active:
                self._recompute_best(nid)
            return
        ids = sorted(self._active)
        best: Dict[int, Tuple[float, int]] = {}
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                cost = self._pair_cost(a, b)
                if a not in best or (cost, b) < best[a]:
                    best[a] = (cost, b)
                if b not in best or (cost, a) < best[b]:
                    best[b] = (cost, a)
        for nid, (cost, partner) in best.items():
            self._set_best(nid, cost, partner)

    def _pop_valid_pair(self) -> Tuple[int, int]:
        while self._heap:
            cost, nid = heapq.heappop(self._heap)
            if nid not in self._active:
                continue
            current = self._best.get(nid)
            if current is None or current[0] != cost:
                continue  # stale heap entry
            partner = current[1]
            if partner not in self._active:
                self._recompute_best(nid)
                continue
            return nid, partner
        raise RuntimeError("no mergeable pair left (internal error)")

    def _retire(self, nid: int) -> Set[int]:
        """Deactivate a node; return nodes that pointed at it."""
        self._active.discard(nid)
        self._best.pop(nid, None)
        return self._reverse.pop(nid, set())

    def _introduce(self, merged_id: int) -> None:
        """Register a new subtree and refresh neighbours' best pairs."""
        best_cost, best_partner = None, None
        for other in self._candidates_for(merged_id):
            cost = self._pair_cost(merged_id, other)
            if best_cost is None or (cost, other) < (best_cost, best_partner):
                best_cost, best_partner = cost, other
            current = self._best.get(other)
            if current is None or (cost, merged_id) < current:
                self._set_best(other, cost, merged_id)
        self._active.add(merged_id)
        if best_partner is not None:
            self._set_best(merged_id, best_cost, best_partner)

    # ------------------------------------------------------------------
    # the full flow
    # ------------------------------------------------------------------
    def run(self) -> ClockTree:
        """Build the tree: greedy bottom-up merge, then top-down embed."""
        num_sinks = len(self._active)
        logger.debug(
            "merging %d sinks (cost=%s, policy=%s, candidate_limit=%s, "
            "skew_bound=%g)",
            num_sinks,
            getattr(self.cost, "__name__", type(self.cost).__name__),
            type(self.cell_policy).__name__,
            self.candidate_limit,
            self.skew_bound,
        )
        if num_sinks == 1:
            (only,) = self._active
            self.tree.set_root(only)
            self._place()
            return self.tree
        self._initialize_best()
        while len(self._active) > 1:
            a_id, b_id = self._pop_valid_pair()
            plan = self.plan(a_id, b_id)
            merged = self.execute(plan)
            orphans = (self._retire(a_id) | self._retire(b_id)) & self._active
            self._introduce(merged.id)
            for orphan in orphans:
                current = self._best.get(orphan)
                if current is None or current[1] not in self._active:
                    self._recompute_best(orphan)
        (root,) = self._active
        self.tree.set_root(root)
        self._place()
        logger.debug(
            "tree built: wirelength %.4g, %d gates, root delay %.4g",
            self.tree.total_wirelength(),
            self.tree.gate_count(),
            self.tree.root.sink_delay,
        )
        return self.tree

    def _place(self) -> None:
        """Top-down embedding of merging segments into points."""
        root = self.tree.root
        root.location = root.merging_segment.center()
        for node in self.tree.preorder():
            for child_id in node.children:
                child = self.tree.node(child_id)
                child.location = child.merging_segment.nearest_point_to(node.location)
        self.tree.validate_embedding()
