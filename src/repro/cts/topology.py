"""Sinks, nodes, and the embedded clock tree.

The topology is full binary (paper section 2): every internal node has
exactly two children; with ``N`` sinks there are ``N - 1`` internal
nodes.  Following the paper we identify every non-root node ``v_i``
with the edge ``e_i`` that connects it to its parent, so per-edge data
(electrical length, decoupling cell, enable probabilities) lives on the
child node.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.check.errors import EmbeddingAuditError, InputError
from repro.check.errors import ContractError
from repro.geometry.point import Point
from repro.geometry.trr import Trr
from repro.quantity import AreaUm2, CapacitanceFF, DelayPs, LengthUm, NodeId, Probability
from repro.rc.elmore import EdgeElectrical, ElmoreEvaluator
from repro.tech.parameters import GateModel, Technology


@dataclass(frozen=True)
class Sink:
    """A clock sink: the clock pin of one module."""

    name: str
    location: Point
    load_cap: CapacitanceFF
    module: int
    """Index of the module this sink clocks, for activity lookup."""

    def __post_init__(self):
        for field, value in (("x", self.location.x), ("y", self.location.y)):
            if not math.isfinite(value):
                raise InputError(
                    "sink %r: coordinate %s is %r; coordinates must be finite"
                    % (self.name, field, value),
                    field=field,
                )
        if not math.isfinite(self.load_cap) or self.load_cap < 0:
            raise InputError(
                "sink %r: load capacitance must be finite and non-negative, got %r"
                % (self.name, self.load_cap),
                field="load_cap",
            )
        if self.module < 0:
            raise InputError(
                "sink %r: module index must be non-negative, got %r"
                % (self.name, self.module),
                field="module",
            )


@dataclass
class ClockNode:
    """One node of the clock tree, plus the edge above it.

    ``edge_length`` is the *electrical* wirelength of the edge to the
    parent, which may exceed the Manhattan distance of the endpoint
    placements when the router snaked the wire to balance skew.
    """

    id: NodeId
    children: Tuple[int, ...]
    sink: Optional[Sink]
    merging_segment: Trr
    parent: Optional[NodeId] = None
    edge_length: LengthUm = 0.0
    edge_cell: Optional[GateModel] = None
    edge_maskable: bool = False
    """True when ``edge_cell`` is a masking gate driven by an enable."""
    location: Optional[Point] = None
    module_mask: int = 0
    enable_probability: Probability = 1.0
    enable_transition_probability: Probability = 0.0
    subtree_cap: CapacitanceFF = 0.0
    """Capacitance presented at this node from below (router-computed)."""
    sink_delay: DelayPs = 0.0
    """Latest delay from this node down to its sinks (router-computed;
    under exact zero skew every sink shares this value)."""
    sink_delay_min: DelayPs = 0.0
    """Earliest delay to a sink; equals ``sink_delay`` for zero-skew
    trees, may be up to the skew bound lower for bounded-skew trees."""
    snaked: bool = False

    @property
    def is_sink(self) -> bool:
        return self.sink is not None

    @property
    def has_gate(self) -> bool:
        return self.edge_cell is not None and self.edge_maskable


class ClockTree:
    """An embedded clock tree: topology + geometry + electrical data."""

    def __init__(self, tech: Technology):
        self._tech = tech
        self._nodes: List[ClockNode] = []
        self._root: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_leaf(self, sink: Sink) -> ClockNode:
        """Append a leaf node for a sink; returns the new node."""
        node = ClockNode(
            id=len(self._nodes),
            children=(),
            sink=sink,
            merging_segment=Trr.from_point(sink.location),
            module_mask=1 << sink.module,
            subtree_cap=sink.load_cap,
        )
        self._nodes.append(node)
        return node

    def add_internal(self, left: int, right: int, merging_segment: Trr) -> ClockNode:
        """Append an internal node merging two existing roots."""
        for child in (left, right):
            if self._nodes[child].parent is not None:
                raise ContractError("node %d already has a parent" % child)
        node = ClockNode(
            id=len(self._nodes),
            children=(left, right),
            sink=None,
            merging_segment=merging_segment,
        )
        self._nodes.append(node)
        self._nodes[left].parent = node.id
        self._nodes[right].parent = node.id
        return node

    def set_root(self, node_id: int) -> None:
        if self._nodes[node_id].parent is not None:
            raise ContractError("root must not have a parent")
        self._root = node_id

    def clone(self) -> "ClockTree":
        """Deep-enough copy: independent nodes, shared immutable leaves.

        Node dataclasses are copied shallowly -- their fields are either
        scalars or frozen value objects (``Sink``, ``Trr``, ``Point``,
        ``GateModel``), so mutating a clone never aliases back into the
        original.  Used by the refinement pass for keep-best snapshots.
        """
        other = ClockTree(self._tech)
        other._nodes = [copy.copy(n) for n in self._nodes]
        other._root = self._root
        return other

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def tech(self) -> Technology:
        return self._tech

    @property
    def root_id(self) -> int:
        if self._root is None:
            raise ContractError("tree has no root yet")
        return self._root

    @property
    def root(self) -> ClockNode:
        return self._nodes[self.root_id]

    def node(self, node_id: int) -> ClockNode:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[ClockNode]:
        return iter(self._nodes)

    def sinks(self) -> List[ClockNode]:
        return [n for n in self._nodes if n.is_sink]

    def internal_nodes(self) -> List[ClockNode]:
        return [n for n in self._nodes if not n.is_sink]

    def edges(self) -> Iterator[ClockNode]:
        """Every node that has an edge above it (all but the root)."""
        root = self.root_id
        return (n for n in self._nodes if n.id != root and n.parent is not None)

    def gates(self) -> List[ClockNode]:
        """Nodes whose edge carries a masking gate."""
        return [n for n in self.edges() if n.has_gate]

    def preorder(self) -> Iterator[ClockNode]:
        """Root-first traversal."""
        stack = [self.root_id]
        while stack:
            node = self._nodes[stack.pop()]
            yield node
            stack.extend(node.children)

    def parent_chain(self, node_id: int) -> Iterator[ClockNode]:
        """Ancestors of a node, nearest first (excluding the node)."""
        parent = self._nodes[node_id].parent
        while parent is not None:
            node = self._nodes[parent]
            yield node
            parent = node.parent

    def depth(self, node_id: int) -> int:
        return sum(1 for _ in self.parent_chain(node_id))

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    def total_wirelength(self) -> LengthUm:
        """Electrical wirelength of the clock tree (snaking included)."""
        root = self.root_id
        return sum(n.edge_length for n in self._nodes if n.id != root)

    def gate_count(self) -> int:
        return sum(1 for n in self._nodes if n.has_gate)

    def cell_count(self) -> int:
        root = self.root_id
        return sum(1 for n in self._nodes if n.id != root and n.edge_cell is not None)

    def cell_area(self) -> AreaUm2:
        root = self.root_id
        return sum(
            n.edge_cell.area
            for n in self._nodes
            if n.id != root and n.edge_cell is not None
        )

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------
    def elmore_evaluator(self) -> ElmoreEvaluator:
        """Ground-truth Elmore evaluator over the embedded tree."""
        root = self.root_id
        edges = []
        children: Dict[int, List[int]] = {}
        for n in self._nodes:
            if n.parent is None and n.id != root:
                continue  # detached node (should not happen post-build)
            edges.append(
                EdgeElectrical(
                    node=n.id,
                    parent=-1 if n.id == root else n.parent,
                    length=0.0 if n.id == root else n.edge_length,
                    cell=None if n.id == root else n.edge_cell,
                    node_cap=n.sink.load_cap if n.is_sink else 0.0,
                )
            )
            children[n.id] = list(n.children)
        return ElmoreEvaluator(edges=edges, children=children, tech=self._tech)

    def skew(self) -> DelayPs:
        """Recomputed (non-incremental) Elmore skew of the tree."""
        return self.elmore_evaluator().skew()

    def phase_delay(self) -> DelayPs:
        """Recomputed root-to-sink Elmore delay."""
        return self.elmore_evaluator().max_delay()

    def validate_embedding(self, tol: float = 1e-6) -> None:
        """Check placement consistency.

        Raises :class:`~repro.check.errors.EmbeddingAuditError` (a
        ``ValueError`` for backward compatibility) naming the offending
        node when

        * a node is unplaced or lies off its merging segment, or
        * an edge's electrical length fails to cover the Manhattan
          distance between its endpoint placements (snaking only adds
          length).

        :func:`repro.check.auditor.audit_network` performs the same
        checks (plus parent-region containment) non-fatally, collecting
        findings instead of raising on the first.
        """
        for node in self.preorder():
            if node.location is None:
                raise EmbeddingAuditError(
                    "node %d is not placed" % node.id, node=node.id
                )
            if not node.merging_segment.contains_point(node.location, tol=tol):
                raise EmbeddingAuditError(
                    "node %d placed off its merging segment" % node.id,
                    node=node.id,
                )
            if node.id != self.root_id:
                parent = self._nodes[node.parent]
                dist = node.location.manhattan_to(parent.location)
                if node.edge_length < dist - tol:
                    raise EmbeddingAuditError(
                        "edge above node %d shorter than its endpoints' distance"
                        % node.id,
                        node=node.id,
                    )
