"""Re-embedding a clock tree after edits (fixed topology DME).

Gate reduction removes cells from a finished tree; that changes every
subtree's presented capacitance and delay, so the original edge
lengths no longer balance.  ``reembed`` reruns the deferred-merge
embedding along the *existing* topology with the *current* cell
assignment: a bottom-up pass recomputes merging segments and zero-skew
splits (with wire snaking where cells made siblings unbalanced), and a
top-down pass re-places every node.  The result is again an exactly
zero-skew tree.

Running ``reembed`` on an untouched tree is a no-op up to
floating-point noise -- a property the test suite checks.
"""

from __future__ import annotations

from typing import List

from repro.cts.merge import Tap, merge_regions, zero_skew_split
from repro.cts.topology import ClockTree
from repro.geometry.trr import Trr


def _postorder_ids(tree: ClockTree) -> List[int]:
    order: List[int] = []
    stack = [tree.root_id]
    while stack:
        node = tree.node(stack.pop())
        order.append(node.id)
        stack.extend(node.children)
    order.reverse()
    return order


def reembed(tree: ClockTree) -> None:
    """Recompute the embedding in place for the tree's current cells.

    Internal nodes are normally binary, but edits (gate-reduction
    demote/remove, refinement moves) can leave *unary* pass-through
    nodes; those propagate their single child's presented capacitance
    and delay through a zero-length edge instead of crashing the
    two-child unpack.
    """
    tech = tree.tech
    for node_id in _postorder_ids(tree):
        node = tree.node(node_id)
        if node.is_sink:
            node.merging_segment = Trr.from_point(node.sink.location)
            node.subtree_cap = node.sink.load_cap
            node.sink_delay = 0.0
            node.sink_delay_min = 0.0
            continue
        if len(node.children) == 1:
            # Unary pass-through: no split to balance.  The child
            # attaches with a zero-length edge, so the node presents
            # the child's own presented capacitance (its cell's input
            # pin when the edge carries one) and its unloaded delay.
            (child,) = (tree.node(c) for c in node.children)
            tap = Tap(
                cap=child.subtree_cap,
                delay=child.sink_delay,
                cell=child.edge_cell,
            )
            child.edge_length = 0.0
            child.snaked = False
            node.merging_segment = child.merging_segment
            node.subtree_cap = tap.presented_cap(0.0, tech)
            node.sink_delay = tap.edge_delay(0.0, tech)
            node.sink_delay_min = node.sink_delay
            continue
        left, right = (tree.node(c) for c in node.children)
        distance = left.merging_segment.distance_to(right.merging_segment)
        split = zero_skew_split(
            distance,
            Tap(cap=left.subtree_cap, delay=left.sink_delay, cell=left.edge_cell),
            Tap(cap=right.subtree_cap, delay=right.sink_delay, cell=right.edge_cell),
            tech,
        )
        left.edge_length = split.length_a
        left.snaked = split.snaked == "a"
        right.edge_length = split.length_b
        right.snaked = split.snaked == "b"
        node.merging_segment = merge_regions(
            left.merging_segment, right.merging_segment, split
        )
        node.subtree_cap = split.merged_cap
        node.sink_delay = split.delay
        # The split is exactly zero-skew, so the delay interval
        # collapses to a point; leaving a stale bounded-skew lower
        # bound behind would trip the auditor's interval check.
        node.sink_delay_min = split.delay

    root = tree.root
    root.location = root.merging_segment.center()
    for node in tree.preorder():
        for child_id in node.children:
            child = tree.node(child_id)
            child.location = child.merging_segment.nearest_point_to(node.location)
    tree.validate_embedding()
