"""Exact zero-skew merging, generalized to gated edges.

Tsay's classical construction balances the Elmore delays of two
subtrees by splitting the merging distance ``L`` into edge lengths
``e_a + e_b = L``.  The paper inserts a masking gate at the top of
(some) edges; the gate decouples the subtree electrically and adds its
own delay.  With

``f_s(x) = D_s + R_s * (c x + C_s) + r x (c x / 2 + C_s) + t_s``

the delay down side ``s`` through an edge of length ``x`` (``D_s`` /
``R_s`` are the cell's intrinsic delay / drive resistance, zero for a
plain wire; ``C_s`` the subtree's presented capacitance; ``t_s`` its
sink delay), the balance condition ``f_a(x) = f_b(L - x)`` stays
**linear in x** because the quadratic wire terms cancel:

``x = [L (R_b c + r C_b) + r c L^2 / 2 + (t'_b - t'_a)] / den``
``den = c (R_a + R_b) + r (C_a + C_b) + r c L``
``t'_s = D_s + R_s C_s + t_s``

When the root ``x`` falls outside ``[0, L]`` one side attaches directly
(zero edge) and the other side's wire is *snaked*: extended beyond the
geometric distance until the delays match (a quadratic with one
positive root).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.check.errors import GeometryError, SkewBalanceError
from repro.geometry.trr import Trr
from repro.quantity import CapacitanceFF, DelayPs, LengthUm, ResistanceOhm
from repro.tech.parameters import GateModel, Technology

_EPS = 1e-12

#: Tolerances of :func:`zero_skew_split`'s degenerate-balance branch,
#: shared with the vectorized mirror (:mod:`repro.cts.kernels`) so the
#: two classifiers can never drift apart.
DEGENERATE_DEN_EPS = _EPS
DEGENERATE_SKEW_EPS = 1e-12

__all__ = [
    "DEGENERATE_DEN_EPS",
    "DEGENERATE_SKEW_EPS",
    "SkewBalanceError",
    "SplitResult",
    "Tap",
    "merge_regions",
    "zero_skew_split",
]


@dataclass(frozen=True)
class Tap:
    """One side of a merge: the subtree plus the cell on its new edge."""

    cap: CapacitanceFF
    """Capacitance presented at the subtree root from below, pF."""

    delay: DelayPs
    """Zero-skew delay from the subtree root to its sinks."""

    cell: Optional[GateModel] = None
    """Cell (gate or buffer) at the top of the new edge, if any."""

    @property
    def drive_resistance(self) -> ResistanceOhm:
        return self.cell.drive_resistance if self.cell else 0.0

    @property
    def intrinsic_delay(self) -> DelayPs:
        return self.cell.intrinsic_delay if self.cell else 0.0

    def unloaded_delay(self) -> DelayPs:
        """``t' = D + R * C + t``: delay through a zero-length edge."""
        return self.intrinsic_delay + self.drive_resistance * self.cap + self.delay

    def edge_delay(self, length: LengthUm, tech: Technology) -> DelayPs:
        """``f(x)``: delay from the edge top down to the sinks."""
        r = tech.unit_wire_resistance
        c = tech.unit_wire_capacitance
        return (
            self.intrinsic_delay
            + self.drive_resistance * (c * length + self.cap)
            + r * length * (c * length / 2.0 + self.cap)
            + self.delay
        )

    def presented_cap(self, length: LengthUm, tech: Technology) -> CapacitanceFF:
        """Capacitance the new edge shows to the merge point."""
        if self.cell is not None:
            return self.cell.input_cap
        return tech.unit_wire_capacitance * length + self.cap


@dataclass(frozen=True)
class SplitResult:
    """Outcome of a zero-skew split."""

    length_a: LengthUm
    length_b: LengthUm
    delay: DelayPs
    """Common delay from the merge point down to every sink."""

    presented_a: CapacitanceFF
    presented_b: CapacitanceFF
    snaked: Optional[str] = None
    """``"a"`` / ``"b"`` when that side's wire was extended, else None."""

    delay_min: Optional[DelayPs] = None
    """Earliest merged sink delay; ``None`` means equal to ``delay``
    (exact zero skew).  Set by bounded-skew splits."""

    @property
    def earliest_delay(self) -> DelayPs:
        """The merged interval's low edge."""
        return self.delay if self.delay_min is None else self.delay_min

    @property
    def merged_cap(self) -> CapacitanceFF:
        """Capacitance presented at the new merge node from below."""
        return self.presented_a + self.presented_b

    @property
    def total_length(self) -> LengthUm:
        return self.length_a + self.length_b


def _snake_length(fast: Tap, target_delay: DelayPs, tech: Technology) -> LengthUm:
    """Wirelength making the fast side as slow as ``target_delay``.

    Solves ``(rc/2) l^2 + (R c + r C) l + (t' - target) = 0`` for the
    positive root.
    """
    r = tech.unit_wire_resistance
    c = tech.unit_wire_capacitance
    quad = r * c / 2.0
    lin = fast.drive_resistance * c + r * fast.cap
    const = fast.unloaded_delay() - target_delay
    if const > _EPS:
        raise SkewBalanceError("snaking target is faster than the fast side")
    if const >= -_EPS:
        return 0.0
    if quad <= _EPS:
        if lin <= _EPS:
            raise SkewBalanceError(
                "wire adds no delay in this technology; cannot balance by snaking"
            )
        return -const / lin
    disc = lin * lin - 4.0 * quad * const
    return (-lin + math.sqrt(disc)) / (2.0 * quad)


def zero_skew_split(length: LengthUm, tap_a: Tap, tap_b: Tap, tech: Technology) -> SplitResult:
    """Split merging distance ``length`` so both sides see equal delay.

    ``length == 0`` (co-located subtree roots, e.g. two sinks at the
    same coordinates) is legal and yields the exact zero-length split:
    both edges stay 0 when the subtrees already balance, otherwise the
    fast side snakes.  The vectorized kernel lane agrees bit-for-bit
    (see ``tests/test_edge_cases.py``).
    """
    if not math.isfinite(length):
        raise GeometryError(
            "merging distance is %r; must be finite" % length, field="length"
        )
    if length < 0:
        raise GeometryError("merging distance must be non-negative", field="length")
    r = tech.unit_wire_resistance
    c = tech.unit_wire_capacitance
    den = (
        c * (tap_a.drive_resistance + tap_b.drive_resistance)
        + r * (tap_a.cap + tap_b.cap)
        + r * c * length
    )
    skew_at_zero = tap_b.unloaded_delay() - tap_a.unloaded_delay()
    if den <= DEGENERATE_DEN_EPS:
        # The linear balance is degenerate (zero distance and unloaded,
        # undriven subtrees).  Equal subtrees split trivially; otherwise
        # force the snaking path, which can still balance through the
        # wire's own RC (handled below; _snake_length raises when even
        # that is absent).
        if abs(skew_at_zero) <= DEGENERATE_SKEW_EPS:
            x = length / 2.0
        elif skew_at_zero > 0:
            x = length + 1.0  # b is slower: snake a
        else:
            x = -1.0  # a is slower: snake b
    else:
        num = (
            length * (tap_b.drive_resistance * c + r * tap_b.cap)
            + r * c * length * length / 2.0
            + skew_at_zero
        )
        x = num / den

    snaked = None
    if x < 0.0:
        # Side a is already slower even with all wire on b: snake b.
        e_a = 0.0
        e_b = _snake_length(tap_b, tap_a.edge_delay(0.0, tech), tech)
        e_b = max(e_b, length)
        snaked = "b"
    elif x > length:
        e_b = 0.0
        e_a = _snake_length(tap_a, tap_b.edge_delay(0.0, tech), tech)
        e_a = max(e_a, length)
        snaked = "a"
    else:
        e_a, e_b = x, length - x

    delay_a = tap_a.edge_delay(e_a, tech)
    delay_b = tap_b.edge_delay(e_b, tech)
    return SplitResult(
        length_a=e_a,
        length_b=e_b,
        delay=max(delay_a, delay_b),
        presented_a=tap_a.presented_cap(e_a, tech),
        presented_b=tap_b.presented_cap(e_b, tech),
        snaked=snaked,
    )


def merge_regions(ms_a: Trr, ms_b: Trr, split: SplitResult) -> Trr:
    """Merging segment of the merged subtree.

    The set of feasible merge points is the intersection of the two
    cores ``core(ms_a, e_a)`` and ``core(ms_b, e_b)``: any such point is
    within wire budget of both children (a snaked side makes up the
    slack with detour wiring).  For an exact split the intersection is
    a Manhattan arc.
    """
    core_a = ms_a.core(split.length_a)
    core_b = ms_b.core(split.length_b)
    region = core_a.intersection(core_b)
    tol = 0.0
    if region is None:
        # Floating-point slack: retry with a tolerance scaled to size.
        tol = 1e-9 * (1.0 + split.total_length + ms_a.distance_to(ms_b))
        region = core_a.intersection(core_b, tol=tol)
    if region is None:
        raise GeometryError(
            "cores do not intersect; split does not cover the distance: "
            "segment a=[u %g..%g, v %g..%g] expanded by e_a=%g and "
            "segment b=[u %g..%g, v %g..%g] expanded by e_b=%g "
            "(segment distance %g, split total %g, snaked=%r, tol=%g)"
            % (
                ms_a.ulo, ms_a.uhi, ms_a.vlo, ms_a.vhi, split.length_a,
                ms_b.ulo, ms_b.uhi, ms_b.vlo, ms_b.vhi, split.length_b,
                ms_a.distance_to(ms_b), split.total_length, split.snaked, tol,
            )
        )
    return region
