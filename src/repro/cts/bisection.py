"""Top-down recursive-bisection clock topology.

The third classical topology generator (besides the bottom-up greedy
families this library centers on): recursively split the sink set by
the median coordinate, alternating cut directions -- the construction
behind H-tree-like clock plans.  The topology is built first, then the
fixed-topology embedding pass (:mod:`repro.cts.reembed`) computes the
merging segments, exact zero-skew splits and placements for it.

It serves as an ablation baseline: balanced and activity-blind, it
bounds how much of the gated router's win comes from *choosing* the
topology rather than from gating an arbitrary reasonable tree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.activity.probability import ActivityOracle
from repro.check.errors import ContractError
from repro.cts.dme import CellPolicy, NoCellPolicy
from repro.cts.reembed import reembed
from repro.cts.topology import ClockTree, Sink


def _build_recursive(
    tree: ClockTree,
    leaf_ids: List[int],
    vertical_cut: bool,
) -> int:
    """Merge ``leaf_ids`` into one subtree; returns its root node id."""
    if len(leaf_ids) == 1:
        return leaf_ids[0]
    # Split at the median of the current cut direction.
    def key(node_id: int) -> float:
        location = tree.node(node_id).sink.location
        return location.x if vertical_cut else location.y

    ordered = sorted(leaf_ids, key=lambda nid: (key(nid), nid))
    half = len(ordered) // 2
    left = _build_recursive(tree, ordered[:half], not vertical_cut)
    right = _build_recursive(tree, ordered[half:], not vertical_cut)
    # Placeholder merging segment; the re-embed pass recomputes it.
    merged = tree.add_internal(left, right, tree.node(left).merging_segment)
    return merged.id


def build_bisection_tree(
    sinks: Sequence[Sink],
    tech,
    cell_policy: Optional[CellPolicy] = None,
    oracle: Optional[ActivityOracle] = None,
) -> ClockTree:
    """Balanced bisection topology with an exact zero-skew embedding.

    ``cell_policy`` decides the cell on every edge (evaluated with the
    merged node's enable probability when the policy wants it);
    ``oracle`` annotates activity statistics as in the greedy flows.
    """
    if not sinks:
        raise ContractError("at least one sink is required")
    policy = cell_policy or NoCellPolicy()
    tree = ClockTree(tech)
    for sink in sinks:
        node = tree.add_leaf(sink)
        if oracle is not None:
            stats = oracle.statistics(node.module_mask)
            node.enable_probability = stats.signal_probability
            node.enable_transition_probability = stats.transition_probability
    root_id = _build_recursive(tree, [n.id for n in tree.sinks()], vertical_cut=True)
    tree.set_root(root_id)

    # Bottom-up annotation of module masks and enable statistics.
    order = [n.id for n in tree.preorder()]
    for node_id in reversed(order):
        node = tree.node(node_id)
        if node.is_sink:
            continue
        left, right = (tree.node(c) for c in node.children)
        node.module_mask = left.module_mask | right.module_mask
        if oracle is not None:
            stats = oracle.statistics(node.module_mask)
            node.enable_probability = stats.signal_probability
            node.enable_transition_probability = stats.transition_probability

    # First embedding with plain wires gives real edge lengths and
    # subtree capacitances; cell decisions then see honest estimates,
    # and a second embedding balances the tree with the chosen cells.
    reembed(tree)
    for node in tree.internal_nodes():
        for child_id in node.children:
            child = tree.node(child_id)
            decision = policy.decide(
                child,
                node.enable_probability,
                2.0 * child.edge_length,  # the policies treat distance/2
                tech,  # as the nominal edge length
            )
            child.edge_cell = decision.cell
            child.edge_maskable = decision.maskable
    reembed(tree)
    return tree
