"""Physical route geometry for tree edges.

The router records each edge's *electrical* length, which can exceed
the Manhattan distance of its endpoint placements when the wire was
snaked for delay balancing.  This module expands every edge into an
explicit rectilinear polyline whose length equals the electrical
length: an L-shaped trunk plus, when needed, a square-wave serpentine
inserted on the longer leg.  The SVG renderer uses it so pictures show
the actual wiring, and the tests use total polyline length as yet
another independent check of the wirelength bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.check.errors import ContractError
from repro.cts.topology import ClockNode, ClockTree
from repro.geometry.point import Point

_EPS = 1e-9


@dataclass(frozen=True)
class EdgeRoute:
    """One edge's rectilinear polyline, parent end first."""

    node_id: int
    points: List[Point]
    snaked: bool

    @property
    def length(self) -> float:
        return sum(
            a.manhattan_to(b) for a, b in zip(self.points, self.points[1:])
        )

    def is_rectilinear(self, tol: float = 1e-9) -> bool:
        return all(
            abs(a.x - b.x) <= tol or abs(a.y - b.y) <= tol
            for a, b in zip(self.points, self.points[1:])
        )


def _serpentine(a: Point, b: Point, extra: float, amplitude: float) -> List[Point]:
    """A horizontal run from ``a`` to ``b`` lengthened by ``extra``.

    Comb-shaped detours (up ``depth``, back down at the same x) are
    inserted along the run; each full comb adds ``2 * amplitude`` of
    wire and the leftover is absorbed by one shallower comb, so the
    polyline length is exactly ``|b - a| + extra``.
    """
    points = [a]
    if extra <= _EPS:
        points.append(b)
        return points
    direction = 1.0 if b.x >= a.x else -1.0
    run = abs(b.x - a.x)
    combs = int(extra // (2.0 * amplitude))
    remainder = extra - combs * 2.0 * amplitude
    depths = [amplitude] * combs
    if remainder > _EPS:
        depths.append(remainder / 2.0)
    pitch = run / (len(depths) + 1)
    for i, depth in enumerate(depths, start=1):
        x = a.x + direction * pitch * i
        points.append(Point(x, a.y))
        points.append(Point(x, a.y + depth))
        points.append(Point(x, a.y))
    points.append(b)
    return points


def edge_route(tree: ClockTree, node: ClockNode, amplitude_fraction: float = 0.05) -> EdgeRoute:
    """The polyline of the edge above ``node``.

    The trunk is an L-route (horizontal from the parent, then
    vertical); snaking is drawn as a serpentine on the horizontal leg
    (or on a stub at the parent when the endpoints coincide).  The
    serpentine amplitude is ``amplitude_fraction`` of the edge length.
    """
    if node.parent is None:
        raise ContractError("the root has no edge")
    parent = tree.node(node.parent)
    if parent.location is None or node.location is None:
        raise ContractError("tree is not embedded")
    start, end = parent.location, node.location
    manhattan = start.manhattan_to(end)
    extra = node.edge_length - manhattan
    if extra < -1e-6 * (1.0 + node.edge_length):
        raise ContractError(
            "edge above node %d shorter than its endpoints' distance" % node.id
        )
    extra = max(extra, 0.0)
    corner = Point(end.x, start.y)
    amplitude = max(amplitude_fraction * max(node.edge_length, 1e-12), extra / 20.0)

    points: List[Point]
    if abs(end.x - start.x) > _EPS:
        points = _serpentine(start, corner, extra, amplitude)
        if abs(end.y - corner.y) > _EPS:
            points.append(end)
    elif abs(end.y - start.y) > _EPS:
        # Vertical-only edge: serpentine in the transposed frame.
        transposed = _serpentine(
            Point(start.y, start.x), Point(end.y, end.x), extra, amplitude
        )
        points = [Point(p.y, p.x) for p in transposed]
    else:
        # Coincident endpoints: the whole edge is detour wire (combs
        # stacked at the shared point).
        points = _serpentine(start, end, extra, amplitude)
    return EdgeRoute(node_id=node.id, points=points, snaked=extra > _EPS)


def tree_routes(tree: ClockTree, amplitude_fraction: float = 0.05) -> List[EdgeRoute]:
    """Routes for every edge of an embedded tree."""
    return [
        edge_route(tree, node, amplitude_fraction)
        for node in tree.edges()
    ]
