"""The buffered zero-skew clock tree -- the paper's comparison baseline.

Section 5.1: "The buffered clock tree is constructed using the nearest
neighbor heuristic and the size of a buffer is assumed to be half the
size of AND-gates."  Every edge carries a buffer; buffers are never
masked, so the whole tree switches every cycle.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.activity.probability import ActivityOracle
from repro.cts.dme import BottomUpMerger, BufferEveryEdgePolicy, nearest_neighbor_cost
from repro.cts.topology import ClockTree, Sink
from repro.obs import phase_span
from repro.tech.parameters import Technology


def build_buffered_tree(
    sinks: Sequence[Sink],
    tech: Technology,
    oracle: Optional[ActivityOracle] = None,
    candidate_limit: Optional[int] = None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
) -> ClockTree:
    """Nearest-neighbour zero-skew tree with a buffer on every edge.

    ``oracle`` is optional and only annotates nodes with activity
    statistics (handy for side-by-side reporting); it does not affect
    the construction, since buffers ignore activity.  ``vectorize``
    toggles the NumPy kernel screens (decision-neutral; see
    :class:`~repro.cts.dme.BottomUpMerger`).
    """
    with phase_span("topology.buffered", n=len(sinks)):
        merger = BottomUpMerger(
            sinks=sinks,
            tech=tech,
            cost=nearest_neighbor_cost,
            cell_policy=BufferEveryEdgePolicy(),
            oracle=oracle,
            candidate_limit=candidate_limit,
            skew_bound=skew_bound,
            vectorize=vectorize,
        )
        return merger.run()
