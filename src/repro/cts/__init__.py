"""Clock-tree synthesis substrate.

This package contains everything a *conventional* zero-skew clock
router needs -- and on top of which the paper's gated router
(:mod:`repro.core`) is built:

* :mod:`repro.cts.topology` -- sinks, tree nodes, the embedded clock
  tree container;
* :mod:`repro.cts.merge` -- Tsay-style exact zero-skew merging,
  generalized to edges that carry decoupling cells (buffers or masking
  gates), including wire snaking;
* :mod:`repro.cts.bounded` -- the bounded-skew generalization (delay
  intervals, partial snaking) with zero skew as the ``bound=0`` case;
* :mod:`repro.cts.reembed` -- fixed-topology re-embedding after tree
  edits (e.g. physical gate removal);
* :mod:`repro.cts.dme` -- the deferred-merge embedding engine: a
  generic greedy bottom-up merger with a pluggable pair cost and cell
  policy, followed by top-down placement of merging segments; plans
  are memoized per active pair and candidate probes are pruned by
  cost lower bounds without changing any greedy decision;
* :mod:`repro.cts.candidate_index` -- the uniform-grid spatial index
  answering the merger's k-nearest-candidate queries;
* :mod:`repro.cts.nearest_neighbor` -- the nearest-neighbour pair cost
  (Edahiro-style), used by the baseline;
* :mod:`repro.cts.buffered` -- the buffered zero-skew clock tree the
  paper compares against.
"""

from repro.cts.topology import ClockNode, ClockTree, Sink
from repro.cts.merge import SkewBalanceError, SplitResult, Tap, zero_skew_split
from repro.cts.bounded import SkewBoundError, bounded_skew_split
from repro.cts.candidate_index import SegmentGridIndex
from repro.cts.dme import BottomUpMerger, CellDecision, MergePlan, MergerStats
from repro.cts.buffered import build_buffered_tree
from repro.cts.reembed import reembed
from repro.cts.refine import AnnealingRefiner, RefineConfig, RefineResult, refine_tree

__all__ = [
    "AnnealingRefiner",
    "RefineConfig",
    "RefineResult",
    "refine_tree",
    "ClockNode",
    "ClockTree",
    "Sink",
    "SegmentGridIndex",
    "SkewBalanceError",
    "SkewBoundError",
    "SplitResult",
    "Tap",
    "zero_skew_split",
    "bounded_skew_split",
    "BottomUpMerger",
    "CellDecision",
    "MergePlan",
    "MergerStats",
    "build_buffered_tree",
    "reembed",
]
