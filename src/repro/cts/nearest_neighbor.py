"""Nearest-neighbour topology generation (baseline greedy).

The paper's baseline follows Edahiro's heuristic: repeatedly merge the
two subtrees whose merging segments are geometrically closest.  The
implementation is the generic engine of :mod:`repro.cts.dme` with the
distance cost; this module only gives the combination a name and a
couple of convenience wrappers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.activity.probability import ActivityOracle
from repro.cts.dme import (
    BottomUpMerger,
    CellPolicy,
    NoCellPolicy,
    nearest_neighbor_cost,
)
from repro.cts.topology import ClockTree, Sink
from repro.obs import phase_span
from repro.tech.parameters import Technology


def build_nearest_neighbor_tree(
    sinks: Sequence[Sink],
    tech: Technology,
    cell_policy: Optional[CellPolicy] = None,
    oracle: Optional[ActivityOracle] = None,
    candidate_limit: Optional[int] = None,
    skew_bound: float = 0.0,
    vectorize: bool = True,
) -> ClockTree:
    """Zero-skew tree with nearest-neighbour merge order.

    ``cell_policy`` defaults to plain wires; pass
    :class:`~repro.cts.dme.BufferEveryEdgePolicy` for the paper's
    buffered baseline or :class:`~repro.cts.dme.GateEveryEdgePolicy`
    for a gated tree whose *topology* ignores activity (useful in
    ablations).  ``vectorize`` toggles the NumPy kernel screens
    (decision-neutral; see :class:`~repro.cts.dme.BottomUpMerger`).
    """
    with phase_span("topology.nearest_neighbor", n=len(sinks)):
        merger = BottomUpMerger(
            sinks=sinks,
            tech=tech,
            cost=nearest_neighbor_cost,
            cell_policy=cell_policy or NoCellPolicy(),
            oracle=oracle,
            candidate_limit=candidate_limit,
            skew_bound=skew_bound,
            vectorize=vectorize,
        )
        return merger.run()
