"""Enable-signal probabilities from the activity tables.

``ActivityOracle`` answers, for an arbitrary module subset (bitmask):

* ``signal_probability`` -- ``P(EN) = P(M_a v M_b v ...)``: sum the IFT
  over instructions whose usage mask intersects the subset.  O(K) per
  query after O(K * L) setup, matching the paper's complexity claim.
* ``transition_probability`` -- ``P_tr(EN)``: sum the IMATT pair
  probabilities over instruction pairs whose OR-ed activation tags
  toggle the enable, i.e. pairs where exactly one of the two
  instructions activates the subset.  Vectorized to
  ``a^T P (1-a) + (1-a)^T P a`` with ``a`` the activation indicator --
  O(K^2) per query, the paper's O(K * N) with the tag lookups folded
  into bit operations.

``scan_stream_probabilities`` is the brute-force reference (rescan the
whole trace per query); the test suite asserts exact agreement, which
is the correctness claim of paper section 3.3.

Activation signatures
---------------------
Both probabilities depend on the module mask only through its
*activation signature*: the K-bit indicator (bit ``i`` set iff
instruction ``i``'s usage mask intersects the subset).  Signatures
compose under set union by bitwise OR -- the signature of
``mask_a | mask_b`` is ``sig_a | sig_b`` -- which is what makes the
merger's candidate screens vectorizable: it keeps one ``int64``
signature per node and forms whole batches of merged-pair signatures
with a single ``np.bitwise_or``.  :meth:`ActivityOracle.batch_probabilities`
then answers ``P(EN)`` for the whole batch through the same
per-signature memo the scalar path uses, so batched and scalar lookups
are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.activity.isa import InstructionSet
from repro.quantity import Probability
from repro.activity.stream import InstructionStream
from repro.activity.tables import ActivityTables


@dataclass(frozen=True)
class EnableStatistics:
    """The two quantities the router needs for one enable signal."""

    signal_probability: Probability
    transition_probability: Probability


class ActivityOracle:
    """Table-driven ``P(EN)`` / ``P_tr(EN)`` computation.

    Results are memoized per module mask (per-instance LRU): the greedy
    merger probes the same merged subsets over and over -- every
    candidate scan re-unions the same active masks -- so repeated
    probes should cost a dictionary hit, not a K^2 matvec.  The cache
    is exact (keyed on the mask, values immutable) and bounded by
    ``cache_size`` entries per method.
    """

    def __init__(self, tables: ActivityTables, cache_size: int = 1 << 16):
        self._tables = tables
        self._masks = tables.isa.masks
        self._ift = tables.ift
        self._pair = tables.pair_prob
        # Row/column marginals let the transition probability be
        # computed from one matvec:  P_tr = a^T P (1-a) + (1-a)^T P a
        #                                = a^T (row + col) - 2 a^T P a.
        self._row = self._pair.sum(axis=1)
        self._col = self._pair.sum(axis=0)
        # Signature-level memos.  The mask-level methods below route
        # through these, so a scalar ``signal_probability(mask)`` and a
        # ``batch_probabilities`` lane with the same signature share
        # one cached float -- bit-identical by construction.
        self.activation_signature = lru_cache(maxsize=cache_size)(
            self._activation_signature
        )
        self._signature_signal = lru_cache(maxsize=cache_size)(
            self._signature_signal_uncached
        )
        self._signature_transition = lru_cache(maxsize=cache_size)(
            self._signature_transition_uncached
        )
        self._signature_statistics = lru_cache(maxsize=cache_size)(
            self._signature_statistics_uncached
        )
        self.signal_probability = lru_cache(maxsize=cache_size)(
            self._signal_probability
        )
        self.transition_probability = lru_cache(maxsize=cache_size)(
            self._transition_probability
        )
        self.statistics = lru_cache(maxsize=cache_size)(self._statistics)

    @property
    def tables(self) -> ActivityTables:
        return self._tables

    @property
    def isa(self) -> InstructionSet:
        return self._tables.isa

    def cache_info(self) -> Dict[str, Tuple]:
        """Hit/miss counters of the per-mask memos (for benches)."""
        return {
            "signal_probability": self.signal_probability.cache_info(),
            "transition_probability": self.transition_probability.cache_info(),
            "statistics": self.statistics.cache_info(),
            "activation_signature": self.activation_signature.cache_info(),
            "signature_signal": self._signature_signal.cache_info(),
            "signature_transition": self._signature_transition.cache_info(),
            "signature_statistics": self._signature_statistics.cache_info(),
        }

    def publish_metrics(self, registry: Optional[Any] = None) -> None:
        """Publish the LRU hit/miss numbers as ``oracle.*`` gauges.

        ``registry`` defaults to the process-global
        :class:`repro.obs.MetricsRegistry`; the gated flow calls this
        once per routed result.
        """
        from repro.obs import publish_oracle_cache

        publish_oracle_cache(self, registry)

    def activation_vector(self, module_mask: int) -> np.ndarray:
        """Indicator over instructions: does the instruction wake the set?"""
        return np.fromiter(
            ((m & module_mask) != 0 for m in self._masks),
            dtype=float,
            count=len(self._masks),
        )

    @property
    def signature_bits(self) -> int:
        """Width of an activation signature (= number of instructions).

        Signatures up to 63 bits fit an ``int64`` array column; wider
        ISAs still work through the scalar (Python int) path.
        """
        return len(self._masks)

    def _activation_signature(self, module_mask: int) -> int:
        """K-bit activation indicator of a module subset, as an int.

        Bit ``i`` is set iff instruction ``i`` activates the subset.
        The signature of a mask union is the OR of the signatures.
        """
        sig = 0
        for i, m in enumerate(self._masks):
            if m & module_mask:
                sig |= 1 << i
        return sig

    def _signature_vector(self, signature: int) -> np.ndarray:
        """The activation indicator vector encoded by a signature.

        Produces exactly the 0.0/1.0 floats of
        :meth:`activation_vector`, so probabilities computed from a
        signature are bit-identical to the mask-level ones.
        """
        return np.fromiter(
            ((signature >> i) & 1 for i in range(len(self._masks))),
            dtype=float,
            count=len(self._masks),
        )

    def _signature_signal_uncached(self, signature: int) -> Probability:
        if signature == 0:
            return 0.0
        a = self._signature_vector(signature)
        # Clamp float summation noise: probabilities live in [0, 1].
        return min(max(float(a @ self._ift), 0.0), 1.0)

    def _signature_transition_uncached(self, signature: int) -> Probability:
        if signature == 0:
            return 0.0
        a = self._signature_vector(signature)
        value = float(a @ (self._row + self._col) - 2.0 * (a @ self._pair @ a))
        # Clamp float noise: a probability must lie in [0, 1].
        return min(max(value, 0.0), 1.0)

    def _signature_statistics_uncached(self, signature: int) -> EnableStatistics:
        if signature == 0:
            return EnableStatistics(0.0, 0.0)
        a = self._signature_vector(signature)
        p = min(max(float(a @ self._ift), 0.0), 1.0)
        ptr = float(a @ (self._row + self._col) - 2.0 * (a @ self._pair @ a))
        return EnableStatistics(p, min(max(ptr, 0.0), 1.0))

    def _signal_probability(self, module_mask: int) -> Probability:
        """``P(EN)`` for the module subset."""
        if module_mask == 0:
            return 0.0
        return self._signature_signal(self.activation_signature(module_mask))

    def _transition_probability(self, module_mask: int) -> Probability:
        """``P_tr(EN)`` for the module subset."""
        if module_mask == 0:
            return 0.0
        return self._signature_transition(self.activation_signature(module_mask))

    def _statistics(self, module_mask: int) -> EnableStatistics:
        """Both probabilities in one call."""
        if module_mask == 0:
            return EnableStatistics(0.0, 0.0)
        return self._signature_statistics(self.activation_signature(module_mask))

    def batch_probabilities(self, signatures: Any) -> np.ndarray:
        """``P(EN)`` for a whole array of activation signatures.

        ``signatures`` is any array-like of signature ints (``int64``
        for ISAs up to 63 instructions, object dtype beyond).  Repeated
        signatures are deduplicated with one vectorized ``np.unique``;
        each unique signature is answered by the same LRU-backed
        signature memo the scalar path uses, so every lane is
        bit-identical to the corresponding scalar
        ``signal_probability`` call -- and the memo keeps filling/
        hitting across batched and scalar probes alike.
        """
        sigs = np.asarray(signatures)
        if sigs.size == 0:
            return np.zeros(0, dtype=np.float64)
        unique, inverse = np.unique(sigs, return_inverse=True)
        values = np.empty(unique.shape, dtype=np.float64)
        for j, sig in enumerate(unique.tolist()):
            values[j] = self._signature_signal(int(sig))
        return values[inverse]

    def batch_transition_probabilities(self, signatures: Any) -> np.ndarray:
        """``P_tr(EN)`` for an array of signatures (see
        :meth:`batch_probabilities`; same dedup + memo contract)."""
        sigs = np.asarray(signatures)
        if sigs.size == 0:
            return np.zeros(0, dtype=np.float64)
        unique, inverse = np.unique(sigs, return_inverse=True)
        values = np.empty(unique.shape, dtype=np.float64)
        for j, sig in enumerate(unique.tolist()):
            values[j] = self._signature_transition(int(sig))
        return values[inverse]


def scan_stream_probabilities(
    isa: InstructionSet, stream: InstructionStream, module_mask: int
) -> Tuple[Probability, Probability]:
    """Brute-force reference: rescan the trace for one module subset.

    Returns ``(P(EN), P_tr(EN))`` computed directly from cycle-by-cycle
    activity, the method the paper calls "very expensive" and replaces
    with the tables.  Used as the testing oracle.
    """
    if module_mask == 0:
        return 0.0, 0.0
    masks = np.asarray(isa.masks, dtype=object)
    active = np.fromiter(
        ((masks[i] & module_mask) != 0 for i in stream.ids),
        dtype=bool,
        count=len(stream),
    )
    p = float(active.mean())
    if len(stream) < 2:
        return p, 0.0
    toggles = int(np.count_nonzero(active[1:] != active[:-1]))
    return p, toggles / (len(stream) - 1)
