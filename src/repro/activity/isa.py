"""Instruction sets and their RTL module usage.

The RTL description of a processor tells, for every instruction, which
modules participate in executing it (paper Table 1).  We represent a
module set as a Python integer bitmask so that the OR/AND operations at
the heart of ``P(EN)`` computation are single machine-level operations
even for thousands of modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple
from repro.check.errors import InputError


def modules_to_mask(modules: Iterable[int]) -> int:
    """Pack module indices into a bitmask."""
    mask = 0
    for m in modules:
        if m < 0:
            raise InputError("module index must be non-negative")
        mask |= 1 << m
    return mask


def mask_to_modules(mask: int) -> List[int]:
    """Unpack a bitmask into sorted module indices."""
    out = []
    i = 0
    while mask:
        if mask & 1:
            out.append(i)
        mask >>= 1
        i += 1
    return out


@dataclass(frozen=True)
class Instruction:
    """One instruction and the modules its execution exercises."""

    name: str
    modules: FrozenSet[int]

    @property
    def mask(self) -> int:
        return modules_to_mask(self.modules)


@dataclass(frozen=True)
class InstructionSet:
    """An ISA: the instruction list plus the module universe size.

    ``masks[k]`` is the usage bitmask of instruction ``k``; it is the
    only representation the hot paths touch.
    """

    instructions: Tuple[Instruction, ...]
    num_modules: int
    masks: Tuple[int, ...] = field(init=False)

    def __post_init__(self):
        if not self.instructions:
            raise InputError("instruction set may not be empty")
        masks = []
        for instr in self.instructions:
            mask = instr.mask
            if mask >> self.num_modules:
                raise InputError(
                    "instruction %r uses module >= num_modules=%d"
                    % (instr.name, self.num_modules)
                )
            masks.append(mask)
        object.__setattr__(self, "masks", tuple(masks))

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def names(self) -> List[str]:
        return [i.name for i in self.instructions]

    def index_of(self, name: str) -> int:
        """Index of the instruction with the given name."""
        for k, instr in enumerate(self.instructions):
            if instr.name == name:
                return k
        raise KeyError(name)

    def modules_used(self, k: int) -> List[int]:
        """Sorted module indices used by instruction ``k``."""
        return sorted(self.instructions[k].modules)

    def average_usage_fraction(self, weights: Sequence[float] = None) -> float:
        """Average fraction of modules active per instruction.

        This is the paper's ``Ave(M(I))`` column of Table 4.  With
        ``weights`` (e.g. the IFT) the average is execution-weighted;
        otherwise it is uniform over instructions.
        """
        counts = [len(i.modules) for i in self.instructions]
        if weights is None:
            mean = sum(counts) / len(counts)
        else:
            if len(weights) != len(counts):
                raise InputError("weights length mismatch")
            total = sum(weights)
            if total <= 0:
                raise InputError("weights must have positive sum")
            mean = sum(c * w for c, w in zip(counts, weights)) / total
        return mean / self.num_modules

    @staticmethod
    def from_usage_lists(
        usage: Sequence[Iterable[int]], num_modules: int, names: Sequence[str] = None
    ) -> "InstructionSet":
        """Build an ISA from per-instruction module lists (paper Table 1)."""
        if names is None:
            names = ["I%d" % (k + 1) for k in range(len(usage))]
        instrs = tuple(
            Instruction(name=n, modules=frozenset(u)) for n, u in zip(names, usage)
        )
        return InstructionSet(instructions=instrs, num_modules=num_modules)


def paper_example_isa() -> InstructionSet:
    """The 4-instruction / 6-module example of paper section 3.1.

    Table 1: I1 uses {M1, M2, M3, M5}, I2 uses {M1, M4},
    I3 uses {M2, M5, M6}, I4 uses {M3, M4} (0-indexed here).
    """
    return InstructionSet.from_usage_lists(
        usage=[{0, 1, 2, 4}, {0, 3}, {1, 4, 5}, {2, 3}],
        num_modules=6,
        names=["I1", "I2", "I3", "I4"],
    )


def paper_example_stream() -> List[int]:
    """A 20-cycle instruction stream matching paper section 3.2.

    The exact stream listing in the available paper text is corrupted,
    but section 3.2 pins down its statistics: 20 cycles, instructions
    I1 and I2 occur 15 times total (``P(M1) = 15/20 = 0.75``),
    instructions I1 and I3 occur 11 times total
    (``P(M5 v M6) = 11/20 = 0.55``), and the enable of {M5, M6} makes
    exactly 9 transitions.  This reconstruction satisfies all three.
    """
    text = "I1 I2 I4 I1 I3 I1 I1 I2 I1 I2 I4 I2 I1 I3 I1 I1 I2 I1 I4 I2"
    return [int(tok[1:]) - 1 for tok in text.split()]


def usage_table(isa: InstructionSet) -> Dict[str, List[str]]:
    """Human-readable RTL description (paper Table 1 layout)."""
    return {
        instr.name: ["M%d" % (m + 1) for m in sorted(instr.modules)]
        for instr in isa.instructions
    }
