"""Module-activity substrate (paper section 3).

Gated clock routing is driven by two probabilities per candidate tree
node ``v`` (whose leaves are modules ``M_1..M_l``):

* ``P(EN_v)``   -- signal probability: fraction of cycles any of the
  modules is active (the enable is 1),
* ``P_tr(EN_v)`` -- transition probability: fraction of consecutive
  cycle pairs in which the enable toggles.

The paper computes both from two tables built by a *single* scan of an
instruction-level trace: the Instruction Frequency Table (IFT) and the
Instruction-Transition Module-Activation Table (IMATT).  This package
implements:

* :mod:`repro.activity.isa` -- instruction sets with their RTL usage
  (instruction -> set of modules exercised),
* :mod:`repro.activity.stream` -- instruction streams and the Markov
  model used to synthesize them,
* :mod:`repro.activity.tables` -- IFT/IMATT built from a stream, or
  analytically from a Markov model,
* :mod:`repro.activity.probability` -- the table-driven oracle for
  ``P(EN)`` / ``P_tr(EN)`` plus the brute-force stream scanner used as
  a testing reference.
"""

from repro.activity.isa import Instruction, InstructionSet
from repro.activity.stream import InstructionStream, MarkovStreamModel
from repro.activity.tables import ActivityTables
from repro.activity.probability import ActivityOracle, scan_stream_probabilities

__all__ = [
    "Instruction",
    "InstructionSet",
    "InstructionStream",
    "MarkovStreamModel",
    "ActivityTables",
    "ActivityOracle",
    "scan_stream_probabilities",
]
