"""IFT and IMATT -- the paper's table-driven activity statistics.

Scanning a B-cycle instruction stream once yields

* the **Instruction Frequency Table** (IFT): ``ift[k]`` = fraction of
  cycles executing instruction ``k`` (paper Table 2), and
* the **Instruction-Transition Module-Activation Table** (IMATT):
  ``pair_prob[i, j]`` = fraction of consecutive cycle pairs executing
  ``(I_i, I_j)`` (paper Table 3).  The per-module activation tags the
  paper stores alongside each row are implicit in our representation:
  they are recovered from the ISA usage bitmasks in O(1).

Every signal probability ``P(EN)`` and transition probability
``P_tr(EN)`` of any module subset is then computable *without
re-scanning the stream* -- the point of paper section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity.isa import InstructionSet
from repro.activity.stream import InstructionStream, MarkovStreamModel
from repro.check.errors import InputError


@dataclass(frozen=True)
class ActivityTables:
    """IFT + IMATT for one instruction set."""

    isa: InstructionSet
    ift: np.ndarray
    pair_prob: np.ndarray

    def __post_init__(self):
        k = len(self.isa)
        ift = np.asarray(self.ift, dtype=float)
        pair = np.asarray(self.pair_prob, dtype=float)
        if ift.shape != (k,):
            raise InputError("IFT must have one entry per instruction")
        if pair.shape != (k, k):
            raise InputError("IMATT must be K x K")
        if np.any(ift < -1e-12) or abs(ift.sum() - 1.0) > 1e-6:
            raise InputError("IFT must be a probability distribution")
        if np.any(pair < -1e-12) or abs(pair.sum() - 1.0) > 1e-6:
            raise InputError("IMATT must be a probability distribution")
        object.__setattr__(self, "ift", np.clip(ift, 0.0, None))
        object.__setattr__(self, "pair_prob", np.clip(pair, 0.0, None))

    @property
    def num_instructions(self) -> int:
        return len(self.isa)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_stream(isa: InstructionSet, stream: InstructionStream) -> "ActivityTables":
        """Build both tables with a single scan of the stream (O(B))."""
        k = len(isa)
        counts = stream.counts(k).astype(float)
        ift = counts / counts.sum()
        pairs = stream.pair_counts(k).astype(float)
        total = pairs.sum()
        if total <= 0:
            # Degenerate single-cycle stream: no transitions observed.
            pair_prob = np.zeros((k, k))
            pair_prob[stream.ids[0], stream.ids[0]] = 1.0
        else:
            pair_prob = pairs / total
        return ActivityTables(isa=isa, ift=ift, pair_prob=pair_prob)

    @staticmethod
    def from_markov(isa: InstructionSet, model: MarkovStreamModel) -> "ActivityTables":
        """Analytic tables: exact stationary statistics of the chain.

        Equivalent to ``from_stream`` in the limit of an infinite trace;
        used by the parameter sweeps so results carry no sampling noise.
        """
        if model.num_instructions != len(isa):
            raise InputError("model instruction count does not match ISA")
        return ActivityTables(
            isa=isa,
            ift=model.stationary_distribution(),
            pair_prob=model.pair_distribution(),
        )

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def module_activity(self, module: int) -> float:
        """``P(M_j)``: fraction of cycles module ``j`` is active."""
        bit = 1 << module
        return float(
            sum(p for p, m in zip(self.ift, self.isa.masks) if m & bit)
        )

    def average_module_activity(self) -> float:
        """Mean of ``P(M_j)`` over all modules.

        This is the x-axis of the paper's Figure 4 and, for a usage
        table where every instruction uses ~40% of modules, lands near
        0.4 (Table 4's observation).
        """
        total = 0.0
        for instr_mask, p in zip(self.isa.masks, self.ift):
            total += p * bin(instr_mask).count("1")
        return total / self.isa.num_modules
