"""Instruction streams and the probabilistic CPU model behind them.

The paper derives its activity statistics from instruction-level
simulation of a processor running benchmark programs, "generated
according to a probabilistic model of the CPU".  We model the executed
instruction sequence as a first-order Markov chain: a *locality* knob
interpolates between i.i.d. draws (locality 0, maximal enable
switching) and long bursts of the same instruction (locality near 1,
few enable transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from repro.check.errors import InputError


@dataclass(frozen=True)
class InstructionStream:
    """An executed instruction trace: an array of instruction ids."""

    ids: np.ndarray

    def __post_init__(self):
        ids = np.asarray(self.ids, dtype=np.int64)
        if ids.ndim != 1 or ids.size == 0:
            raise InputError("stream must be a non-empty 1-D sequence")
        if ids.min() < 0:
            raise InputError("instruction ids must be non-negative")
        object.__setattr__(self, "ids", ids)

    def __len__(self) -> int:
        return int(self.ids.size)

    @property
    def num_pairs(self) -> int:
        """Number of consecutive-cycle pairs (stream length - 1)."""
        return len(self) - 1

    def counts(self, num_instructions: int) -> np.ndarray:
        """Occurrences of each instruction id."""
        if self.ids.max() >= num_instructions:
            raise InputError("stream references instruction >= K")
        return np.bincount(self.ids, minlength=num_instructions)

    def pair_counts(self, num_instructions: int) -> np.ndarray:
        """K x K matrix of consecutive-pair occurrences."""
        if len(self) < 2:
            return np.zeros((num_instructions, num_instructions), dtype=np.int64)
        a, b = self.ids[:-1], self.ids[1:]
        flat = np.bincount(
            a * num_instructions + b, minlength=num_instructions * num_instructions
        )
        return flat.reshape(num_instructions, num_instructions)


class MarkovStreamModel:
    """First-order Markov chain over instructions.

    Parameters
    ----------
    transition:
        Row-stochastic K x K matrix; ``transition[i, j]`` is the
        probability that instruction ``j`` follows instruction ``i``.
    initial:
        Distribution of the first instruction; defaults to the chain's
        stationary distribution.
    """

    def __init__(self, transition: np.ndarray, initial: Optional[np.ndarray] = None):
        t = np.asarray(transition, dtype=float)
        if t.ndim != 2 or t.shape[0] != t.shape[1]:
            raise InputError("transition matrix must be square")
        if np.any(t < -1e-12):
            raise InputError("transition probabilities must be non-negative")
        rows = t.sum(axis=1)
        if np.any(np.abs(rows - 1.0) > 1e-6):
            raise InputError("transition matrix rows must sum to 1")
        self.transition = np.clip(t, 0.0, None)
        self.transition /= self.transition.sum(axis=1, keepdims=True)
        if initial is None:
            initial = self.stationary_distribution()
        initial = np.asarray(initial, dtype=float)
        if initial.shape != (t.shape[0],) or abs(initial.sum() - 1.0) > 1e-6:
            raise InputError("initial distribution malformed")
        self.initial = initial / initial.sum()

    @property
    def num_instructions(self) -> int:
        return self.transition.shape[0]

    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution ``pi`` with ``pi @ T = pi``.

        Solved as a linear system (more robust than power iteration for
        the small K used here).
        """
        k = self.transition.shape[0]
        a = np.vstack([self.transition.T - np.eye(k), np.ones((1, k))])
        b = np.zeros(k + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise InputError("chain has no valid stationary distribution")
        return pi / total

    def pair_distribution(self) -> np.ndarray:
        """Stationary joint distribution of consecutive instructions.

        ``P[i, j] = pi_i * T[i, j]`` -- the analytic counterpart of the
        IMATT pair probabilities.
        """
        pi = self.stationary_distribution()
        return pi[:, None] * self.transition

    def generate(self, length: int, rng: np.random.Generator) -> InstructionStream:
        """Sample a stream of the given length."""
        if length < 1:
            raise InputError("length must be positive")
        k = self.num_instructions
        ids = np.empty(length, dtype=np.int64)
        ids[0] = rng.choice(k, p=self.initial)
        # Pre-draw uniforms and walk cumulative rows: much faster than
        # rng.choice per step for long streams.
        cum = np.cumsum(self.transition, axis=1)
        cum[:, -1] = 1.0
        uniforms = rng.random(length - 1)
        for n in range(1, length):
            ids[n] = np.searchsorted(cum[ids[n - 1]], uniforms[n - 1], side="right")
        return InstructionStream(ids=ids)

    @staticmethod
    def from_locality(
        popularity: Sequence[float], locality: float, rng: Optional[np.random.Generator] = None
    ) -> "MarkovStreamModel":
        """Build a chain with a given self-transition bias.

        ``T = locality * I + (1 - locality) * (1 pi^T)`` where ``pi`` is
        the normalized ``popularity``.  The stationary distribution is
        exactly ``pi`` for any locality, while the enable transition
        probabilities shrink as locality grows -- the knob used for the
        controller-power studies.  ``rng`` is accepted for symmetry with
        other factories but unused (the construction is deterministic).
        """
        if not 0.0 <= locality < 1.0:
            raise InputError("locality must be in [0, 1)")
        pi = np.asarray(popularity, dtype=float)
        if np.any(pi < 0) or pi.sum() <= 0:
            raise InputError("popularity must be non-negative, non-zero")
        pi = pi / pi.sum()
        k = pi.size
        t = locality * np.eye(k) + (1.0 - locality) * np.tile(pi, (k, 1))
        return MarkovStreamModel(transition=t, initial=pi)
