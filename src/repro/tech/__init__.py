"""Technology models: wire RC constants, gate/buffer electrical data.

Everything the router needs to know about the process lives here so
that the algorithms stay technology-independent.  ``Technology`` bundles
unit wire resistance/capacitance, the AND (masking) gate model, the
buffer model used by the baseline tree, the clock activity factor, and
the wire width used for area accounting.
"""

from repro.tech.parameters import GateModel, Technology
from repro.tech.presets import date98_technology, unit_technology

__all__ = ["GateModel", "Technology", "date98_technology", "unit_technology"]
