"""Technology parameter records.

Units are deliberately simple and consistent rather than tied to a
specific foundry deck:

* length  -- lambda (layout units)
* resistance -- ohm (wire: ohm per lambda)
* capacitance -- pF (wire: pF per lambda)
* delay -- ohm * pF = ns-scale units (Elmore products)
* area -- lambda^2

The paper reports switched capacitance in pF and area in 1e6 lambda^2;
the presets in :mod:`repro.tech.presets` are chosen to land in those
ranges for the r1-r5 style benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.check.errors import TechnologyError
from repro.quantity import (
    AreaUm2,
    CapacitanceFF,
    CapPerLength,
    DelayPs,
    Dimensionless,
    LengthUm,
    ResistanceOhm,
    ResPerLength,
)


@dataclass(frozen=True)
class GateModel:
    """Electrical and physical model of a clock-path cell.

    Used for both the masking AND gate and the plain buffer.  The cell
    is modeled, as in classical buffered-clock-tree work, by an input
    capacitance, an output drive resistance, an intrinsic delay, and a
    layout area.
    """

    input_cap: CapacitanceFF
    """Input (gate) capacitance seen by the upstream net, pF."""

    drive_resistance: ResistanceOhm
    """Equivalent output resistance driving the downstream net, ohm."""

    intrinsic_delay: DelayPs
    """Input-to-output delay at zero load, ohm*pF units."""

    area: AreaUm2
    """Cell area, lambda^2."""

    def __post_init__(self) -> None:
        from repro.check.validate import validate_gate_model

        validate_gate_model(self)

    def scaled(self, size: float) -> "GateModel":
        """The same cell scaled by drive ``size``.

        Doubling the size doubles input cap and area and halves the
        drive resistance; intrinsic delay is size-independent to first
        order.
        """
        if size <= 0:
            raise TechnologyError("size must be positive", field="size")
        return GateModel(
            input_cap=self.input_cap * size,
            drive_resistance=self.drive_resistance / size,
            intrinsic_delay=self.intrinsic_delay,
            area=self.area * size,
        )


@dataclass(frozen=True)
class Technology:
    """Process + methodology constants shared by all routers."""

    unit_wire_resistance: ResPerLength
    """Wire resistance per unit length, ohm / lambda."""

    unit_wire_capacitance: CapPerLength
    """Wire capacitance per unit length, pF / lambda."""

    masking_gate: GateModel
    """The AND gate inserted on gated clock-tree edges."""

    buffer: GateModel
    """The buffer used by the baseline buffered clock tree.

    The paper assumes the buffer is half the size of the AND gate; the
    presets honor that.
    """

    clock_transitions_per_cycle: Dimensionless = 2.0
    """Activity factor of the clock net (one rising + one falling edge).

    The controller (enable) nets use measured transition probabilities
    instead, which already count transitions per cycle.
    """

    wire_width: LengthUm = 1.0
    """Routing wire width, lambda -- converts wirelength to wire area."""

    def __post_init__(self) -> None:
        # Non-strict: zero R/C technologies are legal to *construct*
        # (unit tests exercise degenerate cases); the flow entry points
        # re-validate with strict=True.
        from repro.check.validate import validate_technology

        validate_technology(self, strict=False)

    def wire_area(self, length: LengthUm) -> AreaUm2:
        """Layout area of ``length`` units of routed wire, lambda^2."""
        return length * self.wire_width

    def wire_cap(self, length: LengthUm) -> CapacitanceFF:
        """Total capacitance of a wire of the given length, pF."""
        return self.unit_wire_capacitance * length

    def wire_res(self, length: LengthUm) -> ResistanceOhm:
        """Total resistance of a wire of the given length, ohm."""
        return self.unit_wire_resistance * length

    def with_masking_gate(self, gate: GateModel) -> "Technology":
        """A copy with a different masking-gate model."""
        return replace(self, masking_gate=gate)
