"""Technology presets.

``date98_technology`` is calibrated so the synthetic r1-r5 benchmarks
land in the paper's reported ranges (switched capacitance of hundreds
of pF, routing area of a few 1e6 lambda^2).  ``unit_technology`` uses
round numbers and is what most unit tests build against.
"""

from __future__ import annotations

from repro.tech.parameters import GateModel, Technology

#: Size ratio between the baseline buffer and the masking AND gate
#: (paper section 5.1: buffer = half the size of the AND gate).
BUFFER_TO_GATE_SIZE_RATIO = 0.5


def date98_technology() -> Technology:
    """Constants representative of the paper's late-90s process.

    * wire: 0.03 ohm / lambda, 2.0e-4 pF / lambda
    * AND gate: 0.05 pF input, 60 ohm drive, small intrinsic delay,
      1000 lambda^2 of cell area
    * buffer: the AND gate scaled by 0.5

    The wire resistance is deliberately on the strong side so that
    mixed gated/ungated sibling merges can be skew-balanced with
    moderate wire snaking (the paper sizes its gates to tune phase
    delay instead; we keep cells fixed-size).
    """
    gate = GateModel(
        input_cap=0.05,
        drive_resistance=60.0,
        intrinsic_delay=2.0,
        area=1000.0,
    )
    return Technology(
        unit_wire_resistance=0.03,
        unit_wire_capacitance=2.0e-4,
        masking_gate=gate,
        buffer=gate.scaled(BUFFER_TO_GATE_SIZE_RATIO),
        clock_transitions_per_cycle=2.0,
        wire_width=1.0,
    )


def unit_technology() -> Technology:
    """Round-number constants for unit tests and worked examples."""
    gate = GateModel(
        input_cap=1.0,
        drive_resistance=1.0,
        intrinsic_delay=1.0,
        area=10.0,
    )
    return Technology(
        unit_wire_resistance=1.0,
        unit_wire_capacitance=1.0,
        masking_gate=gate,
        buffer=gate.scaled(BUFFER_TO_GATE_SIZE_RATIO),
        clock_transitions_per_cycle=2.0,
        wire_width=1.0,
    )
