"""Elmore-delay engine for clock trees with decoupling cells.

The clock routers do their own incremental delay bookkeeping while
merging; this package provides the *independent* evaluator used to
audit finished trees: it rebuilds the RC network from the embedded tree
and recomputes every sink delay from scratch, so tests can assert that
the incremental math and the ground-truth Elmore model agree and that
skew is exactly zero.
"""

from repro.rc.elmore import EdgeElectrical, ElmoreEvaluator, SinkDelay

__all__ = ["EdgeElectrical", "ElmoreEvaluator", "SinkDelay"]
