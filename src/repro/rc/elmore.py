"""Elmore delay evaluation for (possibly gated) clock trees.

Model
-----
Every tree edge is a distributed RC wire of electrical length ``L``
(which may exceed the Manhattan distance of its endpoints when the
router snaked the wire): resistance ``r*L``, capacitance ``c*L``.  An
edge may carry a *cell* (masking AND gate or buffer) at its **top** --
the cell input hangs on the parent node, the cell output drives the
wire.  An ideal decoupling cell:

* presents only its input capacitance upstream,
* adds ``D + R_drive * C_downstream`` to the path delay, where
  ``C_downstream`` is everything below the cell up to the next cells.

The Elmore delay of a sink is then the sum over the path of

``D_cell + R_cell * (c*L + C_sub)  +  r*L * (c*L/2 + C_sub)``

per edge, where ``C_sub`` is the capacitance presented at the edge's
bottom node and the cell terms vanish on plain wires.  This is exactly
the bookkeeping the routers do incrementally; this module recomputes it
non-incrementally from the final tree for auditing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.check.errors import ContractError
from repro.quantity import CapacitanceFF, DelayPs, LengthUm, NodeId
from repro.tech.parameters import GateModel, Technology


@dataclass(frozen=True)
class EdgeElectrical:
    """Electrical description of one tree edge, as seen by the evaluator.

    ``parent < 0`` marks the root pseudo-edge (no wire, no cell).
    """

    node: NodeId
    parent: NodeId
    length: LengthUm
    cell: Optional[GateModel]
    node_cap: CapacitanceFF
    """Capacitance attached directly at the bottom node (sink load for
    leaves, zero for internal nodes -- children's contributions are
    accumulated separately)."""


@dataclass(frozen=True)
class SinkDelay:
    """Delay of one sink, plus the path capacitance audit."""

    node: NodeId
    delay: DelayPs


class ElmoreEvaluator:
    """Recomputes subtree capacitances and sink delays for a tree.

    Parameters
    ----------
    edges:
        One :class:`EdgeElectrical` per node, in any order.  Exactly one
        entry must be the root (``parent < 0``).
    children:
        Adjacency: ``children[i]`` lists the node ids whose parent is
        ``i``.
    tech:
        Wire RC constants.
    """

    def __init__(
        self,
        edges: Sequence[EdgeElectrical],
        children: Dict[int, List[int]],
        tech: Technology,
    ):
        self._edges = {e.node: e for e in edges}
        self._children = children
        self._tech = tech
        roots = [e.node for e in edges if e.parent < 0]
        if len(roots) != 1:
            raise ContractError("expected exactly one root, found %d" % len(roots))
        self._root = roots[0]
        self._presented: Dict[int, CapacitanceFF] = {}
        self._subtree_cap: Dict[int, CapacitanceFF] = {}
        self._compute_caps()

    @property
    def root(self) -> int:
        return self._root

    # ------------------------------------------------------------------
    # capacitance
    # ------------------------------------------------------------------
    def _compute_caps(self) -> None:
        """Bottom-up pass filling presented-cap tables (iterative)."""
        order = self._postorder()
        c = self._tech.unit_wire_capacitance
        for node in order:
            edge = self._edges[node]
            below = edge.node_cap + sum(
                self._presented[ch] for ch in self._children.get(node, [])
            )
            self._subtree_cap[node] = below
            if edge.parent < 0:
                self._presented[node] = below
            elif edge.cell is not None:
                self._presented[node] = edge.cell.input_cap
            else:
                self._presented[node] = c * edge.length + below

    def _postorder(self) -> List[int]:
        order: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self._children.get(node, []))
        order.reverse()
        return order

    def subtree_cap(self, node: NodeId) -> CapacitanceFF:
        """Capacitance hanging at ``node`` from below (before its edge)."""
        return self._subtree_cap[node]

    def presented_cap(self, node: NodeId) -> CapacitanceFF:
        """Capacitance the edge above ``node`` presents to the parent."""
        return self._presented[node]

    # ------------------------------------------------------------------
    # delay
    # ------------------------------------------------------------------
    def edge_delay(self, node: NodeId) -> DelayPs:
        """Elmore delay across the edge above ``node`` (cell + wire)."""
        edge = self._edges[node]
        if edge.parent < 0:
            return 0.0
        r = self._tech.unit_wire_resistance
        c = self._tech.unit_wire_capacitance
        load = self._subtree_cap[node]
        wire = r * edge.length * (c * edge.length / 2.0 + load)
        if edge.cell is None:
            return wire
        cell = edge.cell
        return (
            cell.intrinsic_delay
            + cell.drive_resistance * (c * edge.length + load)
            + wire
        )

    def sink_delays(self) -> List[SinkDelay]:
        """Root-to-sink Elmore delay for every leaf."""
        arrival: Dict[int, DelayPs] = {self._root: 0.0}
        out: List[SinkDelay] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            kids = self._children.get(node, [])
            if not kids:
                out.append(SinkDelay(node=node, delay=arrival[node]))
                continue
            for ch in kids:
                arrival[ch] = arrival[node] + self.edge_delay(ch)
                stack.append(ch)
        return out

    def skew(self) -> DelayPs:
        """Max minus min sink delay (0 for a perfect zero-skew tree)."""
        delays = [s.delay for s in self.sink_delays()]
        return max(delays) - min(delays)

    def max_delay(self) -> DelayPs:
        """Phase delay: the (common) root-to-sink delay."""
        return max(s.delay for s in self.sink_delays())
