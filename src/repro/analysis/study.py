"""Spec-driven experiment campaigns.

A *study* is a JSON-serializable spec -- benchmarks x routing
configurations plus workload knobs -- that runs end to end and yields
one comparison row per (benchmark, configuration).  The CLI's
``gated-cts study`` subcommand drives it, so a full paper-style
evaluation is reproducible from a single committed file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.report import ComparisonRow, format_comparison
from repro.analysis.wirelength import wirelength_quality
from repro.bench.suite import benchmark_names, load_benchmark
from repro.check.errors import InputError
from repro.core.flow import ClockRoutingResult, route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.gate_sizing import GateSizingPolicy
from repro.tech.parameters import Technology
from repro.tech.presets import date98_technology

_METHOD_KINDS = ("buffered", "gated", "reduced")


@dataclass(frozen=True)
class MethodSpec:
    """One routing configuration of a study."""

    name: str
    kind: str = "reduced"
    knob: float = 0.5
    reduction_mode: str = "merge"
    num_controllers: int = 1
    candidate_limit: Optional[int] = 16
    skew_bound: float = 0.0
    gate_sizing: bool = False

    def __post_init__(self):
        if self.kind not in _METHOD_KINDS:
            raise InputError("kind must be one of %s" % (_METHOD_KINDS,))
        if not 0.0 <= self.knob <= 1.0:
            raise InputError("knob must lie in [0, 1]")

    def run(self, case, tech: Technology) -> ClockRoutingResult:
        if self.kind == "buffered":
            return route_buffered(
                case.sinks,
                tech,
                candidate_limit=self.candidate_limit,
                skew_bound=self.skew_bound,
            )
        reduction = (
            GateReductionPolicy.from_knob(self.knob, tech)
            if self.kind == "reduced"
            else None
        )
        return route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=reduction,
            reduction_mode=self.reduction_mode,
            num_controllers=self.num_controllers,
            candidate_limit=self.candidate_limit,
            gate_sizing=GateSizingPolicy() if self.gate_sizing else None,
            skew_bound=self.skew_bound,
        )


@dataclass(frozen=True)
class StudySpec:
    """A whole campaign: benchmarks x methods plus workload knobs."""

    benchmarks: Sequence[str] = ("r1",)
    methods: Sequence[MethodSpec] = field(
        default_factory=lambda: (
            MethodSpec(name="buffered", kind="buffered"),
            MethodSpec(name="gated", kind="gated"),
            MethodSpec(name="gate-red", kind="reduced"),
        )
    )
    scale: float = 0.25
    target_activity: float = 0.4
    locality: float = 0.55
    stream_length: int = 10000
    seed: Optional[int] = None

    def __post_init__(self):
        # Normalize sequences so loaded and constructed specs compare
        # equal.
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "methods", tuple(self.methods))
        known = set(benchmark_names())
        for name in self.benchmarks:
            if name not in known:
                raise InputError("unknown benchmark %r" % name)
        if not self.methods:
            raise InputError("a study needs at least one method")
        names = [m.name for m in self.methods]
        if len(set(names)) != len(names):
            raise InputError("method names must be unique")

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "StudySpec":
        methods = tuple(
            MethodSpec(**m) for m in data.get("methods", [])
        ) or StudySpec().methods
        kwargs = {k: v for k, v in data.items() if k != "methods"}
        return StudySpec(methods=methods, **kwargs)

    @staticmethod
    def load(path: Union[str, Path]) -> "StudySpec":
        with open(path, "r", encoding="utf-8") as handle:
            return StudySpec.from_dict(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmarks": list(self.benchmarks),
            "methods": [
                {
                    "name": m.name,
                    "kind": m.kind,
                    "knob": m.knob,
                    "reduction_mode": m.reduction_mode,
                    "num_controllers": m.num_controllers,
                    "candidate_limit": m.candidate_limit,
                    "skew_bound": m.skew_bound,
                    "gate_sizing": m.gate_sizing,
                }
                for m in self.methods
            ],
            "scale": self.scale,
            "target_activity": self.target_activity,
            "locality": self.locality,
            "stream_length": self.stream_length,
            "seed": self.seed,
        }

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)


@dataclass(frozen=True)
class StudyRow:
    """One (benchmark, method) outcome."""

    comparison: ComparisonRow
    wirelength_quality: float

    def to_dict(self) -> Dict[str, Any]:
        data = dict(self.comparison.__dict__)
        data["wirelength_quality"] = self.wirelength_quality
        return data


@dataclass(frozen=True)
class StudyResult:
    spec: StudySpec
    rows: List[StudyRow]

    def report(self) -> str:
        """Text report, one Fig. 3-style block per benchmark."""
        blocks = []
        for bench in self.spec.benchmarks:
            rows = [
                r.comparison for r in self.rows if r.comparison.benchmark == bench
            ]
            blocks.append(
                format_comparison(rows, title="Study: %s (scale=%.2f)" % (bench, self.spec.scale))
            )
        return "\n\n".join(blocks)

    def save(self, path: Union[str, Path]) -> None:
        data = {
            "spec": self.spec.to_dict(),
            "rows": [r.to_dict() for r in self.rows],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1)


def run_study(spec: StudySpec, tech: Optional[Technology] = None) -> StudyResult:
    """Execute a campaign; deterministic for a given spec."""
    tech = tech or date98_technology()
    rows: List[StudyRow] = []
    for bench in spec.benchmarks:
        case = load_benchmark(
            bench,
            scale=spec.scale,
            stream_length=spec.stream_length,
            target_activity=spec.target_activity,
            locality=spec.locality,
            seed=spec.seed,
        )
        for method in spec.methods:
            result = method.run(case, tech)
            comparison = ComparisonRow.from_result(bench, result)
            comparison = ComparisonRow(
                **{**comparison.__dict__, "method": method.name}
            )
            rows.append(
                StudyRow(
                    comparison=comparison,
                    wirelength_quality=wirelength_quality(result.tree),
                )
            )
    return StudyResult(spec=spec, rows=rows)
