"""Per-gate efficacy analysis.

For every masking gate in a routed network, compare what it *saves*
(the capacitance it stops from switching, relative to the enable that
would mask the edge if the gate were absent) with what it *costs* (its
enable star edge's switched capacitance).  The resulting ledger shows
which gates carry the design -- typically the roots of idle functional
clusters -- and which are dead weight, which is precisely the
structure the section-4.3 reduction rules exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.controller import EnableRouting
from repro.core.switched_cap import effective_enable_probabilities
from repro.cts.topology import ClockTree
from repro.tech.parameters import Technology


@dataclass(frozen=True)
class GateEfficacy:
    """The power ledger of one masking gate."""

    node_id: int
    enable_probability: float
    mask_probability_above: float
    """Enable probability of the nearest masking gate above (1.0 at
    the top): what the edge would switch at without this gate."""

    masked_cap: float
    """Capacitance (wire + pins, pF) this gate's edge controls."""

    saving: float
    """Switched capacitance saved per cycle by having the gate."""

    star_cost: float
    """Switched capacitance of this gate's enable star edge."""

    @property
    def net_benefit(self) -> float:
        return self.saving - self.star_cost

    @property
    def worthwhile(self) -> bool:
        return self.net_benefit > 0


def _controlled_cap(tree: ClockTree, node_id: int, tech: Technology) -> float:
    """Wire + directly-driven pin capacitance of one edge's net.

    Follows the net through cell-less child edges (iteratively; greedy
    merge orders can produce deep trees) and stops at cell inputs.
    """
    cap = 0.0
    stack = [(node_id, True)]
    while stack:
        current, include_wire = stack.pop()
        node = tree.node(current)
        if include_wire:
            cap += tech.wire_cap(node.edge_length)
        if node.is_sink:
            cap += node.sink.load_cap
            continue
        for child_id in node.children:
            child = tree.node(child_id)
            if child.edge_cell is not None:
                cap += child.edge_cell.input_cap
            else:
                stack.append((child_id, True))
    return cap


def gate_efficacy(
    tree: ClockTree,
    tech: Technology,
    routing: Optional[EnableRouting] = None,
) -> List[GateEfficacy]:
    """The per-gate ledger, most beneficial gates first.

    ``routing`` supplies the star costs; without it they are reported
    as zero (clock-tree-only view).
    """
    star_cost: Dict[int, float] = {}
    if routing is not None:
        c = tech.unit_wire_capacitance
        gate_in = tech.masking_gate.input_cap
        for route in routing.routes:
            star_cost[route.node_id] = (
                c * route.length + gate_in
            ) * route.transition_probability

    # Masking probability of the nearest gate STRICTLY above each node.
    above: Dict[int, float] = {tree.root_id: 1.0}
    eff = effective_enable_probabilities(tree)
    for node in tree.preorder():
        for child_id in node.children:
            above[child_id] = eff[node.id]

    a_clk = tech.clock_transitions_per_cycle
    ledger = []
    for node in tree.gates():
        controlled = _controlled_cap(tree, node.id, tech)
        saving = a_clk * controlled * (above[node.id] - node.enable_probability)
        ledger.append(
            GateEfficacy(
                node_id=node.id,
                enable_probability=node.enable_probability,
                mask_probability_above=above[node.id],
                masked_cap=controlled,
                saving=saving,
                star_cost=star_cost.get(node.id, 0.0),
            )
        )
    ledger.sort(key=lambda g: g.net_benefit, reverse=True)
    return ledger


def efficacy_summary(ledger: List[GateEfficacy]) -> Dict[str, float]:
    """Aggregate view: totals and the count of net-positive gates."""
    return {
        "gates": float(len(ledger)),
        "worthwhile_gates": float(sum(1 for g in ledger if g.worthwhile)),
        "total_saving": sum(g.saving for g in ledger),
        "total_star_cost": sum(g.star_cost for g in ledger),
        "net_benefit": sum(g.net_benefit for g in ledger),
    }
