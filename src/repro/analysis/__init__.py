"""Result auditing and paper-style reporting.

* :mod:`repro.analysis.audit` -- independent consistency checks over a
  routed tree (skew, capacitance bookkeeping, embedding validity,
  enable hierarchy);
* :mod:`repro.analysis.report` -- the text tables the benchmark
  harness prints: Table 4, the Fig. 3 comparison, the Fig. 4/5 sweeps
  and the Fig. 6 distributed-controller study;
* :mod:`repro.analysis.gates` -- per-gate efficacy ledger (marginal
  saving vs enable star cost);
* :mod:`repro.analysis.wirelength` -- rectilinear-MST reference and
  wirelength quality ratios;
* :mod:`repro.analysis.study` -- spec-driven experiment campaigns;
* :mod:`repro.analysis.ascii` -- terminal bar/line charts.
"""

from repro.analysis.audit import AuditReport, audit_tree
from repro.analysis.ascii import bar_chart, line_chart
from repro.analysis.gates import GateEfficacy, efficacy_summary, gate_efficacy
from repro.analysis.report import (
    ComparisonRow,
    format_comparison,
    format_table,
    method_comparison_rows,
)
from repro.analysis.study import MethodSpec, StudyResult, StudySpec, run_study
from repro.analysis.wirelength import (
    rectilinear_mst_length,
    wirelength_quality,
)

__all__ = [
    "AuditReport",
    "audit_tree",
    "bar_chart",
    "line_chart",
    "GateEfficacy",
    "efficacy_summary",
    "gate_efficacy",
    "ComparisonRow",
    "format_comparison",
    "format_table",
    "method_comparison_rows",
    "MethodSpec",
    "StudyResult",
    "StudySpec",
    "run_study",
    "rectilinear_mst_length",
    "wirelength_quality",
]
