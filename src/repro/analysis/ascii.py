"""Tiny ASCII charts for terminal-friendly result plots.

The paper's figures are bar/line charts; these helpers render the
regenerated data directly in the terminal so the examples and the CLI
can show the *shape* (who wins, where the optimum sits) without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from repro.check.errors import ContractError


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ContractError("labels and values must have equal length")
    if not values:
        raise ContractError("nothing to chart")
    if width < 1:
        raise ContractError("width must be positive")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(str(label)) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if value < 0:
            raise ContractError("bar values must be non-negative")
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            "%s  %s %.4g%s" % (str(label).rjust(label_w), bar.ljust(width), value, unit)
        )
    return "\n".join(lines)


def line_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Scatter/line chart of (x, y) points on a character grid."""
    if len(points) < 2:
        raise ContractError("need at least two points")
    if width < 2 or height < 2:
        raise ContractError("grid too small")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = round((x - x0) / xspan * (width - 1))
        row = height - 1 - round((y - y0) / yspan * (height - 1))
        grid[row][col] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("%.4g" % y1)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        " %-*.4g%*.4g   (y: %.4g..%.4g)" % (width // 2, x0, width - width // 2, x1, y0, y1)
    )
    return "\n".join(lines)
