"""Paper-style text reporting.

The benchmark harness regenerates each table/figure of the paper as a
text table; the builders here are shared between the pytest benches,
the examples, and the CLI so every surface prints identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.flow import ClockRoutingResult
from repro.cts.dme import MergerStats
from repro.obs import PhaseProfile


@dataclass(frozen=True)
class ComparisonRow:
    """One bar group of Fig. 3: a benchmark under one routing method."""

    benchmark: str
    method: str
    switched_cap: float
    clock_cap: float
    controller_cap: float
    area_total: float
    area_clock_wire: float
    area_controller_wire: float
    gate_count: int
    gate_reduction: float
    skew: float
    phase_delay: float
    wirelength: float

    @staticmethod
    def from_result(benchmark: str, result: ClockRoutingResult) -> "ComparisonRow":
        return ComparisonRow(
            benchmark=benchmark,
            method=result.method,
            switched_cap=result.switched_cap.total,
            clock_cap=result.switched_cap.clock_tree,
            controller_cap=result.switched_cap.controller_tree,
            area_total=result.area.total,
            area_clock_wire=result.area.clock_wire,
            area_controller_wire=result.area.controller_wire,
            gate_count=result.gate_count,
            gate_reduction=result.gate_reduction,
            skew=result.skew,
            phase_delay=result.phase_delay,
            wirelength=result.wirelength,
        )


def method_comparison_rows(
    benchmark: str, results: Sequence[ClockRoutingResult]
) -> List[ComparisonRow]:
    """Fig. 3 rows for one benchmark."""
    return [ComparisonRow.from_result(benchmark, r) for r in results]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table (floats rendered with 4 significant digits)."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return "%.4g" % value
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(rows: Sequence[ComparisonRow], title: str) -> str:
    """Fig. 3-style table: switched cap and area per method."""
    headers = [
        "bench",
        "method",
        "W total (pF)",
        "W clock",
        "W ctrl",
        "area (1e6 l^2)",
        "gates",
        "reduction",
        "skew",
    ]
    data = [
        [
            r.benchmark,
            r.method,
            r.switched_cap,
            r.clock_cap,
            r.controller_cap,
            r.area_total / 1e6,
            r.gate_count,
            r.gate_reduction,
            r.skew,
        ]
        for r in rows
    ]
    return format_table(headers, data, title=title)


def format_merger_stats(
    stats_by_config: Dict[str, MergerStats],
    title: str = "Merger work counters",
) -> str:
    """One row of :class:`~repro.cts.dme.MergerStats` per configuration.

    Used by the DME cache/index scaling bench to show where the plan
    evaluations of each engine configuration went (computed vs served
    from the plan cache vs pruned by cost lower bounds).
    """
    headers = [
        "config",
        "plans",
        "cache hits",
        "pruned",
        "probes",
        "heap pops",
        "stale",
        "index queries",
        "batches",
        "batched cands",
        "lane fallbacks",
        "dist reuses",
    ]
    #: snapshot() keys backing each column, in header order.
    columns = [
        "plans_computed",
        "plan_cache_hits",
        "pruned_probes",
        "cost_probes",
        "heap_pops",
        "stale_entries",
        "index_queries",
        "kernel_batches",
        "kernel_candidates",
        "kernel_scalar_fallbacks",
        "distance_reuses",
    ]
    data = []
    for name, stats in stats_by_config.items():
        snapshot = stats.snapshot()
        data.append([name] + [snapshot[key] for key in columns])
    return format_table(headers, data, title=title)


def format_phase_times(
    profile: PhaseProfile, title: str = "Phase wall-clock profile"
) -> str:
    """Per-phase wall-clock table from a span-trace profile.

    ``profile`` comes from :func:`repro.obs.phase_profile` over a
    tracer's spans; the CLI prints this table whenever ``--trace`` is
    given, and the phase-profile bench persists the same rows to
    ``BENCH_phase_profile.json``.  Traces recorded with a memory
    sampler attached (``--profile-memory``) grow two extra columns:
    peak heap growth and net allocated blocks per phase.
    """
    memory = profile.has_memory
    headers = ["phase", "spans", "seconds", "share"]
    if memory:
        headers += ["peak MiB", "allocs"]

    def _mem_cells(peak, blocks):
        if not memory:
            return []
        if peak is None:
            return ["-", "-"]
        return ["%.2f" % (peak / (1024.0 * 1024.0)), blocks]

    data = [
        [row.name, row.count, row.total_ns / 1e9, "%.1f%%" % (100 * row.fraction)]
        + _mem_cells(row.mem_peak_bytes, row.mem_alloc_blocks)
        for row in profile.rows
    ]
    # Detail rows are nested inside phases already listed (they sit
    # deeper than depth 1), so they render indented and do not join
    # the coverage sum.
    data.extend(
        [
            "  " + row.name,
            row.count,
            row.total_ns / 1e9,
            "%.1f%%" % (100 * row.fraction),
        ]
        + _mem_cells(row.mem_peak_bytes, row.mem_alloc_blocks)
        for row in profile.detail_rows
    )
    data.append(
        [
            "(total traced)",
            sum(r.count for r in profile.rows),
            profile.root_ns / 1e9,
            "%.1f%% covered" % (100 * profile.coverage),
        ]
        + _mem_cells(profile.root_mem_peak_bytes, "")
    )
    return format_table(headers, data, title=title)


def format_characteristics(rows: Dict[str, Dict[str, float]]) -> str:
    """Table 4: benchmark characteristics."""
    headers = [
        "bench",
        "sinks",
        "instructions",
        "stream cycles",
        "Ave(M(I))",
        "avg activity",
    ]
    data = [
        [
            name,
            int(c["sinks"]),
            int(c["instructions"]),
            int(c["stream_cycles"]),
            c["ave_modules_per_instruction"],
            c["average_module_activity"],
        ]
        for name, c in rows.items()
    ]
    return format_table(headers, data, title="Table 4: benchmark characteristics")
