"""Wirelength references: rectilinear MST and quality ratios.

Clock-tree papers report wirelength against the rectilinear minimum
spanning tree of the sinks -- cheap to compute (Prim, O(N^2)) and a
2-approximation of the rectilinear Steiner minimum tree, so
``tree wirelength / RMST`` is a technology-independent quality figure.
A zero-skew tree is necessarily longer than the RMST (it must balance,
not just connect); typical DME trees land around 1.1-1.5x.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.check.errors import ContractError
from repro.check.tolerance import effectively_zero
from repro.cts.topology import ClockTree, Sink
from repro.geometry.point import Point


def rectilinear_mst_length(points: Sequence[Point]) -> float:
    """Length of the Manhattan-metric minimum spanning tree (Prim)."""
    n = len(points)
    if n == 0:
        raise ContractError("need at least one point")
    if n == 1:
        return 0.0
    xs = np.array([p.x for p in points], dtype=float)
    ys = np.array([p.y for p in points], dtype=float)
    in_tree = np.zeros(n, dtype=bool)
    best = np.full(n, np.inf)
    in_tree[0] = True
    best = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    best[0] = np.inf
    total = 0.0
    for _ in range(n - 1):
        nxt = int(np.argmin(best))
        total += float(best[nxt])
        in_tree[nxt] = True
        dist = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        best = np.minimum(best, dist)
        best[in_tree] = np.inf
    return total


def rectilinear_mst_edges(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """The MST's edges as point-index pairs (Prim order)."""
    n = len(points)
    if n == 0:
        raise ContractError("need at least one point")
    if n == 1:
        return []
    xs = np.array([p.x for p in points], dtype=float)
    ys = np.array([p.y for p in points], dtype=float)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    parent = np.zeros(n, dtype=int)
    best[0] = np.inf
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        nxt = int(np.argmin(best))
        edges.append((int(parent[nxt]), nxt))
        in_tree[nxt] = True
        dist = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        better = dist < best
        parent[better] = nxt
        best = np.minimum(best, dist)
        best[in_tree] = np.inf
    return edges


def wirelength_quality(tree: ClockTree) -> float:
    """``tree wirelength / sink RMST`` -- >= 1 for any connected tree
    whose sinks are leaves (balancing and Steiner points only add
    wire relative to the spanning lower reference in practice).

    A degenerate reference (all sinks co-located, so the RMST is zero
    up to accumulation noise) reports quality 1.0 rather than
    dividing by a rounding residue.
    """
    sinks = [n.sink.location for n in tree.sinks()]
    mst = rectilinear_mst_length(sinks)
    if effectively_zero(mst):
        return 1.0
    return tree.total_wirelength() / mst


def half_perimeter_lower_bound(sinks: Sequence[Sink]) -> float:
    """Half the sink bounding-box perimeter -- a weak universal lower
    bound on any connecting tree's wirelength."""
    if not sinks:
        raise ContractError("need at least one sink")
    xs = [s.location.x for s in sinks]
    ys = [s.location.y for s in sinks]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
