"""Independent consistency checks over a routed clock tree.

The routers maintain capacitance and delay bookkeeping incrementally;
``audit_tree`` recomputes everything from scratch (via
:class:`repro.rc.ElmoreEvaluator` and the raw geometry) and reports
any disagreement.  The integration tests run it after every build, so
a bookkeeping regression cannot hide behind a matching incremental
value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cts.topology import ClockTree


@dataclass
class AuditReport:
    """Outcome of :func:`audit_tree`."""

    skew: float
    phase_delay: float
    max_cap_error: float
    """Largest |router subtree cap - recomputed subtree cap|, pF."""

    max_delay_error: float
    """|router root delay - recomputed phase delay|."""

    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def audit_tree(
    tree: ClockTree,
    skew_tolerance: float = 1e-6,
    cap_tolerance: float = 1e-9,
    skew_bound: float = 0.0,
) -> AuditReport:
    """Re-derive skew/caps/delays from the embedded tree and compare.

    ``skew_tolerance`` is relative to the phase delay; ``cap_tolerance``
    is relative to the total subtree capacitance.  ``skew_bound`` is
    the tree's declared skew budget (0 for exact zero-skew trees): the
    recomputed skew may not exceed it beyond tolerance, and the
    router's delay interval must bracket the recomputed arrivals.
    """
    problems: List[str] = []
    evaluator = tree.elmore_evaluator()
    delays = evaluator.sink_delays()
    phase = max(s.delay for s in delays)
    earliest = min(s.delay for s in delays)
    skew = phase - earliest
    if phase > 0 and skew > skew_bound + skew_tolerance * phase:
        problems.append(
            "skew %.3e exceeds the bound %.3e (+%.1e of the phase delay %.3e)"
            % (skew, skew_bound, skew_tolerance, phase)
        )
    root = tree.root
    if earliest < root.sink_delay_min - skew_tolerance * max(phase, 1.0):
        problems.append(
            "root interval low edge %.6g above earliest recomputed arrival %.6g"
            % (root.sink_delay_min, earliest)
        )

    max_cap_error = 0.0
    for node in tree.nodes():
        recomputed = evaluator.subtree_cap(node.id)
        error = abs(recomputed - node.subtree_cap)
        max_cap_error = max(max_cap_error, error)
        if error > cap_tolerance * max(recomputed, 1.0):
            problems.append(
                "node %d subtree cap drift: router %.6g vs recomputed %.6g"
                % (node.id, node.subtree_cap, recomputed)
            )

    root = tree.root
    max_delay_error = abs(root.sink_delay - phase)
    if phase > 0 and max_delay_error > skew_tolerance * phase:
        problems.append(
            "root delay drift: router %.6g vs recomputed %.6g"
            % (root.sink_delay, phase)
        )

    try:
        tree.validate_embedding()
    except ValueError as exc:
        problems.append("embedding invalid: %s" % exc)

    # Enable hierarchy (paper section 1): a node's module set is the
    # union of its children's, so every enable is the OR of its
    # descendants' and can only be *more* active than any of them.
    for node in tree.internal_nodes():
        child_union = 0
        for child_id in node.children:
            child = tree.node(child_id)
            child_union |= child.module_mask
            if node.enable_probability < child.enable_probability - 1e-9:
                problems.append(
                    "node %d enable probability below child %d's"
                    % (node.id, child_id)
                )
        if node.module_mask != child_union:
            problems.append(
                "node %d module mask is not the union of its children's" % node.id
            )

    return AuditReport(
        skew=skew,
        phase_delay=phase,
        max_cap_error=max_cap_error,
        max_delay_error=max_delay_error,
        problems=problems,
    )
