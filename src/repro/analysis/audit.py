"""Independent consistency checks over a routed clock tree.

The routers maintain capacitance and delay bookkeeping incrementally;
``audit_tree`` recomputes everything from scratch (via
:class:`repro.rc.ElmoreEvaluator` and the raw geometry) and reports
any disagreement.  The integration tests run it after every build, so
a bookkeeping regression cannot hide behind a matching incremental
value.

This module is now a thin compatibility wrapper over the full-network
auditor in :mod:`repro.check.auditor`, which adds TRR/embedding and
controller-star invariants and structured findings; ``audit_tree``
keeps the original per-tree report shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.check.auditor import audit_network
from repro.cts.topology import ClockTree


@dataclass
class AuditReport:
    """Outcome of :func:`audit_tree`."""

    skew: float
    phase_delay: float
    max_cap_error: float
    """Largest |router subtree cap - recomputed subtree cap|, pF."""

    max_delay_error: float
    """|router root delay - recomputed phase delay|."""

    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def audit_tree(
    tree: ClockTree,
    skew_tolerance: float = 1e-6,
    cap_tolerance: float = 1e-9,
    skew_bound: float = 0.0,
) -> AuditReport:
    """Re-derive skew/caps/delays from the embedded tree and compare.

    ``skew_tolerance`` is relative to the phase delay; ``cap_tolerance``
    is relative to the total subtree capacitance.  ``skew_bound`` is
    the tree's declared skew budget (0 for exact zero-skew trees): the
    recomputed skew may not exceed it beyond tolerance, and the
    router's delay interval must bracket the recomputed arrivals.
    """
    report = audit_network(
        tree,
        routing=None,
        skew_tolerance=skew_tolerance,
        cap_tolerance=cap_tolerance,
        skew_bound=skew_bound,
    )
    return AuditReport(
        skew=report.skew,
        phase_delay=report.phase_delay,
        max_cap_error=report.max_cap_error,
        max_delay_error=report.max_delay_error,
        problems=report.problems,
    )
