"""repro -- gated clock routing minimizing the switched capacitance.

A full reproduction of Oh & Pedram (DATE 1998): activity-driven,
zero-skew, gated clock-tree synthesis, including the buffered baseline,
the table-driven activity statistics, the gate-reduction heuristic,
and the distributed-controller extension.

Quickstart::

    from repro import load_benchmark, route_buffered, route_gated
    from repro import GateReductionPolicy, date98_technology

    case = load_benchmark("r1", scale=0.2)
    tech = date98_technology()
    base = route_buffered(case.sinks, tech)
    gated = route_gated(
        case.sinks, tech, case.oracle, die=case.die,
        reduction=GateReductionPolicy.from_knob(0.55, tech),
    )
    print(base.summary())
    print(gated.summary())
"""

from repro.activity import (
    ActivityOracle,
    ActivityTables,
    Instruction,
    InstructionSet,
    InstructionStream,
    MarkovStreamModel,
)
from repro.bench import BenchmarkCase, CpuModel, CpuModelConfig, load_benchmark
from repro.core import (
    ClockRoutingResult,
    ControllerLayout,
    GateReductionPolicy,
    build_gated_tree,
    route_buffered,
    route_gated,
)
from repro.core.gate_sizing import GateSizingPolicy
from repro.cts import ClockTree, RefineConfig, Sink, build_buffered_tree, refine_tree
from repro.geometry import Point
from repro.sim import ClockNetworkSimulator
from repro.tech import GateModel, Technology, date98_technology, unit_technology

__version__ = "1.0.0"

__all__ = [
    "ActivityOracle",
    "ActivityTables",
    "Instruction",
    "InstructionSet",
    "InstructionStream",
    "MarkovStreamModel",
    "BenchmarkCase",
    "CpuModel",
    "CpuModelConfig",
    "load_benchmark",
    "ClockRoutingResult",
    "ControllerLayout",
    "GateReductionPolicy",
    "build_gated_tree",
    "route_buffered",
    "route_gated",
    "GateSizingPolicy",
    "ClockTree",
    "RefineConfig",
    "refine_tree",
    "Sink",
    "build_buffered_tree",
    "Point",
    "ClockNetworkSimulator",
    "GateModel",
    "Technology",
    "date98_technology",
    "unit_technology",
    "__version__",
]
