"""Manhattan-plane geometry substrate for clock-tree construction.

The deferred-merge embedding (DME) machinery used by both the buffered
baseline and the gated clock router works on *Manhattan arcs* (segments
of slope +/-1) and *tilted rectangle regions* (TRRs).  Both become
axis-aligned objects in the rotated coordinate system

    u = x + y,    v = x - y,

where the Manhattan (L1) distance between two points equals the
Chebyshev (L-infinity) distance of their (u, v) images.  Every geometric
operation needed by the router -- distance between merging segments,
"core" expansion by a radius, intersection of cores -- is an interval
computation in (u, v).

Public names:

``Point``
    Immutable 2-D point with Manhattan-distance helpers.
``Trr``
    Tilted rectangle region, also used (degenerate) for Manhattan arcs
    and single points.
``ManhattanArc``
    Convenience wrapper describing a merging segment by its endpoints.
"""

from repro.geometry.point import Point, manhattan_distance
from repro.geometry.trr import Trr
from repro.geometry.arc import ManhattanArc

__all__ = ["Point", "manhattan_distance", "Trr", "ManhattanArc"]
