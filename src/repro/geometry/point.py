"""Points in the Manhattan plane.

Coordinates are floats in layout units (lambda).  The rotated
coordinates ``u = x + y`` and ``v = x - y`` turn the L1 metric into the
L-infinity metric, which is what makes tilted-rectangle arithmetic (see
:mod:`repro.geometry.trr`) a pair of independent interval computations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.quantity import LengthUm


@dataclass(frozen=True)
class Point:
    """An immutable point ``(x, y)`` in the layout plane."""

    x: LengthUm
    y: LengthUm

    @property
    def u(self) -> LengthUm:
        """Rotated coordinate ``x + y``."""
        return self.x + self.y

    @property
    def v(self) -> LengthUm:
        """Rotated coordinate ``x - y``."""
        return self.x - self.y

    @staticmethod
    def from_uv(u: LengthUm, v: LengthUm) -> "Point":
        """Build a point from rotated coordinates."""
        return Point((u + v) / 2.0, (u - v) / 2.0)

    def manhattan_to(self, other: "Point") -> LengthUm:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> LengthUm:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: LengthUm, dy: LengthUm) -> "Point":
        """A copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def is_close(self, other: "Point", tol: LengthUm = 1e-9) -> bool:
        """True when both coordinates match within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def manhattan_distance(a: Point, b: Point) -> LengthUm:
    """Manhattan (L1) distance between two points."""
    return a.manhattan_to(b)
