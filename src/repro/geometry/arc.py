"""Manhattan arcs -- the merging segments of deferred-merge embedding.

A Manhattan arc is a (possibly degenerate) line segment of slope +1 or
-1.  Internally it is just a degenerate :class:`~repro.geometry.trr.Trr`
(one of the rotated extents is zero); this module adds the segment-
flavored API the clock-tree code wants: endpoints, length, parametric
points, and the paper's ``mid(ms(v))`` used to estimate controller-tree
edge lengths during bottom-up merging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.trr import Trr


@dataclass(frozen=True)
class ManhattanArc:
    """A merging segment described by its underlying TRR."""

    region: Trr

    def __post_init__(self) -> None:
        if not self.region.is_arc:
            raise GeometryError("region is a 2-D TRR, not a Manhattan arc")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(p: Point) -> "ManhattanArc":
        """The degenerate arc consisting of a single point."""
        return ManhattanArc(Trr.from_point(p))

    @staticmethod
    def from_endpoints(a: Point, b: Point, tol: float = 1e-6) -> "ManhattanArc":
        """The arc between two points; they must lie on a +/-1 slope line."""
        trr = Trr.from_segment(a, b)
        if not trr.is_arc and min(trr.u_extent, trr.v_extent) > tol:
            raise GeometryError("endpoints do not define a slope +/-1 segment")
        return ManhattanArc(trr)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.region.is_point

    @property
    def length(self) -> float:
        """Manhattan length of the arc (L1 distance between endpoints).

        A slope +/-1 segment of rotated extent ``d`` has L1 length ``d``.
        """
        return max(self.region.u_extent, self.region.v_extent)

    def endpoints(self) -> tuple[Point, Point]:
        """The two endpoints (equal for a degenerate arc)."""
        if self.is_point:
            c = self.region.center()
            return c, c
        return self.region.endpoints_xy()

    def midpoint(self) -> Point:
        """The paper's ``mid(ms(v))`` -- center of the merging segment."""
        return self.region.center()

    def point_at(self, t: float) -> Point:
        """Parametric point, ``t`` in [0, 1] from one endpoint to the other."""
        if not 0.0 <= t <= 1.0:
            raise GeometryError("t must lie in [0, 1]")
        a, b = self.endpoints()
        return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))

    def distance_to(self, other: "ManhattanArc") -> float:
        """Minimum Manhattan distance between two arcs."""
        return self.region.distance_to(other.region)

    def nearest_point_to(self, p: Point) -> Point:
        """The arc point closest (L1) to ``p``."""
        return self.region.nearest_point_to(p)
