"""Tilted rectangle regions (TRRs).

A TRR is the Minkowski sum of a Manhattan arc (a segment of slope +/-1,
possibly degenerate to a point) with an L1 ball -- the shape swept out
by all points within a given Manhattan radius of the arc.  TRRs are the
working objects of the deferred-merge embedding: during the bottom-up
phase every subtree root is represented by a *merging segment* (a
Manhattan arc, i.e. a degenerate TRR), and candidate placement regions
are intersections of expanded TRR "cores".

In the rotated coordinates ``u = x + y``, ``v = x - y`` a TRR is an
axis-aligned rectangle ``[ulo, uhi] x [vlo, vhi]`` and

* Manhattan distance between TRRs = max of the two interval gaps,
* expansion by radius r = widening both intervals by r,
* intersection = interval intersection.

All methods keep the rectangle representation; use
:meth:`Trr.endpoints_xy` / :meth:`Trr.center` to get back to layout
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.check.errors import GeometryError
from repro.geometry.point import Point
from repro.quantity import LengthUm

_EPS = 1e-9


def _interval_gap(lo1: float, hi1: float, lo2: float, hi2: float) -> float:
    """Signed-clamped gap between two closed intervals (0 if they meet)."""
    return max(0.0, lo2 - hi1, lo1 - hi2)


def _interval_nearest(lo1: float, hi1: float, lo2: float, hi2: float) -> Tuple[float, float]:
    """A pair (c1, c2), one coordinate in each interval, at minimum distance.

    When the intervals overlap both coordinates coincide at the middle of
    the overlap, which keeps top-down placements well-centered.
    """
    olo, ohi = max(lo1, lo2), min(hi1, hi2)
    if olo <= ohi:
        mid = (olo + ohi) / 2.0
        return mid, mid
    if hi1 < lo2:
        return hi1, lo2
    return lo1, hi2


@dataclass(frozen=True)
class Trr:
    """A tilted rectangle region stored as a (u, v) rectangle.

    Invariant: ``ulo <= uhi`` and ``vlo <= vhi`` (within floating-point
    tolerance; the constructor snaps tiny negative extents to zero).
    """

    ulo: LengthUm
    uhi: LengthUm
    vlo: LengthUm
    vhi: LengthUm

    def __post_init__(self) -> None:
        if self.ulo - self.uhi > _EPS or self.vlo - self.vhi > _EPS:
            raise GeometryError(
                "degenerate TRR: [%g, %g] x [%g, %g]" % (self.ulo, self.uhi, self.vlo, self.vhi)
            )
        # Snap tiny inversions produced by floating-point noise.
        if self.ulo > self.uhi:
            object.__setattr__(self, "uhi", self.ulo)
        if self.vlo > self.vhi:
            object.__setattr__(self, "vhi", self.vlo)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(p: Point, radius: LengthUm = 0.0) -> "Trr":
        """The TRR of all points within ``radius`` of ``p`` (L1 ball)."""
        if radius < 0:
            raise GeometryError("radius must be non-negative")
        return Trr(p.u - radius, p.u + radius, p.v - radius, p.v + radius)

    @staticmethod
    def from_segment(a: Point, b: Point) -> "Trr":
        """The TRR spanned by two points.

        For a Manhattan arc (slope +/-1 segment) this is the arc itself;
        for arbitrary points it is the smallest TRR containing both.
        """
        return Trr(
            min(a.u, b.u), max(a.u, b.u), min(a.v, b.v), max(a.v, b.v)
        )

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def bounds_uv(self) -> Tuple[float, float, float, float]:
        """``(ulo, uhi, vlo, vhi)`` -- the row format of the vectorized
        kernels' struct-of-arrays mirror (:mod:`repro.cts.kernels`)."""
        return (self.ulo, self.uhi, self.vlo, self.vhi)

    @property
    def u_extent(self) -> LengthUm:
        return self.uhi - self.ulo

    @property
    def v_extent(self) -> LengthUm:
        return self.vhi - self.vlo

    @property
    def is_point(self) -> bool:
        """True when the region is a single point."""
        return self.u_extent <= _EPS and self.v_extent <= _EPS

    @property
    def is_arc(self) -> bool:
        """True when the region is a Manhattan arc (including a point)."""
        return self.u_extent <= _EPS or self.v_extent <= _EPS

    def center(self) -> Point:
        """The center of the region in layout coordinates."""
        return Point.from_uv((self.ulo + self.uhi) / 2.0, (self.vlo + self.vhi) / 2.0)

    def corners_xy(self) -> List[Point]:
        """The (up to four) corners, in layout coordinates."""
        seen = []
        for u in (self.ulo, self.uhi):
            for v in (self.vlo, self.vhi):
                p = Point.from_uv(u, v)
                if not any(p.is_close(q) for q in seen):
                    seen.append(p)
        return seen

    def endpoints_xy(self) -> Tuple[Point, Point]:
        """Endpoints when the region is a Manhattan arc.

        Raises :class:`ValueError` for a proper (2-D) rectangle.
        """
        if not self.is_arc:
            raise GeometryError("TRR is not a Manhattan arc")
        if self.u_extent > self.v_extent:
            v = (self.vlo + self.vhi) / 2.0
            return Point.from_uv(self.ulo, v), Point.from_uv(self.uhi, v)
        u = (self.ulo + self.uhi) / 2.0
        return Point.from_uv(u, self.vlo), Point.from_uv(u, self.vhi)

    def contains_point(self, p: Point, tol: float = _EPS) -> bool:
        """Membership test in layout coordinates."""
        return (
            self.ulo - tol <= p.u <= self.uhi + tol
            and self.vlo - tol <= p.v <= self.vhi + tol
        )

    def contains_trr(self, other: "Trr", tol: float = _EPS) -> bool:
        """True when ``other`` is entirely inside ``self``."""
        return (
            self.ulo - tol <= other.ulo
            and other.uhi <= self.uhi + tol
            and self.vlo - tol <= other.vlo
            and other.vhi <= self.vhi + tol
        )

    # ------------------------------------------------------------------
    # metric operations
    # ------------------------------------------------------------------
    def distance_to_point(self, p: Point) -> LengthUm:
        """Manhattan distance from ``p`` to the nearest point of the region."""
        gu = _interval_gap(self.ulo, self.uhi, p.u, p.u)
        gv = _interval_gap(self.vlo, self.vhi, p.v, p.v)
        return max(gu, gv)

    def distance_to(self, other: "Trr") -> LengthUm:
        """Minimum Manhattan distance between two regions (0 if they meet)."""
        gu = _interval_gap(self.ulo, self.uhi, other.ulo, other.uhi)
        gv = _interval_gap(self.vlo, self.vhi, other.vlo, other.vhi)
        return max(gu, gv)

    def nearest_point_to(self, p: Point) -> Point:
        """The point of the region closest (in L1) to ``p``.

        Ties are broken by clamping both rotated coordinates, which
        yields the L-infinity projection in (u, v) space; any such point
        achieves the minimum Manhattan distance.
        """
        u = min(max(p.u, self.ulo), self.uhi)
        v = min(max(p.v, self.vlo), self.vhi)
        return Point.from_uv(u, v)

    def nearest_points(self, other: "Trr") -> Tuple[Point, Point]:
        """A pair of mutually-nearest points, one in each region."""
        u1, u2 = _interval_nearest(self.ulo, self.uhi, other.ulo, other.uhi)
        v1, v2 = _interval_nearest(self.vlo, self.vhi, other.vlo, other.vhi)
        return Point.from_uv(u1, v1), Point.from_uv(u2, v2)

    # ------------------------------------------------------------------
    # constructive operations
    # ------------------------------------------------------------------
    def core(self, radius: LengthUm) -> "Trr":
        """Minkowski expansion by an L1 ball of the given radius."""
        if radius < 0:
            raise GeometryError("radius must be non-negative")
        return Trr(self.ulo - radius, self.uhi + radius, self.vlo - radius, self.vhi + radius)

    def intersection(self, other: "Trr", tol: float = _EPS) -> Optional["Trr"]:
        """Intersection with another TRR, or ``None`` when disjoint.

        Overlaps thinner than ``tol`` are snapped to degenerate extent so
        that the intersection of two exactly-touching cores is the
        expected Manhattan arc.
        """
        ulo, uhi = max(self.ulo, other.ulo), min(self.uhi, other.uhi)
        vlo, vhi = max(self.vlo, other.vlo), min(self.vhi, other.vhi)
        if ulo - uhi > tol or vlo - vhi > tol:
            return None
        return Trr(min(ulo, uhi), max(ulo, uhi), min(vlo, vhi), max(vlo, vhi))

    def sample_points(self, n: int = 5) -> Iterable[Point]:
        """Evenly spread sample points (useful for tests and plotting)."""
        if n < 1:
            raise GeometryError("n must be positive")
        if n == 1:
            yield self.center()
            return
        for i in range(n):
            fu = i / (n - 1)
            for j in range(n):
                fv = j / (n - 1)
                yield Point.from_uv(
                    self.ulo + fu * self.u_extent, self.vlo + fv * self.v_extent
                )
