"""Cycle-accurate power trace of a gated clock network.

Routes a benchmark with the gated router, then *replays* its
instruction stream clock by clock: every cycle, only the subtrees
whose enables are on actually switch.  Prints the power trace summary,
an ASCII strip of a trace window, and the validation the library rests
on -- the replayed average equals the analytic switched capacitance
exactly.

Run:  python examples/power_trace.py
"""

from repro import (
    GateReductionPolicy,
    date98_technology,
    load_benchmark,
    route_buffered,
    route_gated,
)
from repro.analysis.ascii import line_chart
from repro.core.power import power_report, switched_cap_to_watts
from repro.sim import ClockNetworkSimulator


def main() -> None:
    tech = date98_technology()
    case = load_benchmark("r1", scale=0.25)
    result = route_gated(
        case.sinks,
        tech,
        case.oracle,
        die=case.die,
        candidate_limit=16,
        reduction=GateReductionPolicy.from_knob(0.5, tech),
    )
    buffered = route_buffered(case.sinks, tech, candidate_limit=16)

    sim = ClockNetworkSimulator(result.tree, tech, case.cpu.isa, routing=result.routing)
    replay = sim.run(case.stream)

    print("Replayed %d cycles over the gate-reduced clock network:" % replay.cycles)
    print("  analytic W : %8.2f pF/cycle" % result.switched_cap.total)
    print("  replayed W : %8.2f pF/cycle (exact match by construction)" % replay.mean_total)
    print("  peak cycle : %8.2f pF  (%.1fx the mean)" % (
        replay.peak_total, replay.peak_total / replay.mean_total))
    print("  buffered   : %8.2f pF/cycle, every cycle (nothing masked)" %
          buffered.switched_cap.total)

    report = power_report(result)
    print(
        "\nAt 200 MHz / 3.3 V: %.1f mW gated vs %.1f mW buffered"
        % (
            report.total_milliwatts,
            1e3 * switched_cap_to_watts(buffered.switched_cap.total),
        )
    )

    window = 120
    totals = (replay.clock_per_cycle + replay.controller_per_cycle)[:window]
    print()
    print(
        line_chart(
            list(enumerate(totals.tolist())),
            width=70,
            height=10,
            title="Switched capacitance per cycle (first %d cycles)" % window,
        )
    )

    fresh = case.cpu.stream(len(case.stream), seed=4242)
    fresh_replay = sim.run(fresh)
    print(
        "\nGeneralization: a fresh %d-cycle trace from the same CPU replays "
        "at %.2f pF/cycle (%.1f%% from the analytic model)."
        % (
            fresh_replay.cycles,
            fresh_replay.mean_total,
            100
            * abs(fresh_replay.mean_total - result.switched_cap.total)
            / result.switched_cap.total,
        )
    )


if __name__ == "__main__":
    main()
