"""Beyond the paper: skew budgets and gate sizing.

Two extensions the paper gestures at but does not evaluate:

* a **skew budget** (`repro.cts.bounded`): instead of exact zero skew,
  allow the sinks to differ by up to a bound -- the router then skips
  part of the balancing wire (especially the snaking that equalizes
  gated vs ungated siblings);
* **gate sizing** (`repro.core.gate_sizing`): "gates... can be sized
  to adjust the phase delay" -- resize cells instead of snaking.

This study routes the same benchmark with both knobs and reports the
wirelength and switched-capacitance effect of each.

Run:  python examples/skew_budget_study.py
"""

from repro import (
    GateReductionPolicy,
    date98_technology,
    load_benchmark,
    route_gated,
)
from repro.analysis.ascii import bar_chart
from repro.analysis.report import format_table
from repro.core.gate_sizing import GateSizingPolicy


def main() -> None:
    tech = date98_technology()
    case = load_benchmark("r1", scale=0.25)
    reduction = GateReductionPolicy.from_knob(0.5, tech)

    def route(**kwargs):
        return route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=16,
            reduction=reduction,
            **kwargs,
        )

    zero = route()
    configs = [("zero skew", zero)]
    for fraction in (0.05, 0.15):
        bound = fraction * zero.phase_delay
        configs.append(("skew <= %.0f" % bound, route(skew_bound=bound)))
    configs.append(("gate sizing", route(gate_sizing=GateSizingPolicy())))
    configs.append(
        (
            "sizing + skew",
            route(gate_sizing=GateSizingPolicy(), skew_bound=0.15 * zero.phase_delay),
        )
    )

    print(
        format_table(
            ["configuration", "skew", "wirelength", "wl vs zero", "W total (pF)"],
            [
                [
                    name,
                    r.skew,
                    r.wirelength,
                    r.wirelength / zero.wirelength,
                    r.switched_cap.total,
                ]
                for name, r in configs
            ],
            title="Skew budget and gate sizing on r1 (gate-reduced router)",
        )
    )

    print()
    print(
        bar_chart(
            [name for name, _ in configs],
            [r.wirelength for _, r in configs],
            width=44,
            title="Routed wirelength (lambda)",
        )
    )
    print(
        "\nEvery configuration keeps its skew within the declared budget; "
        "zero-skew rows are exact to floating point."
    )


if __name__ == "__main__":
    main()
