"""The power/area/gate-count trade-off (paper section 5.3, Fig. 5).

Sweeps the gate-reduction knob over a benchmark and prints the full
trade-off: with all gates the controller tree dominates both switched
capacitance and area; with too few gates the clock tree loses its
masking; in between sits the optimum the paper highlights.

Run:  python examples/gate_reduction_tradeoff.py
"""

from repro import (
    GateReductionPolicy,
    date98_technology,
    load_benchmark,
    route_buffered,
    route_gated,
)
from repro.analysis.ascii import line_chart
from repro.analysis.report import format_table

KNOBS = [0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0]


def main() -> None:
    tech = date98_technology()
    case = load_benchmark("r1", scale=0.25)
    baseline = route_buffered(case.sinks, tech, candidate_limit=16)
    print("Buffered baseline: W = %.1f pF\n" % baseline.switched_cap.total)

    rows = []
    best = None
    for knob in KNOBS:
        reduction = GateReductionPolicy.from_knob(knob, tech) if knob else None
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=16,
            reduction=reduction,
        )
        rows.append(
            [
                knob,
                100 * result.gate_reduction,
                result.gate_count,
                result.switched_cap.total,
                result.switched_cap.clock_tree,
                result.switched_cap.controller_tree,
                result.area.total / 1e6,
                result.switched_cap.total / baseline.switched_cap.total,
            ]
        )
        if best is None or result.switched_cap.total < best[1].switched_cap.total:
            best = (knob, result)

    print(
        format_table(
            [
                "knob",
                "reduction %",
                "gates",
                "W total",
                "W clock",
                "W ctrl",
                "area (1e6)",
                "vs buffered",
            ],
            rows,
            title="Gate reduction sweep (r1)",
        )
    )

    print()
    print(
        line_chart(
            [(row[1], row[3]) for row in rows],
            width=56,
            height=10,
            title="W total (pF) vs gate reduction (%) -- the Fig. 5 U-curve",
        )
    )

    knob, result = best
    print(
        "\nOptimum at knob %.2f: %.0f%% of the gate sites removed, "
        "W = %.1f pF (%.0f%% below buffered)."
        % (
            knob,
            100 * result.gate_reduction,
            result.switched_cap.total,
            100 * (1 - result.switched_cap.total / baseline.switched_cap.total),
        )
    )
    print(
        "The paper reports the same U-shape with its optimum at a 55% "
        "reduction on its r1 workload."
    )


if __name__ == "__main__":
    main()
