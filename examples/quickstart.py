"""Quickstart: route one benchmark three ways and compare.

Builds the r1 benchmark (scaled down for speed), routes it with the
buffered baseline, the fully gated router, and the gate-reduced
router, and prints the paper's Fig. 3-style comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    GateReductionPolicy,
    date98_technology,
    load_benchmark,
    route_buffered,
    route_gated,
)
from repro.analysis.report import ComparisonRow, format_comparison


def main() -> None:
    tech = date98_technology()
    case = load_benchmark("r1", scale=0.25)
    print(
        "Benchmark %s: %d sinks, %d instructions, %d-cycle stream"
        % (
            case.name,
            case.num_sinks,
            len(case.cpu.isa),
            len(case.stream),
        )
    )
    print(
        "Average module activity: %.3f (paper: ~0.4)\n"
        % case.tables.average_module_activity()
    )

    results = [
        route_buffered(case.sinks, tech, candidate_limit=16),
        route_gated(case.sinks, tech, case.oracle, die=case.die, candidate_limit=16),
        route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=16,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        ),
    ]

    rows = [ComparisonRow.from_result(case.name, r) for r in results]
    print(format_comparison(rows, title="Buffered vs gated vs gate-reduced"))

    buffered, gated, reduced = results
    print(
        "\nFully gated  : %.2fx the buffered switched capacitance "
        "(the star routing dominates)"
        % (gated.switched_cap.total / buffered.switched_cap.total)
    )
    print(
        "Gate reduced : %.2fx -- %.0f%% below the buffered baseline, "
        "with %d of %d gates kept"
        % (
            reduced.switched_cap.total / buffered.switched_cap.total,
            100 * (1 - reduced.switched_cap.total / buffered.switched_cap.total),
            reduced.gate_count,
            2 * case.num_sinks - 2,
        )
    )
    print("All trees are exactly zero-skew (Elmore): max skew %.2e" % max(
        r.skew for r in results
    ))


if __name__ == "__main__":
    main()
