"""Distributed gate controllers (paper section 6, Fig. 6).

The enable signals are star-routed, so with one central controller the
star wiring grows like G*D/4.  Splitting the die into k partitions
with one controller each should cut the star wirelength by sqrt(k).
This example measures the routed star against that analytical model
and renders the k=1 and k=16 layouts side by side.

Run:  python examples/distributed_controllers.py
"""

import math

from repro import (
    GateReductionPolicy,
    date98_technology,
    load_benchmark,
    route_gated,
)
from repro.analysis.report import format_table
from repro.core.controller import ControllerLayout, expected_star_wirelength
from repro.io.svg import save_svg


def main() -> None:
    tech = date98_technology()
    case = load_benchmark("r1", scale=0.25)
    reduction = GateReductionPolicy.from_knob(0.3, tech)

    rows = []
    rendered = {}
    for k in (1, 4, 16, 64):
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=16,
            num_controllers=k,
            reduction=reduction,
        )
        analytic = expected_star_wirelength(case.die.width, result.gate_count, k)
        rows.append(
            [
                k,
                result.gate_count,
                result.area.controller_wire,
                analytic,
                result.area.controller_wire / analytic,
                result.switched_cap.controller_tree,
                result.switched_cap.total,
            ]
        )
        rendered[k] = result

    print(
        format_table(
            [
                "k",
                "gates",
                "star wire (routed)",
                "G*D/(4*sqrt(k))",
                "routed/model",
                "W ctrl",
                "W total",
            ],
            rows,
            title="Distributed controllers on r1",
        )
    )

    w1 = rows[0][2]
    print("\nScaling of the routed star wire vs the sqrt(k) model:")
    for row in rows[1:]:
        k = row[0]
        print(
            "  k=%-3d measured /%.2f   model /%.2f"
            % (k, w1 / row[2], math.sqrt(k))
        )

    # The paper's closing question: the controller logic's complexity.
    from repro.core.controller_logic import synthesize_controller_logic

    logic = synthesize_controller_logic(rendered[1].tree, tech)
    print(
        "\nController logic (the paper's open question): %d enables, "
        "%d two-input OR gates (%.0f lambda^2), %d module-activity lines;"
        % (logic.enable_count, logic.or_gate_count, logic.area, logic.module_lines)
    )
    print(
        "distributing to k controllers duplicates the module lines per "
        "partition, while the OR hierarchy itself partitions cleanly."
    )

    for k in (1, 16):
        result = rendered[k]
        layout = (
            ControllerLayout.centralized(case.die)
            if k == 1
            else ControllerLayout.distributed(case.die, k)
        )
        path = "controllers_k%d.svg" % k
        save_svg(result.tree, path, routing=result.routing, layout=layout)
        print("Layout with k=%d written to %s" % (k, path))


if __name__ == "__main__":
    main()
