"""Gated clock routing for a custom microprocessor description.

This example does NOT use the prepackaged benchmarks: it builds a
small processor "by hand" the way the paper's section 3 does -- an RTL
usage table (instruction -> modules), an instruction trace -- plus a
floorplan, then walks the full flow:

1. IFT/IMATT from a single scan of the trace,
2. enable probabilities for arbitrary module groups,
3. zero-skew gated clock routing + enable star routing,
4. switched-capacitance accounting and an SVG of the layout.

Run:  python examples/microprocessor_gating.py
"""

import numpy as np

from repro import (
    ActivityOracle,
    ActivityTables,
    InstructionSet,
    InstructionStream,
    MarkovStreamModel,
    Point,
    Sink,
    date98_technology,
    route_buffered,
    route_gated,
)
from repro.core.controller import ControllerLayout, Die
from repro.io.svg import save_svg

# ----------------------------------------------------------------------
# 1. The processor: 12 modules, 8 instructions (paper Table 1 style).
# ----------------------------------------------------------------------
MODULE_NAMES = [
    "fetch", "decode", "regfile", "alu", "shifter", "mult",
    "lsu", "dcache_ctl", "branch", "csr", "fpu", "debug",
]

USAGE = {
    "add":    {"fetch", "decode", "regfile", "alu"},
    "shift":  {"fetch", "decode", "regfile", "shifter"},
    "mul":    {"fetch", "decode", "regfile", "mult"},
    "load":   {"fetch", "decode", "regfile", "lsu", "dcache_ctl"},
    "store":  {"fetch", "decode", "regfile", "lsu", "dcache_ctl"},
    "branch": {"fetch", "decode", "branch"},
    "fpadd":  {"fetch", "decode", "regfile", "fpu"},
    "csrrw":  {"fetch", "decode", "csr"},
}

#: How often each instruction is executed (branch-y integer code; the
#: FPU and CSR file are nearly idle -- prime gating targets).
POPULARITY = {
    "add": 0.30, "shift": 0.10, "mul": 0.06, "load": 0.22,
    "store": 0.14, "branch": 0.14, "fpadd": 0.02, "csrrw": 0.02,
}

#: Floorplan: module clock pins on a 2000x2000 lambda die.
PLACEMENT = {
    "fetch": (300, 1700), "decode": (700, 1700), "branch": (500, 1400),
    "regfile": (1000, 1000), "alu": (1300, 1200), "shifter": (1500, 1000),
    "mult": (1700, 1300), "lsu": (700, 400), "dcache_ctl": (300, 300),
    "csr": (1700, 1700), "fpu": (1700, 300), "debug": (300, 1000),
}


def build_processor():
    module_index = {name: i for i, name in enumerate(MODULE_NAMES)}
    isa = InstructionSet.from_usage_lists(
        usage=[{module_index[m] for m in USAGE[i]} for i in USAGE],
        num_modules=len(MODULE_NAMES),
        names=list(USAGE),
    )
    chain = MarkovStreamModel.from_locality(
        popularity=[POPULARITY[i] for i in USAGE], locality=0.6
    )
    stream = chain.generate(20000, np.random.default_rng(42))
    return isa, stream


def build_sinks():
    return [
        Sink(
            name=name,
            location=Point(*PLACEMENT[name]),
            load_cap=0.06,
            module=i,
        )
        for i, name in enumerate(MODULE_NAMES)
    ]


def main() -> None:
    isa, stream = build_processor()
    tables = ActivityTables.from_stream(isa, stream)
    oracle = ActivityOracle(tables)

    print("Per-module activity (one scan of a %d-cycle trace):" % len(stream))
    for i, name in enumerate(MODULE_NAMES):
        stats = oracle.statistics(1 << i)
        print(
            "  %-10s P(EN)=%.3f  P_tr(EN)=%.3f"
            % (name, stats.signal_probability, stats.transition_probability)
        )

    # Enable statistics for a candidate gating group, paper-style.
    fpu_csr = (1 << MODULE_NAMES.index("fpu")) | (1 << MODULE_NAMES.index("csr"))
    group = oracle.statistics(fpu_csr)
    print(
        "\nGroup {fpu, csr}: P(EN)=%.3f, P_tr(EN)=%.3f "
        "-- a subtree worth masking" % (group.signal_probability, group.transition_probability)
    )

    sinks = build_sinks()
    tech = date98_technology()
    die = Die(0, 0, 2000, 2000)

    buffered = route_buffered(sinks, tech)
    gated = route_gated(sinks, tech, oracle, die=die)
    print("\n" + buffered.summary())
    print(gated.summary())
    print(
        "\nGated tree saves %.0f%% of the buffered switched capacitance "
        "on this floorplan." % (
            100 * (1 - gated.switched_cap.total / buffered.switched_cap.total)
        )
    )

    layout = ControllerLayout.centralized(die)
    save_svg(gated.tree, "microprocessor_gated.svg", routing=gated.routing, layout=layout)
    print("Layout written to microprocessor_gated.svg")


if __name__ == "__main__":
    main()
