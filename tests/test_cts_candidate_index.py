"""Unit and property tests for the spatial candidate index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts.candidate_index import SegmentGridIndex
from repro.geometry.point import Point
from repro.geometry.trr import Trr


def brute_force_nearest(segments, query, k, exclude=None):
    ranked = sorted(
        (query.distance_to(seg), iid)
        for iid, seg in segments.items()
        if iid != exclude
    )
    return [iid for _, iid in ranked[:k]]


def random_segments(rng, n, span=100.0, max_arc=15.0):
    """id -> Trr map of random points and Manhattan arcs."""
    segments = {}
    for iid in range(n):
        p = Point(rng.uniform(0, span), rng.uniform(0, span))
        if rng.random() < 0.5:
            segments[iid] = Trr.from_point(p)
        else:
            length = rng.uniform(0.0, max_arc)
            if rng.random() < 0.5:
                seg = Trr(p.u, p.u + length, p.v, p.v)
            else:
                seg = Trr(p.u, p.u, p.v, p.v + length)
            segments[iid] = seg
    return segments


class TestMaintenance:
    def test_insert_remove_contains(self):
        index = SegmentGridIndex(10.0)
        index.insert(3, Trr.from_point(Point(1, 2)))
        assert 3 in index and len(index) == 1
        index.remove(3)
        assert 3 not in index and len(index) == 0

    def test_duplicate_insert_rejected(self):
        index = SegmentGridIndex(10.0)
        index.insert(1, Trr.from_point(Point(0, 0)))
        with pytest.raises(ValueError):
            index.insert(1, Trr.from_point(Point(5, 5)))

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            SegmentGridIndex(10.0).remove(7)

    def test_bad_cell_size_rejected(self):
        with pytest.raises(ValueError):
            SegmentGridIndex(0.0)

    def test_bad_k_rejected(self):
        index = SegmentGridIndex(1.0)
        index.insert(0, Trr.from_point(Point(0, 0)))
        with pytest.raises(ValueError):
            index.nearest(Trr.from_point(Point(0, 0)), 0)

    def test_empty_query(self):
        index = SegmentGridIndex(1.0)
        assert index.nearest(Trr.from_point(Point(0, 0)), 3) == []

    def test_query_counters_advance(self):
        index = SegmentGridIndex(10.0)
        for i in range(5):
            index.insert(i, Trr.from_point(Point(i, 0)))
        before = index.queries
        index.nearest(Trr.from_point(Point(0, 0)), 2)
        assert index.queries == before + 1


class TestExactness:
    @pytest.mark.parametrize("cell_size", [0.5, 3.0, 17.0, 200.0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, cell_size, seed):
        rng = np.random.default_rng(seed)
        segments = random_segments(rng, 60)
        index = SegmentGridIndex(cell_size)
        for iid, seg in segments.items():
            index.insert(iid, seg)
        for _ in range(30):
            q = Trr.from_point(Point(rng.uniform(-20, 120), rng.uniform(-20, 120)))
            k = int(rng.integers(1, 12))
            assert index.nearest(q, k) == brute_force_nearest(segments, q, k)

    def test_exclude_matches_brute_force(self):
        rng = np.random.default_rng(3)
        segments = random_segments(rng, 40)
        index = SegmentGridIndex(5.0)
        for iid, seg in segments.items():
            index.insert(iid, seg)
        for iid in (0, 7, 39):
            got = index.nearest(segments[iid], 5, exclude=iid)
            assert got == brute_force_nearest(segments, segments[iid], 5, exclude=iid)

    def test_k_larger_than_population(self):
        segments = {i: Trr.from_point(Point(i, i)) for i in range(4)}
        index = SegmentGridIndex(1.0)
        for iid, seg in segments.items():
            index.insert(iid, seg)
        assert index.nearest(Trr.from_point(Point(0, 0)), 10) == [0, 1, 2, 3]

    def test_distance_ties_break_by_id(self):
        # Four points at identical distance from the origin query.
        index = SegmentGridIndex(2.0)
        for iid, (x, y) in enumerate([(5, 0), (-5, 0), (0, 5), (0, -5)]):
            index.insert(iid, Trr.from_point(Point(x, y)))
        assert index.nearest(Trr.from_point(Point(0, 0)), 2) == [0, 1]

    def test_dynamic_updates_stay_exact(self):
        rng = np.random.default_rng(4)
        segments = random_segments(rng, 50)
        index = SegmentGridIndex(8.0)
        alive = {}
        for iid, seg in segments.items():
            index.insert(iid, seg)
            alive[iid] = seg
        for iid in range(0, 50, 3):
            index.remove(iid)
            del alive[iid]
        q = Trr.from_point(Point(50, 50))
        assert index.nearest(q, 8) == brute_force_nearest(alive, q, 8)


class TestRadiusHighWater:
    """The max-radius stop bound re-tightens as the population shrinks."""

    @staticmethod
    def _mixed_population(big_radius=40.0):
        """99 unit arcs plus one giant; the giant is id 0."""
        segments = {0: Trr(0.0, 2 * big_radius, 0.0, 0.0)}
        rng = np.random.default_rng(9)
        for iid in range(1, 100):
            p = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            segments[iid] = Trr(p.u, p.u + 1.0, p.v, p.v)
        return segments

    def test_recompute_fires_when_population_halves(self):
        segments = self._mixed_population()
        index = SegmentGridIndex(10.0)
        for iid, seg in segments.items():
            index.insert(iid, seg)
        assert index._max_radius == pytest.approx(40.0)
        index.remove(0)  # the giant retires early...
        for iid in range(1, 50):  # ...then the population halves
            index.remove(iid)
        assert index.radius_recomputes >= 1
        assert index._max_radius == pytest.approx(0.5)
        assert index._ever_max_radius == pytest.approx(40.0)

    def test_tightened_queries_counted_and_exact(self):
        segments = self._mixed_population()
        index = SegmentGridIndex(10.0)
        alive = dict(segments)
        for iid, seg in segments.items():
            index.insert(iid, seg)
        for iid in range(0, 60):
            index.remove(iid)
            del alive[iid]
        assert index._max_radius < index._ever_max_radius
        before = index.tightened_queries
        q = Trr.from_point(Point(50, 50))
        got = index.nearest(q, 6)
        assert index.tightened_queries == before + 1
        assert got == brute_force_nearest(alive, q, 6)

    def test_untightened_queries_not_counted(self):
        index = SegmentGridIndex(10.0)
        for iid in range(8):
            index.insert(iid, Trr.from_point(Point(iid, 0.0)))
        index.nearest(Trr.from_point(Point(0, 0)), 3)
        assert index.tightened_queries == 0

    def test_tightened_bound_scans_fewer_cells(self):
        """The recompute pays off: late queries stop on earlier rings."""
        segments = self._mixed_population()

        class FrozenIndex(SegmentGridIndex):
            def remove(self, item_id):
                # Suppress the recompute: the high-water mark persists.
                peak, self._peak_population = self._peak_population, 0
                try:
                    super().remove(item_id)
                finally:
                    self._peak_population = peak

        scans = {}
        for cls in (SegmentGridIndex, FrozenIndex):
            index = cls(5.0)
            for iid, seg in segments.items():
                index.insert(iid, seg)
            for iid in range(0, 80):
                index.remove(iid)
            before = index.cells_scanned
            for iid in range(80, 100):
                index.nearest(segments[iid], 4, exclude=iid)
            scans[cls.__name__] = index.cells_scanned - before
        assert scans["SegmentGridIndex"] < scans["FrozenIndex"]

    def test_dynamic_updates_with_recompute_stay_exact(self):
        rng = np.random.default_rng(11)
        segments = random_segments(rng, 80, max_arc=30.0)
        index = SegmentGridIndex(6.0)
        alive = dict(segments)
        for iid, seg in segments.items():
            index.insert(iid, seg)
        removal_order = list(rng.permutation(80))
        for step, iid in enumerate(removal_order[:70]):
            index.remove(int(iid))
            del alive[int(iid)]
            if step % 7 == 0 and alive:
                q = Trr.from_point(Point(rng.uniform(0, 100), rng.uniform(0, 100)))
                assert index.nearest(q, 5) == brute_force_nearest(alive, q, 5)
        assert index.radius_recomputes >= 1


@settings(max_examples=60, deadline=None)
@given(
    coords=st.lists(
        st.tuples(
            st.integers(min_value=-50, max_value=50),
            st.integers(min_value=-50, max_value=50),
        ),
        min_size=1,
        max_size=25,
    ),
    k=st.integers(min_value=1, max_value=8),
    cell=st.sampled_from([0.7, 2.0, 9.0, 40.0]),
)
def test_property_matches_brute_force(coords, k, cell):
    # Integer coordinates force plenty of exact distance ties, the
    # hardest case for the ring-expansion stop condition.
    segments = {i: Trr.from_point(Point(x, y)) for i, (x, y) in enumerate(coords)}
    index = SegmentGridIndex(cell)
    for iid, seg in segments.items():
        index.insert(iid, seg)
    query = Trr.from_point(Point(*coords[0]))
    assert index.nearest(query, k, exclude=0) == brute_force_nearest(
        segments, query, k, exclude=0
    )
