"""Unit tests for the gated-cts command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route"])
        assert args.benchmark == "r1"
        assert args.method == "reduced"
        assert args.knob == 0.5

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--benchmark", "bogus"])


class TestCommands:
    def test_route_buffered(self, capsys):
        assert main(["route", "--scale", "0.06", "--method", "buffered"]) == 0
        out = capsys.readouterr().out
        assert "buffered" in out
        assert "pF" in out

    def test_route_reduced_with_outputs(self, tmp_path, capsys):
        out_json = tmp_path / "t.json"
        out_svg = tmp_path / "t.svg"
        code = main(
            [
                "route",
                "--scale",
                "0.06",
                "--method",
                "reduced",
                "--out",
                str(out_json),
                "--svg",
                str(out_svg),
            ]
        )
        assert code == 0
        assert out_json.exists()
        assert out_svg.read_text().startswith("<svg")

    def test_route_gated_distributed(self, capsys):
        code = main(
            ["route", "--scale", "0.06", "--method", "gated", "--controllers", "4"]
        )
        assert code == 0

    def test_characteristics(self, capsys):
        assert main(["characteristics", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "r5" in out

    def test_compare(self, capsys):
        assert main(["compare", "--scale", "0.06"]) == 0
        out = capsys.readouterr().out
        assert "buffered" in out
        assert "gated" in out
        assert "gate-red" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--scale", "0.06", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5 sweep" in out
        assert out.count("\n") >= 5

    def test_exact_greedy_option(self, capsys):
        # --candidate-limit 0 selects the exact greedy.
        assert main(
            ["route", "--scale", "0.04", "--method", "gated", "--candidate-limit", "0"]
        ) == 0

    def test_oversized_shards_clamp_to_sink_count(self, capsys):
        # More shards than sinks is forgiven at the flow layer: the
        # run clamps with a warning instead of dying on InputError.
        code = main(
            ["route", "--scale", "0.04", "--method", "gated", "--shards", "999"]
        )
        assert code == 0

    def test_refine_smoke(self, capsys):
        code = main(
            [
                "route",
                "--scale",
                "0.05",
                "--method",
                "gated",
                "--refine",
                "--moves",
                "30",
                "--seed",
                "1",
                "--audit",
            ]
        )
        assert code == 0
        assert "gated" in capsys.readouterr().out

    def test_refine_rejects_buffered(self, capsys):
        code = main(
            ["route", "--scale", "0.05", "--method", "buffered", "--refine"]
        )
        assert code == 2

    def test_skew_bound_and_sizing_flags(self, capsys):
        assert main(
            [
                "route",
                "--scale",
                "0.05",
                "--method",
                "reduced",
                "--skew-bound",
                "50",
                "--gate-sizing",
            ]
        ) == 0

    def test_external_inputs(self, tmp_path, capsys):
        # Route from user-provided sink/ISA/trace files.
        from repro.bench.cpu_model import CpuModel, CpuModelConfig
        from repro.bench.sinks import SinkGenerator
        from repro.io.sinkfile import write_sinks
        from repro.io.tracefile import save_workload

        cpu = CpuModel(CpuModelConfig(num_modules=12, num_instructions=6, seed=1))
        sinks = SinkGenerator(num_sinks=12, seed=1).generate()
        write_sinks(sinks, tmp_path / "sinks.txt")
        save_workload(
            cpu.isa, cpu.stream(300), tmp_path / "isa.json", tmp_path / "trace.txt"
        )
        code = main(
            [
                "route",
                "--sinks",
                str(tmp_path / "sinks.txt"),
                "--isa",
                str(tmp_path / "isa.json"),
                "--instr-trace",
                str(tmp_path / "trace.txt"),
                "--method",
                "gated",
            ]
        )
        assert code == 0
        assert "gated" in capsys.readouterr().out

    def test_external_inputs_require_workload(self, tmp_path):
        from repro.bench.sinks import SinkGenerator
        from repro.io.sinkfile import write_sinks

        write_sinks(SinkGenerator(num_sinks=4, seed=0).generate(), tmp_path / "s.txt")
        with pytest.raises(SystemExit):
            main(["route", "--sinks", str(tmp_path / "s.txt")])
