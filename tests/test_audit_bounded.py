"""Audit behavior on bounded-skew and resized trees."""

import numpy as np
import pytest

from repro.analysis.audit import audit_tree
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.gate_sizing import GateSizingPolicy
from repro.cts import BottomUpMerger, Sink
from repro.geometry import Point
from repro.io.treejson import tree_from_dict, tree_to_dict
from repro.tech import date98_technology, unit_technology


def rng_sinks(n, seed=0, span=200.0):
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.5, 4.0, n)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=float(caps[i]), module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


class TestBoundedAudit:
    def test_bounded_tree_passes_with_declared_bound(self):
        tree = BottomUpMerger(
            rng_sinks(20, seed=1), unit_technology(), skew_bound=50.0
        ).run()
        report = audit_tree(tree, skew_bound=50.0)
        assert report.ok, report.problems

    def test_bounded_tree_fails_zero_bound_audit(self):
        tree = BottomUpMerger(
            rng_sinks(20, seed=1), unit_technology(), skew_bound=50.0
        ).run()
        if tree.skew() > 1e-6:  # budget actually used
            report = audit_tree(tree)  # default: exact zero skew
            assert not report.ok

    def test_interval_brackets_survive_serialization(self):
        tree = BottomUpMerger(
            rng_sinks(15, seed=2), unit_technology(), skew_bound=30.0
        ).run()
        clone = tree_from_dict(tree_to_dict(tree))
        assert clone.root.sink_delay_min == pytest.approx(tree.root.sink_delay_min)
        assert audit_tree(clone, skew_bound=30.0).ok

    def test_interval_violation_detected(self):
        tree = BottomUpMerger(
            rng_sinks(15, seed=3), unit_technology(), skew_bound=30.0
        ).run()
        tree.root.sink_delay_min = tree.root.sink_delay + 1.0  # nonsense interval
        report = audit_tree(tree, skew_bound=30.0)
        assert not report.ok
        assert any("interval" in p for p in report.problems)


class TestSizedTreeSerialization:
    def test_sized_tree_roundtrip_preserves_cells(self):
        tech = date98_technology()
        case = load_benchmark("r1", scale=0.1)
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
            gate_sizing=GateSizingPolicy(),
        )
        clone = tree_from_dict(tree_to_dict(result.tree))
        for a, b in zip(result.tree.nodes(), clone.nodes()):
            assert (a.edge_cell is None) == (b.edge_cell is None)
            if a.edge_cell is not None:
                assert a.edge_cell.input_cap == pytest.approx(b.edge_cell.input_cap)
                assert a.edge_cell.drive_resistance == pytest.approx(
                    b.edge_cell.drive_resistance
                )
        assert audit_tree(clone).ok
