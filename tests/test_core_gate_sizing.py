"""Unit tests for skew balancing by gate sizing."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.gate_sizing import GateSizingPolicy
from repro.cts.dme import CellDecision
from repro.cts.merge import Tap, zero_skew_split
from repro.tech import date98_technology, unit_technology


class TestPolicyValidation:
    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            GateSizingPolicy(sizes=())

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            GateSizingPolicy(sizes=(1.0, -2.0))

    def test_requires_unit_size(self):
        with pytest.raises(ValueError):
            GateSizingPolicy(sizes=(0.5, 2.0))


class TestResolve:
    def _snaking_case(self, tech):
        """A merge where the gated side is slow and the split snakes."""
        gate = tech.masking_gate
        slow = Tap(cap=5.0, delay=0.0, cell=gate)
        fast = Tap(cap=0.2, delay=0.0)
        distance = 1.0
        split = zero_skew_split(distance, slow, fast, tech)
        assert split.snaked is not None  # precondition for the test
        return distance, slow, fast, split

    def test_exact_split_left_alone(self):
        tech = unit_technology()
        tap = Tap(cap=1.0, delay=0.0, cell=tech.masking_gate)
        split = zero_skew_split(10.0, tap, tap, tech)
        policy = GateSizingPolicy()
        da = CellDecision(cell=tech.masking_gate, maskable=True)
        a, b, resolved = policy.resolve(
            10.0, 1.0, 0.0, da, 1.0, 0.0, da, tech, split
        )
        assert resolved is split
        assert a is da and b is da

    def test_sizing_reduces_snaking_wire(self):
        tech = unit_technology()
        distance, slow, fast, base = self._snaking_case(tech)
        policy = GateSizingPolicy()
        decision_a = CellDecision(cell=slow.cell, maskable=True)
        decision_b = CellDecision(cell=None)
        a, b, resolved = policy.resolve(
            distance,
            slow.cap,
            slow.delay,
            decision_a,
            fast.cap,
            fast.delay,
            decision_b,
            tech,
            base,
        )
        assert resolved.total_length <= base.total_length
        # The chosen sizing still balances exactly.
        da = Tap(cap=slow.cap, delay=slow.delay, cell=a.cell).edge_delay(
            resolved.length_a, tech
        )
        db = Tap(cap=fast.cap, delay=fast.delay, cell=b.cell).edge_delay(
            resolved.length_b, tech
        )
        assert da == pytest.approx(db, rel=1e-9)

    def test_maskable_flag_preserved(self):
        tech = unit_technology()
        distance, slow, fast, base = self._snaking_case(tech)
        policy = GateSizingPolicy()
        a, b, _ = policy.resolve(
            distance,
            slow.cap,
            slow.delay,
            CellDecision(cell=slow.cell, maskable=True),
            fast.cap,
            fast.delay,
            CellDecision(cell=None),
            tech,
            base,
        )
        assert a.maskable
        assert b.cell is None


class TestEndToEnd:
    def test_sizing_never_lengthens_the_tree(self):
        tech = date98_technology()
        case = load_benchmark("r1", scale=0.15)
        reduction = GateReductionPolicy.from_knob(0.5, tech)
        plain = route_gated(
            case.sinks, tech, case.oracle, die=case.die, reduction=reduction
        )
        sized = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=reduction,
            gate_sizing=GateSizingPolicy(),
        )
        assert sized.wirelength <= plain.wirelength + 1e-6
        assert sized.skew <= 1e-6 * max(sized.phase_delay, 1.0)

    def test_sized_tree_audits_clean(self):
        from repro.analysis.audit import audit_tree

        tech = date98_technology()
        case = load_benchmark("r1", scale=0.1)
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.6, tech),
            gate_sizing=GateSizingPolicy(),
        )
        report = audit_tree(result.tree)
        assert report.ok, report.problems

    def test_sizing_creates_non_unit_cells_when_useful(self):
        tech = date98_technology()
        case = load_benchmark("r1", scale=0.15)
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
            gate_sizing=GateSizingPolicy(),
        )
        unit_cap = tech.masking_gate.input_cap
        sizes = {
            round(n.edge_cell.input_cap / unit_cap, 3)
            for n in result.tree.edges()
            if n.edge_cell is not None
        }
        assert len(sizes) > 1  # some cells were resized
