"""Unit tests for synthetic sink benchmarks."""

import numpy as np
import pytest

from repro.bench.sinks import R_BENCHMARK_SIZES, SinkGenerator, generate_sinks


class TestSizes:
    def test_paper_sink_counts(self):
        # Tsay's r1-r5.
        assert R_BENCHMARK_SIZES == {
            "r1": 267,
            "r2": 598,
            "r3": 862,
            "r4": 1903,
            "r5": 3101,
        }

    def test_scale(self):
        assert generate_sinks("r1", scale=1.0).num_sinks == 267
        assert generate_sinks("r1", scale=0.1).num_sinks == 27

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            generate_sinks("r1", scale=0.0)
        with pytest.raises(ValueError):
            generate_sinks("r1", scale=1.5)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            generate_sinks("r9")


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_sinks("r1", scale=0.1).generate()
        b = generate_sinks("r1", scale=0.1).generate()
        assert [(s.location.x, s.location.y, s.load_cap) for s in a] == [
            (s.location.x, s.location.y, s.load_cap) for s in b
        ]

    def test_different_seeds_differ(self):
        a = SinkGenerator(num_sinks=20, seed=1).generate()
        b = SinkGenerator(num_sinks=20, seed=2).generate()
        assert a[0].location != b[0].location

    def test_sinks_inside_die(self):
        gen = generate_sinks("r2", scale=0.2)
        die = gen.die()
        for sink in gen.generate():
            assert die.x0 <= sink.location.x <= die.x1
            assert die.y0 <= sink.location.y <= die.y1

    def test_modules_are_dense(self):
        sinks = generate_sinks("r1", scale=0.2).generate()
        assert sorted(s.module for s in sinks) == list(range(len(sinks)))

    def test_positive_load_caps(self):
        assert all(s.load_cap > 0 for s in generate_sinks("r1", scale=0.2).generate())

    def test_die_side_shared_across_benchmarks(self):
        # One die-size family: see the module docstring.
        sides = {
            generate_sinks(name, scale=0.5).resolved_die_side()
            for name in R_BENCHMARK_SIZES
        }
        assert len(sides) == 1

    def test_explicit_die_side(self):
        gen = SinkGenerator(num_sinks=10, die_side=1234.0)
        assert gen.resolved_die_side() == 1234.0


class TestClusteredGeneration:
    def test_members_near_their_center(self):
        gen = SinkGenerator(num_sinks=60, seed=3)
        cluster_of = np.arange(60) % 6
        sinks = gen.generate_clustered(cluster_of, spread=0.02)
        side = gen.resolved_die_side()
        # Within-cluster spread is much smaller than the die.
        for c in range(6):
            xs = [s.location.x for s in sinks if cluster_of[s.module] == c]
            assert max(xs) - min(xs) < 0.4 * side

    def test_rejects_wrong_assignment_length(self):
        gen = SinkGenerator(num_sinks=10, seed=0)
        with pytest.raises(ValueError):
            gen.generate_clustered(np.arange(5))

    def test_rejects_nonpositive_spread(self):
        gen = SinkGenerator(num_sinks=10, seed=0)
        with pytest.raises(ValueError):
            gen.generate_clustered(np.arange(10), spread=0.0)

    def test_clustered_points_clipped_to_die(self):
        gen = SinkGenerator(num_sinks=40, seed=4)
        sinks = gen.generate_clustered(np.arange(40) % 4, spread=0.5)
        die = gen.die()
        for sink in sinks:
            assert die.x0 <= sink.location.x <= die.x1
            assert die.y0 <= sink.location.y <= die.y1
