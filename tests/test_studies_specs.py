"""The committed study specs must load and (scaled down) run."""

import dataclasses
from pathlib import Path

import pytest

from repro.analysis.study import StudySpec, run_study

STUDIES = sorted((Path(__file__).parent.parent / "studies").glob("*.json"))


class TestCommittedSpecs:
    def test_specs_exist(self):
        names = {p.name for p in STUDIES}
        assert "paper_fig3.json" in names
        assert "extensions.json" in names

    @pytest.mark.parametrize("path", STUDIES, ids=lambda p: p.name)
    def test_spec_loads(self, path):
        spec = StudySpec.load(path)
        assert spec.benchmarks
        assert spec.methods

    def test_fig3_spec_covers_all_benchmarks(self):
        spec = StudySpec.load(Path("studies/paper_fig3.json"))
        assert list(spec.benchmarks) == ["r1", "r2", "r3", "r4", "r5"]
        assert [m.name for m in spec.methods] == ["buffered", "gated", "gate-red"]
        assert spec.scale == 1.0

    def test_extensions_spec_runs_scaled_down(self):
        spec = StudySpec.load(Path("studies/extensions.json"))
        small = dataclasses.replace(spec, scale=0.06)
        result = run_study(small)
        assert len(result.rows) == len(spec.methods)
        # The spec exercises every extension code path.
        names = {r.comparison.method for r in result.rows}
        assert "gate-red+sizing" in names
        assert "exact-greedy" in names
