"""Fault-injection matrix: every perturbation -> typed error, never a
traceback; benign perturbations route cleanly and audit clean."""

import pytest

from repro.check.faults import (
    ERROR_EXIT_CODE,
    FAULTS,
    cli_argv,
    run_fault,
    write_baseline,
)

@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    return write_baseline(tmp_path_factory.mktemp("baseline"))


_FILE_FAULTS = [f for f in FAULTS if f.kind in ("sinks", "isa", "trace")]
_TREE_FAULTS = [f for f in FAULTS if f.kind == "tree"]


@pytest.mark.parametrize("vectorize", [True, False], ids=["vec", "scalar"])
@pytest.mark.parametrize("fault", _FILE_FAULTS, ids=lambda f: f.name)
def test_route_fault(fault, vectorize, baseline, tmp_path, capsys):
    outcome = run_fault(fault, baseline, tmp_path, vectorize=vectorize)
    assert outcome.ok, (outcome.problems, outcome.unhandled)
    err = capsys.readouterr().err
    if fault.expect == "error":
        assert outcome.exit_code == ERROR_EXIT_CODE
        # One-line diagnostic on stderr, naming the error type.
        assert "gated-cts:" in err
        assert "Error" in err
        assert "Traceback" not in err
    else:
        assert outcome.exit_code == 0
        assert "Traceback" not in err


@pytest.mark.parametrize("fault", _TREE_FAULTS, ids=lambda f: f.name)
def test_audit_fault(fault, baseline, tmp_path, capsys):
    outcome = run_fault(fault, baseline, tmp_path)
    assert outcome.ok, (outcome.problems, outcome.unhandled)
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    if fault.expect == "findings":
        # The audit itself succeeded; the corruption is reported as
        # structured findings, not an input error.
        assert "finding" in captured.out


def test_missing_sink_file_exits_2(baseline, capsys):
    from repro.cli import main

    code = main(
        [
            "route",
            "--sinks", "/nonexistent/sinks.txt",
            "--isa", baseline["isa"],
            "--instr-trace", baseline["trace"],
        ]
    )
    assert code == ERROR_EXIT_CODE
    err = capsys.readouterr().err
    assert "gated-cts:" in err and "nonexistent" in err


def test_missing_tree_file_exits_2(capsys):
    from repro.cli import main

    code = main(["audit", "--tree", "/nonexistent/tree.json"])
    assert code == ERROR_EXIT_CODE


def test_debug_log_level_reraises(baseline, tmp_path):
    from repro.check.errors import InputError
    from repro.check.faults import apply_fault, fault_by_name
    from repro.cli import main

    fault = fault_by_name("nan_coordinate")
    paths = apply_fault(fault, baseline, tmp_path)
    with pytest.raises(InputError):
        main(cli_argv(fault, paths) + ["--log-level", "debug"])


def test_every_fault_has_an_expectation():
    assert {f.expect for f in FAULTS} <= {"error", "findings", "ok"}
    names = [f.name for f in FAULTS]
    assert len(names) == len(set(names))


def test_valid_baseline_routes_identically_with_audit(baseline, capsys):
    # The audit hook must observe, never perturb: summaries match.
    from repro.cli import main

    argv = [
        "route",
        "--sinks", baseline["sinks"],
        "--isa", baseline["isa"],
        "--instr-trace", baseline["trace"],
        "--method", "gated",
    ]
    assert main(argv) == 0
    plain = capsys.readouterr().out
    assert main(argv + ["--audit"]) == 0
    audited = capsys.readouterr().out
    assert "audit: clean" in audited
    assert plain.strip().splitlines()[-1] in audited
