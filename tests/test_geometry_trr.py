"""Unit tests for tilted rectangle regions."""

import pytest

from repro.geometry import Point, Trr


class TestConstruction:
    def test_from_point_is_point(self):
        t = Trr.from_point(Point(2, 3))
        assert t.is_point
        assert t.is_arc
        assert t.center() == Point(2, 3)

    def test_from_point_with_radius(self):
        t = Trr.from_point(Point(0, 0), radius=2.0)
        assert not t.is_point
        assert t.u_extent == 4.0
        assert t.v_extent == 4.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Trr.from_point(Point(0, 0), radius=-1.0)

    def test_inverted_rectangle_rejected(self):
        with pytest.raises(ValueError):
            Trr(1.0, 0.0, 0.0, 0.0)

    def test_from_segment_diagonal_is_arc(self):
        # Slope +1 segment: v constant.
        t = Trr.from_segment(Point(0, 0), Point(3, 3))
        assert t.is_arc
        assert not t.is_point

    def test_from_segment_antidiagonal_is_arc(self):
        # Slope -1 segment: u constant.
        t = Trr.from_segment(Point(0, 3), Point(3, 0))
        assert t.is_arc

    def test_from_segment_axis_aligned_is_rectangle(self):
        t = Trr.from_segment(Point(0, 0), Point(4, 0))
        assert not t.is_arc


class TestMembership:
    def test_contains_center(self):
        t = Trr.from_point(Point(1, 1), radius=3.0)
        assert t.contains_point(Point(1, 1))

    def test_l1_ball_membership(self):
        t = Trr.from_point(Point(0, 0), radius=2.0)
        assert t.contains_point(Point(2, 0))
        assert t.contains_point(Point(1, 1))
        assert not t.contains_point(Point(2, 1))

    def test_contains_trr(self):
        outer = Trr.from_point(Point(0, 0), radius=5.0)
        inner = Trr.from_point(Point(1, 0), radius=1.0)
        assert outer.contains_trr(inner)
        assert not inner.contains_trr(outer)


class TestDistance:
    def test_distance_to_point_inside_is_zero(self):
        t = Trr.from_point(Point(0, 0), radius=2.0)
        assert t.distance_to_point(Point(1, 0)) == 0.0

    def test_distance_to_point_outside(self):
        t = Trr.from_point(Point(0, 0), radius=2.0)
        assert t.distance_to_point(Point(4, 0)) == pytest.approx(2.0)

    def test_distance_between_point_regions(self):
        a = Trr.from_point(Point(0, 0))
        b = Trr.from_point(Point(3, 4))
        assert a.distance_to(b) == pytest.approx(7.0)

    def test_distance_symmetry(self):
        a = Trr.from_point(Point(0, 0), radius=1.0)
        b = Trr.from_point(Point(10, -2), radius=2.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_overlapping_regions_have_zero_distance(self):
        a = Trr.from_point(Point(0, 0), radius=3.0)
        b = Trr.from_point(Point(1, 1), radius=3.0)
        assert a.distance_to(b) == 0.0

    def test_cores_at_split_radii_touch(self):
        # The defining DME identity: expanding two regions by radii
        # summing to their distance makes them exactly meet.
        a = Trr.from_point(Point(0, 0))
        b = Trr.from_point(Point(6, 2))
        d = a.distance_to(b)
        assert a.core(0.25 * d).distance_to(b.core(0.75 * d)) == pytest.approx(0.0)


class TestNearestPoints:
    def test_nearest_point_inside(self):
        t = Trr.from_point(Point(0, 0), radius=2.0)
        p = Point(0.5, 0.5)
        assert t.nearest_point_to(p).is_close(p)

    def test_nearest_point_achieves_distance(self):
        t = Trr.from_point(Point(0, 0), radius=2.0)
        p = Point(5, 1)
        q = t.nearest_point_to(p)
        assert t.contains_point(q)
        assert q.manhattan_to(p) == pytest.approx(t.distance_to_point(p))

    def test_nearest_points_pair(self):
        a = Trr.from_point(Point(0, 0), radius=1.0)
        b = Trr.from_point(Point(10, 0), radius=2.0)
        pa, pb = a.nearest_points(b)
        assert a.contains_point(pa)
        assert b.contains_point(pb)
        assert pa.manhattan_to(pb) == pytest.approx(a.distance_to(b))


class TestCoreAndIntersection:
    def test_core_expansion_extents(self):
        t = Trr.from_point(Point(0, 0), radius=1.0).core(2.0)
        assert t.u_extent == pytest.approx(6.0)
        assert t.v_extent == pytest.approx(6.0)

    def test_core_contains_original(self):
        t = Trr.from_segment(Point(0, 0), Point(2, 2))
        assert t.core(1.0).contains_trr(t)

    def test_intersection_of_disjoint_is_none(self):
        a = Trr.from_point(Point(0, 0), radius=1.0)
        b = Trr.from_point(Point(10, 10), radius=1.0)
        assert a.intersection(b) is None

    def test_intersection_of_touching_cores_is_arc(self):
        # |du| != |dv| so the touching set is a proper Manhattan arc
        # (equal rotated gaps would collapse it to a point).
        a = Trr.from_point(Point(0, 0))
        b = Trr.from_point(Point(4, 2))
        d = a.distance_to(b)
        region = a.core(d / 2).intersection(b.core(d / 2))
        assert region is not None
        assert region.is_arc
        assert not region.is_point

    def test_intersection_is_contained_in_both(self):
        a = Trr.from_point(Point(0, 0), radius=4.0)
        b = Trr.from_point(Point(3, 1), radius=4.0)
        region = a.intersection(b)
        assert a.contains_trr(region)
        assert b.contains_trr(region)


class TestArcGeometry:
    def test_endpoints_of_arc(self):
        t = Trr.from_segment(Point(0, 0), Point(3, 3))
        e1, e2 = t.endpoints_xy()
        found = {(round(e1.x), round(e1.y)), (round(e2.x), round(e2.y))}
        assert found == {(0, 0), (3, 3)}

    def test_endpoints_of_rectangle_raises(self):
        t = Trr.from_point(Point(0, 0), radius=1.0)
        with pytest.raises(ValueError):
            t.endpoints_xy()

    def test_corners_of_point_is_single(self):
        assert len(Trr.from_point(Point(1, 1)).corners_xy()) == 1

    def test_corners_of_ball_is_four(self):
        assert len(Trr.from_point(Point(0, 0), radius=1.0).corners_xy()) == 4

    def test_sample_points_lie_inside(self):
        t = Trr.from_point(Point(2, -1), radius=3.0)
        pts = list(t.sample_points(4))
        assert pts
        assert all(t.contains_point(p) for p in pts)
