"""Unit tests for technology models."""

import pytest

from repro.tech import GateModel, date98_technology, unit_technology
from repro.tech.presets import BUFFER_TO_GATE_SIZE_RATIO


class TestGateModel:
    def test_scaling_halves_resistance_doubles_cap(self):
        gate = GateModel(input_cap=1.0, drive_resistance=100.0, intrinsic_delay=2.0, area=10.0)
        big = gate.scaled(2.0)
        assert big.input_cap == 2.0
        assert big.drive_resistance == 50.0
        assert big.intrinsic_delay == 2.0
        assert big.area == 20.0

    def test_scaling_rejects_nonpositive(self):
        gate = unit_technology().masking_gate
        with pytest.raises(ValueError):
            gate.scaled(0.0)

    def test_scaling_composes(self):
        gate = unit_technology().masking_gate
        assert gate.scaled(2.0).scaled(0.5) == gate


class TestTechnology:
    def test_wire_helpers(self):
        tech = unit_technology()
        assert tech.wire_cap(3.0) == 3.0
        assert tech.wire_res(3.0) == 3.0
        assert tech.wire_area(3.0) == 3.0

    def test_wire_helpers_scale_with_constants(self):
        tech = date98_technology()
        assert tech.wire_cap(1000.0) == pytest.approx(1000 * tech.unit_wire_capacitance)
        assert tech.wire_res(1000.0) == pytest.approx(1000 * tech.unit_wire_resistance)

    def test_with_masking_gate_replaces_only_gate(self):
        tech = unit_technology()
        new_gate = tech.masking_gate.scaled(4.0)
        updated = tech.with_masking_gate(new_gate)
        assert updated.masking_gate == new_gate
        assert updated.buffer == tech.buffer
        assert updated.unit_wire_capacitance == tech.unit_wire_capacitance


class TestPresets:
    def test_buffer_is_half_the_gate(self):
        # Paper section 5.1: buffer = half the size of the AND gate.
        for tech in (date98_technology(), unit_technology()):
            gate, buf = tech.masking_gate, tech.buffer
            assert buf.input_cap == pytest.approx(
                gate.input_cap * BUFFER_TO_GATE_SIZE_RATIO
            )
            assert buf.area == pytest.approx(gate.area * BUFFER_TO_GATE_SIZE_RATIO)
            assert buf.drive_resistance == pytest.approx(
                gate.drive_resistance / BUFFER_TO_GATE_SIZE_RATIO
            )

    def test_clock_activity_factor_is_two(self):
        # One rising and one falling edge per cycle (paper section 2.1).
        assert date98_technology().clock_transitions_per_cycle == 2.0

    def test_presets_are_physical(self):
        for tech in (date98_technology(), unit_technology()):
            assert tech.unit_wire_resistance > 0
            assert tech.unit_wire_capacitance > 0
            assert tech.masking_gate.input_cap > 0
            assert tech.masking_gate.drive_resistance > 0
