"""Unit tests for SVG rendering."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.controller import ControllerLayout
from repro.core.flow import route_buffered, route_gated
from repro.io.svg import render_svg, save_svg
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def setup():
    case = load_benchmark("r1", scale=0.08)
    tech = date98_technology()
    gated = route_gated(case.sinks, tech, case.oracle, die=case.die)
    layout = ControllerLayout.centralized(case.die)
    return case, gated, layout


class TestRendering:
    def test_produces_svg_document(self, setup):
        case, gated, layout = setup
        svg = render_svg(gated.tree, routing=gated.routing, layout=layout)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_draws_every_sink(self, setup):
        case, gated, layout = setup
        svg = render_svg(gated.tree)
        assert svg.count("<circle") >= case.num_sinks

    def test_draws_gates_and_controller(self, setup):
        case, gated, layout = setup
        svg = render_svg(gated.tree, routing=gated.routing, layout=layout)
        assert svg.count("<rect") >= gated.gate_count  # gate markers + die
        assert "#6a1b9a" in svg  # controller marker style

    def test_enables_can_be_hidden(self, setup):
        case, gated, layout = setup
        with_enables = render_svg(
            gated.tree, routing=gated.routing, layout=layout, show_enables=True
        )
        without = render_svg(
            gated.tree, routing=gated.routing, layout=layout, show_enables=False
        )
        assert len(without) < len(with_enables)

    def test_buffered_tree_renders_without_routing(self, setup):
        case, *_ = setup
        buffered = route_buffered(case.sinks, date98_technology())
        svg = render_svg(buffered.tree)
        assert "<path" in svg

    def test_save_svg(self, setup, tmp_path):
        case, gated, layout = setup
        path = tmp_path / "tree.svg"
        save_svg(gated.tree, str(path), routing=gated.routing, layout=layout)
        assert path.read_text().startswith("<svg")

    def test_unembedded_tree_rejected(self):
        from repro.cts import ClockTree
        from repro.tech import unit_technology

        with pytest.raises(ValueError):
            render_svg(ClockTree(unit_technology()))

    def test_snaked_edges_drawn_dashed_with_detours(self):
        # Physically removing gates unbalances siblings; the re-embed
        # snakes wires to restore zero skew (same recipe as the route
        # geometry tests).
        from tests.test_cts_routes import snaky_tree

        tree = snaky_tree()
        assert any(n.snaked for n in tree.edges())
        svg = render_svg(tree)
        assert "stroke-dasharray" in svg
        # The serpentine adds extra path vertices beyond plain L-routes.
        assert svg.count(" L ") > 2 * (len(tree.sinks()) - 1)
