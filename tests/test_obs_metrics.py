"""Metrics registry semantics: counters, gauges, histograms, globals."""

import pytest

from repro.obs import MetricsRegistry, get_registry, set_registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("dme.plans_computed")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_as_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert reg.as_dict()["c"] == {"type": "counter", "value": 3}


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("oracle.hits")
        assert gauge.value is None
        gauge.set(10)
        gauge.set(7)
        assert gauge.value == 7

    def test_as_dict(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        assert reg.as_dict()["g"] == {"type": "gauge", "value": 1.5}


class TestHistogram:
    def test_summary_stats(self):
        hist = MetricsRegistry().histogram("controller.star_edge_length")
        hist.observe_many([2.0, 4.0, 6.0])
        assert hist.count == 3
        assert hist.total == 12.0
        assert hist.min == 2.0
        assert hist.max == 6.0
        assert hist.mean == 4.0

    def test_empty_histogram_exports_none(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        d = reg.as_dict()["h"]
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None and d["mean"] is None

    def test_as_dict_keys(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        assert set(reg.as_dict()["h"]) == {
            "type",
            "count",
            "sum",
            "min",
            "max",
            "mean",
        }


class TestRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(TypeError):
            reg.gauge("name")
        with pytest.raises(TypeError):
            reg.histogram("name")

    def test_contains_len_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0

    def test_as_dict_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.as_dict()) == ["a", "z"]


class TestGlobalRegistry:
    def test_set_and_restore(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
            get_registry().counter("x").inc()
            assert mine.counter("x").value == 1
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestRegistryMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("dme.plans_computed").inc(3)
        b.counter("dme.plans_computed").inc(4)
        b.counter("dme.heap_pops").inc(2)
        a.merge(b)
        assert a.counter("dme.plans_computed").value == 7
        assert a.counter("dme.heap_pops").value == 2

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("shard.workers").set(1.0)
        b.gauge("shard.workers").set(8.0)
        a.merge(b)
        assert a.gauge("shard.workers").value == 8.0

    def test_unset_gauge_does_not_clobber(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("shard.workers").set(4.0)
        b.gauge("shard.workers")  # created but never set
        a.merge(b)
        assert a.gauge("shard.workers").value == 4.0

    def test_histograms_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("shard.route_seconds").observe_many([1.0, 5.0])
        b.histogram("shard.route_seconds").observe_many([0.5, 9.0, 2.0])
        a.merge(b)
        h = a.histogram("shard.route_seconds")
        assert h.count == 5
        assert h.total == 17.5
        assert h.min == 0.5
        assert h.max == 9.0

    def test_merge_into_empty_copies_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("shard.count").inc(4)
        b.gauge("shard.workers").set(2.0)
        b.histogram("shard.sinks").observe(7.0)
        a.merge(b)
        assert a.as_dict() == b.as_dict()

    def test_kind_mismatch_raises(self):
        from repro.check.errors import ContractTypeError

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shard.count")
        b.gauge("shard.count").set(1.0)
        with pytest.raises(ContractTypeError):
            a.merge(b)

    def test_merge_does_not_alias_source_metrics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("shard.count").inc(1)
        a.merge(b)
        b.counter("shard.count").inc(10)
        assert a.counter("shard.count").value == 1
