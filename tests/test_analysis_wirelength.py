"""Unit/property tests for the wirelength references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.wirelength import (
    half_perimeter_lower_bound,
    rectilinear_mst_edges,
    rectilinear_mst_length,
    wirelength_quality,
)
from repro.cts import BottomUpMerger, Sink
from repro.geometry import Point
from repro.tech import unit_technology

coords = st.floats(min_value=0, max_value=1000, allow_nan=False)


@st.composite
def point_sets(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    return [Point(draw(coords), draw(coords)) for _ in range(n)]


class TestMst:
    def test_two_points(self):
        assert rectilinear_mst_length([Point(0, 0), Point(3, 4)]) == 7.0

    def test_collinear_chain(self):
        pts = [Point(10.0 * i, 0) for i in range(5)]
        assert rectilinear_mst_length(pts) == pytest.approx(40.0)

    def test_square(self):
        pts = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10)]
        assert rectilinear_mst_length(pts) == pytest.approx(30.0)

    def test_single_point(self):
        assert rectilinear_mst_length([Point(5, 5)]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rectilinear_mst_length([])

    def test_edges_span_all_points(self):
        rng = np.random.default_rng(0)
        pts = [Point(x, y) for x, y in rng.uniform(0, 100, (12, 2))]
        edges = rectilinear_mst_edges(pts)
        assert len(edges) == 11
        # Union-find connectivity check.
        parent = list(range(12))

        def find(i):
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for a, b in edges:
            parent[find(a)] = find(b)
        assert len({find(i) for i in range(12)}) == 1

    def test_edge_lengths_sum_to_mst_length(self):
        rng = np.random.default_rng(1)
        pts = [Point(x, y) for x, y in rng.uniform(0, 100, (15, 2))]
        edges = rectilinear_mst_edges(pts)
        total = sum(pts[a].manhattan_to(pts[b]) for a, b in edges)
        assert total == pytest.approx(rectilinear_mst_length(pts))

    @given(point_sets())
    @settings(max_examples=60, deadline=None)
    def test_mst_at_least_half_perimeter_over_2(self, pts):
        # Any spanning structure reaches the bounding box extremes;
        # the MST is at least half the half-perimeter.
        sinks = [Sink("s%d" % i, p, 1.0, i) for i, p in enumerate(pts)]
        hpwl = half_perimeter_lower_bound(sinks)
        assert rectilinear_mst_length(pts) >= hpwl / 2.0 - 1e-6

    @given(point_sets())
    @settings(max_examples=60, deadline=None)
    def test_mst_invariant_under_permutation(self, pts):
        rng = np.random.default_rng(0)
        order = rng.permutation(len(pts))
        shuffled = [pts[i] for i in order]
        assert rectilinear_mst_length(shuffled) == pytest.approx(
            rectilinear_mst_length(pts), rel=1e-9
        )


class TestQuality:
    def test_zero_skew_tree_quality_in_band(self):
        rng = np.random.default_rng(2)
        sinks = [
            Sink("s%d" % i, Point(x, y), 1.0, i)
            for i, (x, y) in enumerate(rng.uniform(0, 500, (30, 2)))
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        quality = wirelength_quality(tree)
        assert 1.0 <= quality < 3.0

    def test_single_sink_quality(self):
        tree = BottomUpMerger(
            [Sink("a", Point(1, 1), 1.0, 0)], unit_technology()
        ).run()
        assert wirelength_quality(tree) == 1.0
