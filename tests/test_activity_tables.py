"""Unit tests for IFT / IMATT construction."""

import numpy as np
import pytest

from repro.activity import ActivityTables, InstructionStream, MarkovStreamModel
from repro.activity.isa import paper_example_isa, paper_example_stream


def paper_tables():
    isa = paper_example_isa()
    stream = InstructionStream(ids=np.array(paper_example_stream()))
    return ActivityTables.from_stream(isa, stream)


class TestFromStream:
    def test_ift_is_distribution(self):
        tables = paper_tables()
        assert tables.ift.sum() == pytest.approx(1.0)
        assert (tables.ift >= 0).all()

    def test_ift_paper_values(self):
        # Reconstruction: I1 x9, I2 x6, I3 x2, I4 x3 over 20 cycles.
        tables = paper_tables()
        assert tables.ift == pytest.approx([0.45, 0.30, 0.10, 0.15])

    def test_imatt_is_distribution(self):
        tables = paper_tables()
        assert tables.pair_prob.sum() == pytest.approx(1.0)
        assert (tables.pair_prob >= 0).all()

    def test_imatt_counts_pairs(self):
        # 19 consecutive pairs; each entry is a multiple of 1/19.
        tables = paper_tables()
        counts = tables.pair_prob * 19
        assert counts == pytest.approx(np.round(counts), abs=1e-9)

    def test_single_cycle_stream(self):
        isa = paper_example_isa()
        tables = ActivityTables.from_stream(
            isa, InstructionStream(ids=np.array([2]))
        )
        assert tables.ift[2] == 1.0
        assert tables.pair_prob[2, 2] == 1.0

    def test_validation_rejects_mismatched_shapes(self):
        isa = paper_example_isa()
        with pytest.raises(ValueError):
            ActivityTables(isa=isa, ift=np.ones(3) / 3, pair_prob=np.ones((4, 4)) / 16)
        with pytest.raises(ValueError):
            ActivityTables(isa=isa, ift=np.ones(4), pair_prob=np.ones((4, 4)) / 16)


class TestFromMarkov:
    def test_matches_long_stream(self):
        isa = paper_example_isa()
        model = MarkovStreamModel.from_locality([0.4, 0.3, 0.2, 0.1], locality=0.5)
        analytic = ActivityTables.from_markov(isa, model)
        stream = model.generate(200000, np.random.default_rng(7))
        empirical = ActivityTables.from_stream(isa, stream)
        assert empirical.ift == pytest.approx(analytic.ift, abs=0.01)
        assert empirical.pair_prob == pytest.approx(analytic.pair_prob, abs=0.01)

    def test_rejects_size_mismatch(self):
        isa = paper_example_isa()
        model = MarkovStreamModel.from_locality([0.5, 0.5], locality=0.0)
        with pytest.raises(ValueError):
            ActivityTables.from_markov(isa, model)


class TestModuleActivity:
    def test_module_activity_paper_m1(self):
        # P(M1) = IFT(I1) + IFT(I2) = 0.75.
        tables = paper_tables()
        assert tables.module_activity(0) == pytest.approx(0.75)

    def test_module_activity_unused_module(self):
        tables = paper_tables()
        # All six modules are used by some instruction; extend mask
        # beyond the universe and expect 0.
        assert tables.module_activity(40) == 0.0

    def test_average_module_activity(self):
        tables = paper_tables()
        expected = np.mean([tables.module_activity(j) for j in range(6)])
        assert tables.average_module_activity() == pytest.approx(expected)
