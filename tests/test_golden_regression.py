"""Golden-value regression pins for the deterministic flows.

Everything in the library is seeded and deterministic, so the exact
numbers below must reproduce bit-for-bit (up to float round-off) on
every run.  If an intentional algorithm change moves them, update the
constants *together with* a DESIGN.md note -- these pins exist to make
silent behavioural drift impossible.
"""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.tech import date98_technology

SCALE = 0.2
LIMIT = 16


@pytest.fixture(scope="module")
def case():
    return load_benchmark("r1", scale=SCALE)


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


class TestGoldenValues:
    def test_benchmark_characteristics(self, case):
        row = case.characteristics()
        assert row["sinks"] == 53
        assert row["instructions"] == 16
        assert row["ave_modules_per_instruction"] == pytest.approx(
            0.3855509433962264, rel=1e-12
        )

    def test_buffered(self, case, tech):
        result = route_buffered(case.sinks, tech, candidate_limit=LIMIT)
        assert result.switched_cap.total == pytest.approx(107.03052704972016, rel=1e-9)
        assert result.wirelength == pytest.approx(241169.05338345797, rel=1e-9)
        assert result.gate_count == 0

    def test_gated(self, case, tech):
        result = route_gated(
            case.sinks, tech, case.oracle, die=case.die, candidate_limit=LIMIT
        )
        assert result.switched_cap.total == pytest.approx(110.90293651513682, rel=1e-9)
        assert result.wirelength == pytest.approx(300316.80312397203, rel=1e-9)
        assert result.gate_count == 104

    def test_reduced(self, case, tech):
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=LIMIT,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        )
        assert result.switched_cap.total == pytest.approx(76.05020907296637, rel=1e-9)
        assert result.wirelength == pytest.approx(297962.54462896206, rel=1e-9)
        assert result.gate_count == 19

    def test_paper_ordering_at_this_pin(self, case, tech):
        # The pinned numbers themselves encode the Fig. 3 shape.
        assert 76.05 < 107.04 < 110.91


class TestVectorizeParity:
    """The NumPy kernel screens reproduce the pins bit-for-bit.

    The class above runs with the default ``vectorize=True``; these
    runs disable it and must land on the *same* constants -- so a
    kernel/scalar divergence trips the golden pins from either side.
    """

    def test_buffered_scalar_path_matches_pin(self, case, tech):
        result = route_buffered(
            case.sinks, tech, candidate_limit=LIMIT, vectorize=False
        )
        assert result.switched_cap.total == pytest.approx(107.03052704972016, rel=1e-9)
        assert result.wirelength == pytest.approx(241169.05338345797, rel=1e-9)

    def test_gated_scalar_path_matches_pin(self, case, tech):
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            candidate_limit=LIMIT,
            vectorize=False,
        )
        assert result.switched_cap.total == pytest.approx(110.90293651513682, rel=1e-9)
        assert result.wirelength == pytest.approx(300316.80312397203, rel=1e-9)
        assert result.gate_count == 104
