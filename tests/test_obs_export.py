"""Exporters: JSONL span log, Chrome trace_event JSON, phase profiles."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    phase_profile,
    spans_to_jsonl,
    write_chrome_trace,
    write_metrics_json,
    write_spans_jsonl,
)

#: Chrome trace_event "complete event" schema (JSON-schema style,
#: hand-checked so the suite needs no jsonschema dependency).
CHROME_EVENT_SCHEMA = {
    "type": "object",
    "required": ["name", "ph", "ts", "dur", "pid", "tid", "args"],
    "properties": {
        "name": {"type": str},
        "ph": {"type": str, "enum": ["X"]},
        "ts": {"type": (int, float)},
        "dur": {"type": (int, float)},
        "pid": {"type": int},
        "tid": {"type": int},
        "args": {"type": dict},
    },
}


def check_schema(obj, schema):
    """Minimal JSON-schema checker (type / required / enum / properties)."""
    assert isinstance(obj, dict), "event must be an object"
    for key in schema["required"]:
        assert key in obj, "missing required key %r" % key
    for key, spec in schema["properties"].items():
        if key not in obj:
            continue
        assert isinstance(obj[key], spec["type"]), (
            "%r has type %s" % (key, type(obj[key]).__name__)
        )
        if "enum" in spec:
            assert obj[key] in spec["enum"]


def _clock(step=1000):
    state = {"t": -step}

    def tick():
        state["t"] += step
        return state["t"]

    return tick


def _sample_tracer():
    tracer = Tracer(clock=_clock())
    with tracer.span("flow.route_gated", n=4):
        with tracer.span("topology.gated", n=4):
            with tracer.span("dme.merge"):
                pass
        with tracer.span("controller.star", gates=2):
            pass
        with tracer.span("flow.measure"):
            pass
    return tracer


class TestJsonl:
    def test_one_json_object_per_line(self):
        tracer = _sample_tracer()
        lines = spans_to_jsonl(tracer.spans).splitlines()
        assert len(lines) == len(tracer.spans)
        for line in lines:
            record = json.loads(line)
            assert set(record) == {
                "span_id",
                "parent_id",
                "name",
                "start_ns",
                "duration_ns",
                "attrs",
            }

    def test_write_and_reload(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(tracer.spans, path)
        reloaded = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in reloaded] == [s.name for s in tracer.spans]

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_spans_jsonl([], path)
        assert path.read_text() == ""


class TestChromeTrace:
    def test_events_match_schema(self):
        trace = chrome_trace(_sample_tracer().spans)
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] == "ms"
        for event in trace["traceEvents"]:
            check_schema(event, CHROME_EVENT_SCHEMA)

    def test_events_sorted_by_start(self):
        trace = chrome_trace(_sample_tracer().spans)
        starts = [e["ts"] for e in trace["traceEvents"]]
        assert starts == sorted(starts)

    def test_microsecond_conversion(self):
        tracer = Tracer(clock=_clock(step=1500))
        with tracer.span("s"):
            pass
        (event,) = chrome_trace(tracer.spans)["traceEvents"]
        assert event["ts"] == 0.0
        assert event["dur"] == 1.5  # 1500 ns = 1.5 us

    def test_non_json_attrs_become_repr(self):
        tracer = Tracer(clock=_clock())
        with tracer.span("s", obj=object(), ok=3):
            pass
        (event,) = chrome_trace(tracer.spans)["traceEvents"]
        assert event["args"]["ok"] == 3
        assert isinstance(event["args"]["obj"], str)
        json.dumps(event)  # everything serializable

    def test_write_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tracer().spans, path)
        trace = json.loads(path.read_text())
        assert len(trace["traceEvents"]) == 5


class TestPhaseProfile:
    def test_totals_and_coverage(self):
        # Root 0..100, children a: 10..40 and b: 50..90 => 70% covered.
        tracer = Tracer(clock=iter([0, 10, 40, 50, 90, 100]).__next__)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        profile = phase_profile(tracer.spans)
        assert profile.root_ns == 100
        assert profile.covered_ns == 70
        assert profile.coverage == 0.7
        assert [(r.name, r.total_ns) for r in profile.rows] == [("a", 30), ("b", 40)]
        assert profile.rows[0].fraction == 0.3

    def test_same_name_children_aggregate(self):
        tracer = Tracer(clock=_clock())
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("phase.x"):
                    pass
        (row,) = phase_profile(tracer.spans).rows
        assert row.name == "phase.x" and row.count == 3

    def test_root_name_filter(self):
        tracer = Tracer(clock=_clock())
        with tracer.span("flow.a"):
            with tracer.span("child.a"):
                pass
        with tracer.span("flow.b"):
            with tracer.span("child.b"):
                pass
        profile = phase_profile(tracer.spans, root_name="flow.b")
        assert [r.name for r in profile.rows] == ["child.b"]

    def test_grandchildren_not_double_counted(self):
        tracer = Tracer(clock=_clock())
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        profile = phase_profile(tracer.spans)
        assert [r.name for r in profile.rows] == ["child"]

    def test_empty_spans(self):
        profile = phase_profile([])
        assert profile.rows == [] and profile.coverage == 0.0

    def test_as_dict_round_trips_through_json(self):
        profile = phase_profile(_sample_tracer().spans)
        decoded = json.loads(json.dumps(profile.as_dict()))
        assert decoded["coverage"] == profile.coverage
        assert [p["name"] for p in decoded["phases"]] == [
            r.name for r in profile.rows
        ]

    def test_detail_names_aggregate_at_any_depth(self):
        # Root 0..100; child 10..90; detail spans nested two deep at
        # 20..40 and 50..70 => detail total 40ns, fraction over root.
        tracer = Tracer(clock=iter([0, 10, 20, 40, 50, 70, 90, 100]).__next__)
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("dme.init_best"):
                    pass
                with tracer.span("dme.init_best"):
                    pass
        profile = phase_profile(tracer.spans, detail_names=("dme.init_best",))
        assert [r.name for r in profile.rows] == ["child"]
        (detail,) = profile.detail_rows
        assert detail.name == "dme.init_best"
        assert detail.count == 2
        assert detail.total_ns == 40
        assert detail.fraction == 0.4
        decoded = json.loads(json.dumps(profile.as_dict()))
        assert decoded["detail"][0]["name"] == "dme.init_best"

    def test_detail_outside_roots_excluded(self):
        tracer = Tracer(clock=_clock())
        with tracer.span("flow.a"):
            with tracer.span("dme.init_best"):
                pass
        with tracer.span("flow.b"):
            with tracer.span("dme.init_best"):
                pass
        profile = phase_profile(
            tracer.spans, root_name="flow.b", detail_names=("dme.init_best",)
        )
        (detail,) = profile.detail_rows
        assert detail.count == 1  # flow.a's instance does not leak in

    def test_no_detail_names_keeps_dict_shape(self):
        profile = phase_profile(_sample_tracer().spans)
        assert profile.detail_rows == []
        assert "detail" not in profile.as_dict()


class TestMetricsExport:
    def test_write_metrics_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("dme.plans_computed").inc(5)
        reg.gauge("oracle.hits").set(2)
        path = tmp_path / "metrics.json"
        write_metrics_json(reg, path)
        decoded = json.loads(path.read_text())
        assert decoded["dme.plans_computed"] == {"type": "counter", "value": 5}
        assert decoded["oracle.hits"] == {"type": "gauge", "value": 2}
