"""Co-located (zero-distance) sink pairs: one enforced behavior.

The decided contract (ISSUE 4): two distinct sinks at identical
coordinates are **merged with a zero-length edge and an exact split**
-- never an error -- and the vectorized kernel lane agrees with the
scalar ``zero_skew_split`` bit for bit at ``L == 0``.
"""

import numpy as np
import pytest

from repro.check.errors import GeometryError
from repro.cts import BottomUpMerger, Sink
from repro.cts.kernels import batch_zero_skew_split
from repro.cts.merge import Tap, zero_skew_split
from repro.geometry import Point
from repro.tech import unit_technology
from repro.tech.presets import date98_technology


def _lane(tech, cap_a, delay_a, cap_b, delay_b, length=0.0):
    """Scalar vs batch outcome for one cell-free lane."""
    scalar = zero_skew_split(
        length, Tap(cap=cap_a, delay=delay_a), Tap(cap=cap_b, delay=delay_b), tech
    )
    batch = batch_zero_skew_split(
        np.array([length]),
        cap_a,
        delay_a,
        np.array([cap_b]),
        np.array([delay_b]),
        tech.unit_wire_resistance,
        tech.unit_wire_capacitance,
    )
    return scalar, batch


class TestKernelParityAtZeroDistance:
    def test_equal_subtrees(self):
        tech = date98_technology()
        scalar, batch = _lane(tech, 1.0, 5.0, 1.0, 5.0)
        assert batch.in_range[0]
        assert batch.length_a[0] == scalar.length_a
        assert batch.length_b[0] == scalar.length_b
        assert batch.delay[0] == scalar.delay
        assert batch.merged_cap[0] == scalar.merged_cap

    def test_unequal_caps_balanced_delays(self):
        tech = date98_technology()
        scalar, batch = _lane(tech, 1.0, 5.0, 10.0, 5.0)
        assert batch.in_range[0]
        assert batch.length_a[0] == scalar.length_a == 0.0
        assert batch.length_b[0] == scalar.length_b == 0.0
        assert batch.delay[0] == scalar.delay

    def test_unequal_delays_classified_as_snake(self):
        # b is slower: the scalar path snakes a; the kernel must flag
        # the lane for scalar fallback rather than fake a number.
        tech = date98_technology()
        scalar, batch = _lane(tech, 1.0, 1.0, 1.0, 9.0)
        assert scalar.snaked == "a"
        assert bool(batch.snake_a[0])
        assert not batch.in_range[0]

    def test_unit_technology_lane_agrees(self):
        tech = unit_technology()
        scalar, batch = _lane(tech, 2.0, 3.0, 2.0, 3.0)
        assert batch.length_a[0] == scalar.length_a
        assert batch.length_b[0] == scalar.length_b

    def test_zero_rc_degenerate_lane_agrees(self):
        # Zero-RC technology at L=0: the balance denominator vanishes;
        # both classifiers must take the same trivial-split branch.
        from repro.tech.parameters import GateModel, Technology

        cell = GateModel(
            input_cap=0.0, drive_resistance=0.0, intrinsic_delay=0.0, area=0.0
        )
        tech = Technology(
            unit_wire_resistance=0.0,
            unit_wire_capacitance=0.0,
            masking_gate=cell,
            buffer=cell,
        )
        scalar, batch = _lane(tech, 2.0, 3.0, 2.0, 3.0)
        assert bool(batch.degenerate[0])
        assert batch.in_range[0]
        assert batch.length_a[0] == scalar.length_a == 0.0
        assert batch.length_b[0] == scalar.length_b == 0.0


class TestMergerBehavior:
    def test_coincident_pair_zero_length_edges(self):
        sinks = [
            Sink("a", Point(5, 5), 1.0, 0),
            Sink("b", Point(5, 5), 1.0, 1),
        ]
        tree = BottomUpMerger(sinks, date98_technology()).run()
        assert tree.total_wirelength() == pytest.approx(0.0)
        assert tree.skew() <= 1e-9
        tree.validate_embedding()

    def test_vectorize_parity_with_colocated_sinks(self):
        sinks = [
            Sink("a", Point(5, 5), 1.0, 0),
            Sink("b", Point(5, 5), 2.0, 1),
            Sink("c", Point(40, 5), 1.0, 2),
            Sink("d", Point(5, 40), 1.5, 3),
            Sink("e", Point(40, 40), 1.0, 4),
        ]
        runs = {}
        for vectorize in (True, False):
            merger = BottomUpMerger(
                sinks, date98_technology(), vectorize=vectorize
            )
            tree = merger.run()
            runs[vectorize] = (merger.merge_trace, tree.total_wirelength())
        # Byte-identical decisions and wirelength across modes.
        assert runs[True] == runs[False]

    def test_negative_distance_still_rejected(self):
        tech = date98_technology()
        with pytest.raises(GeometryError):
            zero_skew_split(-1.0, Tap(cap=1.0, delay=0.0), Tap(cap=1.0, delay=0.0), tech)

    def test_non_finite_distance_rejected(self):
        tech = date98_technology()
        with pytest.raises(GeometryError, match="finite"):
            zero_skew_split(
                float("nan"), Tap(cap=1.0, delay=0.0), Tap(cap=1.0, delay=0.0), tech
            )
