"""Unit tests for ISA / trace file round-trips."""

import io

import numpy as np
import pytest

from repro.activity import InstructionStream
from repro.activity.isa import paper_example_isa, paper_example_stream
from repro.activity.probability import ActivityOracle, scan_stream_probabilities
from repro.activity.tables import ActivityTables
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.io.tracefile import (
    load_workload,
    read_isa,
    read_trace,
    save_workload,
    write_isa,
    write_trace,
)


@pytest.fixture()
def paper_workload():
    isa = paper_example_isa()
    stream = InstructionStream(ids=np.array(paper_example_stream()))
    return isa, stream


class TestIsaRoundTrip:
    def test_roundtrip(self, paper_workload):
        isa, _ = paper_workload
        buffer = io.StringIO()
        write_isa(isa, buffer)
        buffer.seek(0)
        loaded = read_isa(buffer)
        assert loaded.names == isa.names
        assert loaded.masks == isa.masks
        assert loaded.num_modules == isa.num_modules

    def test_file_roundtrip(self, paper_workload, tmp_path):
        isa, _ = paper_workload
        path = tmp_path / "isa.json"
        write_isa(isa, path)
        assert read_isa(path).masks == isa.masks

    def test_version_check(self, paper_workload):
        isa, _ = paper_workload
        buffer = io.StringIO()
        write_isa(isa, buffer)
        data = buffer.getvalue().replace('"format_version": 1', '"format_version": 9')
        with pytest.raises(ValueError, match="version"):
            read_isa(io.StringIO(data))


class TestTraceRoundTrip:
    def test_roundtrip(self, paper_workload):
        isa, stream = paper_workload
        buffer = io.StringIO()
        write_trace(isa, stream, buffer)
        buffer.seek(0)
        loaded = read_trace(isa, buffer)
        assert (loaded.ids == stream.ids).all()

    def test_unknown_instruction_reports_line(self, paper_workload):
        isa, _ = paper_workload
        with pytest.raises(ValueError, match="line 2"):
            read_trace(isa, io.StringIO("I1\nBOGUS\n"))

    def test_empty_trace_rejected(self, paper_workload):
        isa, _ = paper_workload
        with pytest.raises(ValueError, match="no instructions"):
            read_trace(isa, io.StringIO("# only a comment\n"))


class TestWorkloadFiles:
    def test_save_load_preserves_probabilities(self, paper_workload, tmp_path):
        isa, stream = paper_workload
        save_workload(isa, stream, tmp_path / "isa.json", tmp_path / "trace.txt")
        oracle = load_workload(tmp_path / "isa.json", tmp_path / "trace.txt")
        direct = ActivityOracle(ActivityTables.from_stream(isa, stream))
        mask = (1 << 4) | (1 << 5)
        assert oracle.signal_probability(mask) == pytest.approx(
            direct.signal_probability(mask)
        )
        assert oracle.transition_probability(mask) == pytest.approx(
            direct.transition_probability(mask)
        )

    def test_cpu_model_workload_roundtrip(self, tmp_path):
        cpu = CpuModel(CpuModelConfig(num_modules=20, num_instructions=8, seed=3))
        stream = cpu.stream(500)
        save_workload(cpu.isa, stream, tmp_path / "isa.json", tmp_path / "trace.txt")
        oracle = load_workload(tmp_path / "isa.json", tmp_path / "trace.txt")
        p_scan, ptr_scan = scan_stream_probabilities(cpu.isa, stream, 0b111)
        assert oracle.signal_probability(0b111) == pytest.approx(p_scan)
        assert oracle.transition_probability(0b111) == pytest.approx(ptr_scan)
