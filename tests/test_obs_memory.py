"""Per-span memory sampling: nesting, tracer integration, exporters."""

import json

import pytest

from repro.analysis.report import format_phase_times
from repro.obs import (
    MemorySampler,
    Tracer,
    chrome_trace,
    peak_rss_bytes,
    phase_profile,
    span_memory_attrs,
)
from repro.obs.memory import ATTR_BLOCKS, ATTR_NET, ATTR_PEAK

#: One allocation big enough to dominate sampler bookkeeping noise.
BIG = 4 * 1024 * 1024


@pytest.fixture()
def sampler():
    s = MemorySampler().start()
    yield s
    s.stop()


class TestSampler:
    def test_push_pop_measures_allocation(self, sampler):
        frame = sampler.push()
        blob = bytearray(BIG)
        attrs = sampler.pop(frame)
        assert attrs[ATTR_PEAK] >= BIG
        assert attrs[ATTR_NET] >= BIG  # blob still alive
        assert attrs[ATTR_BLOCKS] > 0
        del blob

    def test_net_reflects_freed_memory(self, sampler):
        frame = sampler.push()
        blob = bytearray(BIG)
        del blob
        attrs = sampler.pop(frame)
        # The spike is in the peak, not in what survived the span.
        assert attrs[ATTR_PEAK] >= BIG
        assert attrs[ATTR_NET] < BIG // 2

    def test_child_spike_propagates_to_parent(self, sampler):
        """A child's transient peak must be visible in every ancestor."""
        outer = sampler.push()
        inner = sampler.push()
        blob = bytearray(BIG)
        del blob
        inner_attrs = sampler.pop(inner)
        outer_attrs = sampler.pop(outer)
        assert inner_attrs[ATTR_PEAK] >= BIG
        assert outer_attrs[ATTR_PEAK] >= BIG

    def test_sequential_siblings_do_not_inherit_peaks(self, sampler):
        """A later span must not report an earlier sibling's spike."""
        first = sampler.push()
        blob = bytearray(BIG)
        del blob
        sampler.pop(first)
        second = sampler.push()
        attrs = sampler.pop(second)
        assert attrs[ATTR_PEAK] < BIG // 2

    def test_inactive_sampler_is_silent(self):
        s = MemorySampler()
        if s.active:  # another test left tracemalloc on; nothing to check
            pytest.skip("tracemalloc already tracing")
        assert s.push() is None
        assert s.pop(None) == {}

    def test_out_of_order_pop_tolerated(self, sampler):
        outer = sampler.push()
        sampler.push()  # leaked inner frame
        attrs = sampler.pop(outer)
        assert ATTR_PEAK in attrs
        assert sampler._frames == []


class TestTracerIntegration:
    def test_spans_carry_memory_attrs(self, sampler):
        tracer = Tracer()
        tracer.set_sampler(sampler)
        with tracer.span("flow.route_gated"):
            with tracer.span("topology.gated"):
                blob = bytearray(BIG)
                del blob
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["topology.gated"].attrs[ATTR_PEAK] >= BIG
        assert by_name["flow.route_gated"].attrs[ATTR_PEAK] >= BIG

    def test_no_sampler_no_attrs(self):
        tracer = Tracer()
        with tracer.span("topology.gated"):
            pass
        assert ATTR_PEAK not in tracer.spans[0].attrs

    def test_span_memory_attrs_helper(self, sampler):
        tracer = Tracer()
        tracer.set_sampler(sampler)
        with tracer.span("x", n=3):
            pass
        attrs = span_memory_attrs(tracer.spans[0].attrs)
        assert set(attrs) == {ATTR_PEAK, ATTR_NET, ATTR_BLOCKS}


def _memory_trace(sampler):
    tracer = Tracer()
    tracer.set_sampler(sampler)
    with tracer.span("flow.route_gated"):
        with tracer.span("topology.gated"):
            blob = bytearray(BIG)
            del blob
        with tracer.span("flow.measure"):
            pass
    return tracer.spans


class TestExporters:
    def test_phase_profile_aggregates_memory(self, sampler):
        profile = phase_profile(_memory_trace(sampler))
        assert profile.has_memory
        assert profile.root_mem_peak_bytes >= BIG
        rows = {r.name: r for r in profile.rows}
        assert rows["topology.gated"].mem_peak_bytes >= BIG
        assert rows["topology.gated"].mem_alloc_blocks is not None
        # as_dict only grows the columns when they exist.
        assert "mem_peak_bytes" in rows["topology.gated"].as_dict()

    def test_phase_profile_without_memory(self):
        tracer = Tracer()
        with tracer.span("flow.route_gated"):
            with tracer.span("topology.gated"):
                pass
        profile = phase_profile(tracer.spans)
        assert not profile.has_memory
        assert "mem_peak_bytes" not in profile.rows[0].as_dict()
        assert "root_mem_peak_bytes" not in profile.as_dict()

    def test_format_phase_times_grows_memory_columns(self, sampler):
        profile = phase_profile(_memory_trace(sampler))
        table = format_phase_times(profile)
        assert "peak MiB" in table
        assert "allocs" in table

    def test_format_phase_times_plain_stays_plain(self):
        tracer = Tracer()
        with tracer.span("flow.route_gated"):
            with tracer.span("topology.gated"):
                pass
        table = format_phase_times(phase_profile(tracer.spans))
        assert "peak MiB" not in table

    def test_chrome_trace_carries_memory_args(self, sampler):
        trace = chrome_trace(_memory_trace(sampler))
        # Round-trip through JSON like a real viewer load would.
        events = json.loads(json.dumps(trace))["traceEvents"]
        topo = [e for e in events if e["name"] == "topology.gated"]
        assert topo and topo[0]["args"][ATTR_PEAK] >= BIG


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024
