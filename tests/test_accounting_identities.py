"""Global accounting identities across the greedy construction.

These tests tie the three layers together: the per-merge incremental
cost, the final per-edge accounting, and the technology scaling laws.
"""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.core.cost import incremental_switched_capacitance_cost
from repro.core.switched_cap import clock_tree_switched_cap
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.geometry import Point
from repro.tech import Technology, unit_technology


def rng_setup(n=14, seed=3):
    rng = np.random.default_rng(seed)
    sinks = [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=float(c), module=i)
        for i, (x, y, c) in enumerate(
            zip(rng.uniform(0, 300, n), rng.uniform(0, 300, n), rng.uniform(0.3, 2.0, n))
        )
    ]
    lists = []
    for _ in range(8):
        row = set(np.nonzero(rng.random(n) < 0.35)[0].tolist())
        lists.append(row or {0})
    isa = InstructionSet.from_usage_lists(lists, num_modules=n)
    stream = InstructionStream(ids=rng.integers(0, 8, 400))
    return sinks, ActivityOracle(ActivityTables.from_stream(isa, stream))


class TestIncrementalCostIdentity:
    def test_executed_increments_reconstruct_clock_w(self):
        """Sum of per-merge clock increments + the terms no merge owns
        (leaf loads, the root pins' always-on correction) equals the
        final W(T) of a fully gated tree, exactly."""
        sinks, oracle = rng_setup()
        tech = unit_technology()

        recorded = []
        original_execute = BottomUpMerger.execute

        merger = BottomUpMerger(
            sinks,
            tech,
            cost=incremental_switched_capacitance_cost,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        )

        def recording_execute(plan):
            a_clk = tech.clock_transitions_per_cycle
            c = tech.unit_wire_capacitance
            part = 0.0
            for child_id, decision, edge_len in (
                (plan.a_id, plan.decision_a, plan.split.length_a),
                (plan.b_id, plan.decision_b, plan.split.length_b),
            ):
                child = merger.tree.node(child_id)
                part += a_clk * c * edge_len * child.enable_probability
                part += a_clk * decision.cell.input_cap * plan.merged_probability
            recorded.append(part)
            return original_execute(merger, plan)

        merger.execute = recording_execute
        tree = merger.run()

        a_clk = tech.clock_transitions_per_cycle
        leaf_terms = sum(
            a_clk * n.sink.load_cap * n.enable_probability for n in tree.sinks()
        )
        # The final merge's pins hang at the root, which switches at
        # probability 1, not at P(EN_root) as the plan estimated.
        root = tree.root
        root_pins = sum(
            tree.node(cid).edge_cell.input_cap for cid in root.children
        )
        root_correction = a_clk * root_pins * (1.0 - root.enable_probability)

        reconstructed = sum(recorded) + leaf_terms + root_correction
        assert reconstructed == pytest.approx(
            clock_tree_switched_cap(tree, tech), rel=1e-9
        )


class TestScalingLaws:
    def _route(self, tech, sinks, oracle):
        from repro.core.controller import ControllerLayout, Die, route_enables

        tree = BottomUpMerger(
            sinks,
            tech,
            cost=incremental_switched_capacitance_cost,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run()
        die = Die.bounding([s.location for s in sinks])
        routing = route_enables(tree, ControllerLayout.centralized(die), tech)
        return tree, routing

    def test_wire_cap_scales_wire_terms_linearly(self):
        # Doubling c doubles every wire capacitance term; with the same
        # topology the clock W difference is exactly the wire part.
        sinks, oracle = rng_setup(seed=5)
        base_tech = unit_technology()
        tree, _ = self._route(base_tech, sinks, oracle)

        doubled = Technology(
            unit_wire_resistance=base_tech.unit_wire_resistance,
            unit_wire_capacitance=2.0 * base_tech.unit_wire_capacitance,
            masking_gate=base_tech.masking_gate,
            buffer=base_tech.buffer,
            clock_transitions_per_cycle=base_tech.clock_transitions_per_cycle,
        )
        # Evaluate the SAME tree under the doubled-cap accounting: the
        # wire contribution must exactly double.
        from repro.core.switched_cap import effective_enable_probabilities

        eff = effective_enable_probabilities(tree)
        wire_part = sum(
            base_tech.clock_transitions_per_cycle
            * eff[n.id]
            * base_tech.wire_cap(n.edge_length)
            for n in tree.edges()
        )
        w_base = clock_tree_switched_cap(tree, base_tech)
        w_doubled = clock_tree_switched_cap(tree, doubled)
        assert w_doubled - w_base == pytest.approx(wire_part, rel=1e-9)

    def test_activity_factor_scales_clock_w_linearly(self):
        sinks, oracle = rng_setup(seed=7)
        base = unit_technology()
        tree, _ = self._route(base, sinks, oracle)
        halved = Technology(
            unit_wire_resistance=base.unit_wire_resistance,
            unit_wire_capacitance=base.unit_wire_capacitance,
            masking_gate=base.masking_gate,
            buffer=base.buffer,
            clock_transitions_per_cycle=1.0,
        )
        assert clock_tree_switched_cap(tree, halved) == pytest.approx(
            clock_tree_switched_cap(tree, base) / 2.0
        )

    def test_controller_w_independent_of_clock_activity(self):
        from repro.core.controller import ControllerLayout, Die, route_enables

        sinks, oracle = rng_setup(seed=9)
        base = unit_technology()
        tree, routing = self._route(base, sinks, oracle)
        quiet = Technology(
            unit_wire_resistance=base.unit_wire_resistance,
            unit_wire_capacitance=base.unit_wire_capacitance,
            masking_gate=base.masking_gate,
            buffer=base.buffer,
            clock_transitions_per_cycle=1.0,
        )
        die = Die.bounding([s.location for s in sinks])
        again = route_enables(tree, ControllerLayout.centralized(die), quiet)
        assert again.switched_cap == pytest.approx(routing.switched_cap)
