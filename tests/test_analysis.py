"""Unit tests for auditing and reporting."""

import pytest

from repro.analysis.audit import audit_tree
from repro.analysis.report import (
    ComparisonRow,
    format_characteristics,
    format_comparison,
    format_table,
    method_comparison_rows,
)
from repro.bench.suite import load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def results():
    case = load_benchmark("r1", scale=0.08)
    tech = date98_technology()
    return case, [
        route_buffered(case.sinks, tech),
        route_gated(case.sinks, tech, case.oracle, die=case.die),
        route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        ),
    ]


class TestAudit:
    def test_routed_trees_pass(self, results):
        _, routed = results
        for result in routed:
            report = audit_tree(result.tree)
            assert report.ok, report.problems

    def test_detects_broken_bookkeeping(self, results):
        _, routed = results
        tree = routed[0].tree
        node = tree.sinks()[0]
        original = node.subtree_cap
        node.subtree_cap = original + 5.0
        report = audit_tree(tree)
        assert not report.ok
        assert any("cap drift" in p for p in report.problems)
        node.subtree_cap = original

    def test_detects_skew_violation(self, results):
        _, routed = results
        tree = routed[1].tree
        node = tree.sinks()[0]
        original = node.edge_length
        node.edge_length = original + 1000.0
        report = audit_tree(tree)
        assert not report.ok
        node.edge_length = original


class TestReport:
    def test_comparison_rows(self, results):
        case, routed = results
        rows = method_comparison_rows("r1", routed)
        assert [r.method for r in rows] == ["buffered", "gated", "gate-red"]
        assert all(r.benchmark == "r1" for r in rows)

    def test_format_comparison_contains_values(self, results):
        _, routed = results
        rows = method_comparison_rows("r1", routed)
        text = format_comparison(rows, title="Fig. 3")
        assert "Fig. 3" in text
        assert "buffered" in text
        assert "%0.4g" % rows[0].switched_cap in text or (
            "%.4g" % rows[0].switched_cap
        ) in text

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [100, 5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_characteristics(self):
        rows = {
            "r1": {
                "sinks": 267,
                "instructions": 16,
                "stream_cycles": 10000,
                "ave_modules_per_instruction": 0.41,
                "average_module_activity": 0.41,
            }
        }
        text = format_characteristics(rows)
        assert "Table 4" in text
        assert "267" in text

    def test_comparison_row_from_result(self, results):
        _, routed = results
        row = ComparisonRow.from_result("r1", routed[2])
        assert row.gate_count == routed[2].gate_count
        assert row.area_total == routed[2].area.total
