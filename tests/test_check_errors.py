"""Unit tests for the typed error taxonomy and the validators."""

import math

import pytest

from repro.check import (
    AuditError,
    CapAuditError,
    ControllerAuditError,
    EmbeddingAuditError,
    EnableAuditError,
    GeometryError,
    InputError,
    ReproError,
    SkewAuditError,
    SkewBalanceError,
    TechnologyError,
    validate_gate_model,
    validate_sinks,
    validate_technology,
    validate_workload,
)
from repro.cts import Sink
from repro.geometry import Point
from repro.tech import unit_technology
from repro.tech.parameters import GateModel, Technology


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (
            InputError,
            TechnologyError,
            GeometryError,
            SkewBalanceError,
            AuditError,
            SkewAuditError,
            CapAuditError,
            EnableAuditError,
            EmbeddingAuditError,
            ControllerAuditError,
        ):
            assert issubclass(cls, ReproError)

    def test_input_branches_stay_value_errors(self):
        # Backward compatibility: code written against the old bare
        # ValueError contract keeps catching these.
        for cls in (InputError, TechnologyError, GeometryError, SkewBalanceError):
            assert issubclass(cls, ValueError)

    def test_embedding_audit_error_is_value_error(self):
        # validate_embedding historically raised ValueError.
        assert issubclass(EmbeddingAuditError, ValueError)

    def test_skew_balance_is_geometry(self):
        assert issubclass(SkewBalanceError, GeometryError)


class TestDiagnostic:
    def test_full_location(self):
        exc = InputError("bad value", source="a.txt", line=7, field="x")
        assert exc.diagnostic() == "a.txt: line 7: field 'x': bad value"
        assert str(exc) == exc.diagnostic()

    def test_node_location(self):
        exc = CapAuditError("cap drift", node=12)
        assert "node 12" in str(exc)
        assert exc.node == 12

    def test_bare_message(self):
        exc = ReproError("plain")
        assert str(exc) == "plain"


def sink(name, x, y, cap=1.0, module=0):
    return Sink(name=name, location=Point(x, y), load_cap=cap, module=module)


class TestValidateSinks:
    def test_clean_list_passes(self):
        validate_sinks([sink("a", 0, 0), sink("b", 5, 5, module=1)])

    def test_empty_rejected(self):
        with pytest.raises(InputError, match="no sinks"):
            validate_sinks([])

    def test_nan_coordinate_rejected(self):
        bad = [sink("a", 0, 0), object.__new__(Sink)]
        # Sink's own __post_init__ rejects NaN, so smuggle one past it
        # to prove the validator catches it independently.
        object.__setattr__(bad[1], "name", "b")
        object.__setattr__(bad[1], "location", Point(math.nan, 0.0))
        object.__setattr__(bad[1], "load_cap", 1.0)
        object.__setattr__(bad[1], "module", 1)
        with pytest.raises(InputError, match="finite"):
            validate_sinks(bad)

    def test_duplicate_names_rejected(self):
        with pytest.raises(InputError, match="duplicate sink name 'a'"):
            validate_sinks([sink("a", 0, 0), sink("a", 5, 5, module=1)])

    def test_module_out_of_range(self):
        with pytest.raises(InputError, match="out of range"):
            validate_sinks([sink("a", 0, 0, module=7)], num_modules=4)

    def test_module_in_range_passes(self):
        validate_sinks([sink("a", 0, 0, module=3)], num_modules=4)


class TestValidateTechnology:
    def test_preset_passes_strict(self):
        validate_technology(unit_technology(), strict=True)

    def test_zero_rc_passes_non_strict_only(self):
        cell = GateModel(
            input_cap=0.0, drive_resistance=0.0, intrinsic_delay=0.0, area=0.0
        )
        tech = Technology(
            unit_wire_resistance=0.0,
            unit_wire_capacitance=0.0,
            masking_gate=cell,
            buffer=cell,
        )
        validate_technology(tech, strict=False)
        with pytest.raises(TechnologyError, match="positive"):
            validate_technology(tech, strict=True)

    def test_negative_gate_rejected_at_construction(self):
        with pytest.raises(TechnologyError):
            GateModel(
                input_cap=-1.0, drive_resistance=1.0, intrinsic_delay=0.0, area=1.0
            )

    def test_nan_wire_resistance_rejected_at_construction(self):
        cell = GateModel(
            input_cap=1.0, drive_resistance=1.0, intrinsic_delay=0.0, area=1.0
        )
        with pytest.raises(TechnologyError):
            Technology(
                unit_wire_resistance=math.nan,
                unit_wire_capacitance=1.0,
                masking_gate=cell,
                buffer=cell,
            )

    def test_gate_model_validator(self):
        with pytest.raises(TechnologyError, match="drive_resistance"):
            validate_gate_model(_BadCell())

    def test_scaled_rejects_non_positive_size(self):
        cell = GateModel(
            input_cap=1.0, drive_resistance=1.0, intrinsic_delay=0.0, area=1.0
        )
        with pytest.raises(TechnologyError):
            cell.scaled(0.0)


class _BadCell:
    # Duck-typed stand-in: GateModel itself now rejects inf at
    # construction, so the validator is probed with a plain object.
    input_cap = 1.0
    drive_resistance = math.inf
    intrinsic_delay = 0.0
    area = 1.0


class TestValidateWorkload:
    def test_round_trip_workload_passes(self):
        import numpy as np

        from repro.activity.isa import InstructionSet
        from repro.activity.stream import InstructionStream

        isa = InstructionSet.from_usage_lists([{0}, {1}], num_modules=2)
        stream = InstructionStream(ids=np.array([0, 1, 0], dtype=np.int64))
        validate_workload(isa, stream)

    def test_out_of_range_stream_rejected(self):
        import numpy as np

        from repro.activity.isa import InstructionSet
        from repro.activity.stream import InstructionStream

        isa = InstructionSet.from_usage_lists([{0}, {1}], num_modules=2)
        stream = InstructionStream(ids=np.array([0, 5], dtype=np.int64))
        with pytest.raises(InputError, match="span"):
            validate_workload(isa, stream)
