"""The ``gated-cts lint`` gate: exit codes, formats, baseline flow."""

import json

from repro.cli import main

VIOLATION = 'def f():\n    raise ValueError("boom")\n'


def make_project(tmp_path, source=VIOLATION):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    return tmp_path


class TestExitCodes:
    def test_clean_repo_exits_zero(self, tmp_path, capsys):
        root = make_project(tmp_path, "def f():\n    return 1\n")
        assert main(["lint", "--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert main(["lint", "--root", str(root)]) == 1
        assert "[REP002]" in capsys.readouterr().out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        root = make_project(tmp_path, "def f(:\n")
        assert main(["lint", "--root", str(root)]) == 2
        err = capsys.readouterr().err
        assert "InputError" in err and "syntax error" in err

    def test_missing_default_target_exits_two(self, tmp_path):
        assert main(["lint", "--root", str(tmp_path)]) == 2

    def test_explicit_paths_restrict_the_scan(self, tmp_path):
        root = make_project(tmp_path)
        clean = root / "src" / "repro" / "clean.py"
        clean.write_text("def g():\n    return 2\n")
        assert main(["lint", "--root", str(root), str(clean)]) == 0


class TestJsonFormat:
    def test_json_report_on_stdout(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert main(["lint", "--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["counts"] == {"REP002": 1}
        assert payload["findings"][0]["path"] == "src/repro/mod.py"


class TestBaselineFlow:
    def test_update_then_clean_then_regress(self, tmp_path, capsys):
        root = make_project(tmp_path)
        # grandfather the current findings
        assert main(["lint", "--root", str(root), "--update-baseline"]) == 0
        assert (root / ".repro-lint-baseline.json").exists()
        # the same tree now gates clean
        assert main(["lint", "--root", str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # a new violation still fails
        (root / "src" / "repro" / "new.py").write_text(
            'def g():\n    raise RuntimeError("fresh")\n'
        )
        assert main(["lint", "--root", str(root)]) == 1

    def test_explicit_baseline_path(self, tmp_path):
        root = make_project(tmp_path)
        baseline = root / "custom-baseline.json"
        assert (
            main(
                [
                    "lint",
                    "--root",
                    str(root),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            main(["lint", "--root", str(root), "--baseline", str(baseline)]) == 0
        )


class TestSelectFlag:
    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        root = make_project(tmp_path)  # REP002 violation
        assert main(["lint", "--root", str(root), "--select", "REP002"]) == 1
        capsys.readouterr()
        # The finding exists, but the selected rule set does not see it.
        assert main(["lint", "--root", str(root), "--select", "REP001"]) == 0

    def test_select_project_rules(self, tmp_path):
        root = make_project(
            tmp_path,
            "from repro.quantity import CapacitanceFF, ResistanceOhm\n"
            "\n"
            "def f(cap: CapacitanceFF, res: ResistanceOhm) -> float:\n"
            "    return cap + res\n",
        )
        assert main(["lint", "--root", str(root), "--select", "REP008"]) == 1
        assert main(["lint", "--root", str(root), "--select", "REP009"]) == 0

    def test_unknown_code_exits_two(self, tmp_path, capsys):
        root = make_project(tmp_path, "def f():\n    return 1\n")
        assert main(["lint", "--root", str(root), "--select", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestExplainFlag:
    def test_explain_prints_rule_documentation(self, capsys):
        assert main(["lint", "--explain", "REP008"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("REP008:")
        assert "rationale:" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["lint", "--explain", "rep011"]) == 0
        assert "REP011" in capsys.readouterr().out

    def test_explain_unknown_code_exits_two(self, capsys):
        assert main(["lint", "--explain", "REP999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule code" in err and "REP008" in err


class TestCheckNoqa:
    def test_stale_suppression_fails(self, tmp_path, capsys):
        root = make_project(
            tmp_path,
            "def f():\n    return 1  # repro: noqa[REP002]\n",
        )
        assert main(["lint", "--root", str(root), "--check-noqa"]) == 1
        out = capsys.readouterr().out
        assert "stale suppression [REP002] matched no finding" in out

    def test_live_suppression_passes(self, tmp_path, capsys):
        root = make_project(
            tmp_path,
            'def f():\n    raise ValueError("boom")  # repro: noqa[REP002]\n',
        )
        assert main(["lint", "--root", str(root), "--check-noqa"]) == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        root = make_project(
            tmp_path,
            '"""Docs may say ``# repro: noqa[REP001]`` freely."""\n'
            "\n"
            "def f():\n"
            "    return 1\n",
        )
        assert main(["lint", "--root", str(root), "--check-noqa"]) == 0

    def test_incompatible_with_select(self, tmp_path, capsys):
        root = make_project(tmp_path, "def f():\n    return 1\n")
        code = main(
            ["lint", "--root", str(root), "--check-noqa", "--select", "REP002"]
        )
        assert code == 2
        assert "--check-noqa" in capsys.readouterr().err

    def test_shipped_tree_has_no_stale_noqa(self, capsys):
        assert main(["lint", "--check-noqa"]) == 0
        capsys.readouterr()


class TestRepoIsClean:
    def test_shipped_tree_lints_clean(self, capsys):
        """The gate the CI runs: the committed tree has zero findings
        against the committed (empty) baseline."""
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_shipped_baseline_is_empty(self):
        from repro.lint.baseline import BASELINE_FILENAME, Baseline

        baseline = Baseline.load(BASELINE_FILENAME)
        assert len(baseline) == 0
