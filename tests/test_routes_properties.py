"""Property-based tests for route geometry over random trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.cts.routes import tree_routes
from repro.geometry import Point
from repro.tech import unit_technology

coords = st.floats(min_value=0, max_value=500, allow_nan=False)


@st.composite
def sink_sets(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    return [
        Sink(
            name="s%d" % i,
            location=Point(draw(coords), draw(coords)),
            load_cap=draw(st.floats(min_value=0.1, max_value=5.0)),
            module=i,
        )
        for i in range(n)
    ]


class TestRouteProperties:
    @given(sink_sets())
    @settings(max_examples=60, deadline=None)
    def test_lengths_match_edges_exactly(self, sinks):
        tree = BottomUpMerger(sinks, unit_technology()).run()
        for route in tree_routes(tree):
            node = tree.node(route.node_id)
            scale = 1.0 + node.edge_length
            assert abs(route.length - node.edge_length) <= 1e-6 * scale

    @given(sink_sets())
    @settings(max_examples=60, deadline=None)
    def test_routes_rectilinear_and_anchored(self, sinks):
        tree = BottomUpMerger(sinks, unit_technology()).run()
        for route in tree_routes(tree):
            node = tree.node(route.node_id)
            parent = tree.node(node.parent)
            assert route.is_rectilinear(tol=1e-6)
            assert route.points[0].is_close(parent.location, tol=1e-6)
            assert route.points[-1].is_close(node.location, tol=1e-6)

    @given(sink_sets())
    @settings(max_examples=40, deadline=None)
    def test_gated_trees_route_too(self, sinks):
        tree = BottomUpMerger(
            sinks, unit_technology(), cell_policy=GateEveryEdgePolicy()
        ).run()
        total = sum(r.length for r in tree_routes(tree))
        assert total == pytest.approx(tree.total_wirelength(), rel=1e-6)
