"""Unit tests for the switched-capacitance accounting."""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.core.switched_cap import (
    clock_tree_switched_cap,
    effective_enable_probabilities,
    masking_efficiency,
    ungated_clock_tree_switched_cap,
)
from repro.cts import BottomUpMerger, ClockTree, Sink
from repro.cts.dme import BufferEveryEdgePolicy, GateEveryEdgePolicy
from repro.geometry import Point, Trr
from repro.tech import unit_technology


def oracle_constant(num_modules, active_prob_bits):
    """Two instructions: all modules vs none (plus a pad module)."""
    isa = InstructionSet.from_usage_lists(
        [set(range(num_modules)) | {num_modules}, {num_modules}],
        num_modules=num_modules + 1,
    )
    ids = np.array(active_prob_bits)
    return ActivityOracle(ActivityTables.from_stream(isa, InstructionStream(ids=ids)))


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


class TestEffectiveProbabilities:
    def test_root_is_always_on(self):
        tree = BottomUpMerger(rng_sinks(5), unit_technology()).run()
        eff = effective_enable_probabilities(tree)
        assert eff[tree.root_id] == 1.0

    def test_ungated_inherits_parent(self):
        tree = BottomUpMerger(rng_sinks(8, seed=1), unit_technology()).run()
        eff = effective_enable_probabilities(tree)
        assert all(p == 1.0 for p in eff.values())

    def test_gated_edge_uses_own_probability(self):
        oracle = oracle_constant(6, [0, 1, 0, 1])
        tree = BottomUpMerger(
            rng_sinks(6, seed=2),
            unit_technology(),
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run()
        eff = effective_enable_probabilities(tree)
        for node in tree.edges():
            assert eff[node.id] == pytest.approx(0.5)

    def test_mixed_tree_inheritance(self):
        # Hand-built: root -> internal (gated, P=0.25) -> two leaves
        # (ungated): the leaves must inherit 0.25.
        tech = unit_technology()
        tree = ClockTree(tech)
        a = tree.add_leaf(Sink("a", Point(0, 0), 1.0, 0))
        b = tree.add_leaf(Sink("b", Point(4, 0), 1.0, 1))
        mid = tree.add_internal(a.id, b.id, Trr.from_point(Point(2, 0)))
        c = tree.add_leaf(Sink("c", Point(2, 10), 1.0, 2))
        root = tree.add_internal(mid.id, c.id, Trr.from_point(Point(2, 5)))
        tree.set_root(root.id)
        mid.edge_cell = tech.masking_gate
        mid.edge_maskable = True
        mid.enable_probability = 0.25
        eff = effective_enable_probabilities(tree)
        assert eff[mid.id] == 0.25
        assert eff[a.id] == 0.25
        assert eff[b.id] == 0.25
        assert eff[c.id] == 1.0


class TestClockTreeSwitchedCap:
    def test_hand_computed_two_sink_tree(self):
        # Two sinks 10 apart, load 1 each, plain wires, unit RC, a_clk 2.
        # Edges 5+5; each edge cap = 5*1 + 1 = 6 -> W = 2 * 12 = 24.
        tree = BottomUpMerger(
            [
                Sink("a", Point(0, 0), 1.0, 0),
                Sink("b", Point(10, 0), 1.0, 1),
            ],
            unit_technology(),
        ).run()
        assert clock_tree_switched_cap(tree, tree.tech) == pytest.approx(24.0)

    def test_buffered_tree_counts_buffer_pins(self):
        tech = unit_technology()
        sinks = [
            Sink("a", Point(0, 0), 1.0, 0),
            Sink("b", Point(10, 0), 1.0, 1),
        ]
        plain = BottomUpMerger(sinks, tech).run()
        buffered = BottomUpMerger(
            sinks, tech, cell_policy=BufferEveryEdgePolicy()
        ).run()
        w_plain = clock_tree_switched_cap(plain, tech)
        w_buf = clock_tree_switched_cap(buffered, tech)
        # The buffered tree adds two buffer input pins at the root
        # (2 * 0.5 pF * a_clk = 2) and decouples wire loads.
        assert w_buf != w_plain
        assert w_buf == pytest.approx(
            2 * (tech.buffer.input_cap * 2 + (5 + 1) + (5 + 1))
        )

    def test_always_on_gated_equals_ungated(self):
        oracle = oracle_constant(8, [0, 0, 0, 0])  # every module always on
        tree = BottomUpMerger(
            rng_sinks(8, seed=3),
            unit_technology(),
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run()
        assert clock_tree_switched_cap(tree, tree.tech) == pytest.approx(
            ungated_clock_tree_switched_cap(tree, tree.tech)
        )

    def test_half_active_masks_half_of_gated_caps(self):
        oracle = oracle_constant(8, [0, 1, 0, 1, 0, 1])
        tree = BottomUpMerger(
            rng_sinks(8, seed=3),
            unit_technology(),
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run()
        w = clock_tree_switched_cap(tree, tree.tech)
        ungated = ungated_clock_tree_switched_cap(tree, tree.tech)
        # All enables are the same 0.5 signal; only the root-attached
        # pins stay always-on.
        tech = tree.tech
        root_pins = 2 * tech.masking_gate.input_cap * tech.clock_transitions_per_cycle
        assert w == pytest.approx(0.5 * (ungated - root_pins) + root_pins)

    def test_masking_efficiency_bounds(self):
        oracle = oracle_constant(10, [0, 1, 1, 0, 1])
        tree = BottomUpMerger(
            rng_sinks(10, seed=4),
            unit_technology(),
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run()
        eff = masking_efficiency(tree, tree.tech)
        assert 0.0 < eff <= 1.0

    def test_ungated_tree_efficiency_is_one(self):
        tree = BottomUpMerger(rng_sinks(6, seed=5), unit_technology()).run()
        assert masking_efficiency(tree, tree.tech) == pytest.approx(1.0)

    def test_no_double_counting_with_partial_gating(self):
        # Manually gate only the root's children; total W must equal
        # the per-edge sum computed independently.
        tech = unit_technology()
        oracle = oracle_constant(8, [0, 1, 0, 1])
        tree = BottomUpMerger(
            rng_sinks(8, seed=6),
            tech,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run()
        # Strip gates from every leaf edge.
        for node in tree.sinks():
            node.edge_cell = None
            node.edge_maskable = False
        eff = effective_enable_probabilities(tree)
        expected = 0.0
        root = tree.root_id
        for node in tree.nodes():
            attached = (
                node.sink.load_cap
                if node.is_sink
                else sum(
                    tree.node(c).edge_cell.input_cap
                    for c in node.children
                    if tree.node(c).edge_cell is not None
                )
            )
            wire = 0.0 if node.id == root else tech.wire_cap(node.edge_length)
            expected += tech.clock_transitions_per_cycle * eff[node.id] * (
                wire + attached
            )
        assert clock_tree_switched_cap(tree, tech) == pytest.approx(expected)
