"""Property-based tests: the table-driven oracle vs brute-force scan.

The paper's section-3.3 claim is that IFT + IMATT, built by a single
pass over the trace, answer any ``P(EN)`` / ``P_tr(EN)`` query exactly
as a full rescan would.  Hypothesis draws random ISAs, streams and
module subsets and checks the identity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.activity.probability import scan_stream_probabilities


@st.composite
def isa_stream_mask(draw):
    num_modules = draw(st.integers(min_value=1, max_value=12))
    num_instructions = draw(st.integers(min_value=2, max_value=6))
    usage = [
        draw(
            st.sets(
                st.integers(min_value=0, max_value=num_modules - 1),
                min_size=1,
                max_size=num_modules,
            )
        )
        for _ in range(num_instructions)
    ]
    isa = InstructionSet.from_usage_lists(usage, num_modules=num_modules)
    length = draw(st.integers(min_value=2, max_value=60))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_instructions - 1),
            min_size=length,
            max_size=length,
        )
    )
    mask = draw(st.integers(min_value=0, max_value=(1 << num_modules) - 1))
    return isa, InstructionStream(ids=np.array(ids)), mask


class TestTableEqualsScan:
    @given(isa_stream_mask())
    @settings(max_examples=200)
    def test_signal_probability_matches(self, data):
        isa, stream, mask = data
        oracle = ActivityOracle(ActivityTables.from_stream(isa, stream))
        p_scan, _ = scan_stream_probabilities(isa, stream, mask)
        assert abs(oracle.signal_probability(mask) - p_scan) < 1e-9

    @given(isa_stream_mask())
    @settings(max_examples=200)
    def test_transition_probability_matches(self, data):
        isa, stream, mask = data
        oracle = ActivityOracle(ActivityTables.from_stream(isa, stream))
        _, ptr_scan = scan_stream_probabilities(isa, stream, mask)
        assert abs(oracle.transition_probability(mask) - ptr_scan) < 1e-9


class TestProbabilityInvariants:
    @given(isa_stream_mask())
    @settings(max_examples=150)
    def test_probabilities_in_unit_interval(self, data):
        isa, stream, mask = data
        oracle = ActivityOracle(ActivityTables.from_stream(isa, stream))
        stats = oracle.statistics(mask)
        assert 0.0 <= stats.signal_probability <= 1.0
        assert 0.0 <= stats.transition_probability <= 1.0

    @given(isa_stream_mask())
    @settings(max_examples=150)
    def test_transition_bound(self, data):
        # P_tr <= 2 * min(P, 1-P) * B/(B-1): each 0->1 toggle consumes
        # a 0 cycle and a 1 cycle (finite-stream corrected bound).
        isa, stream, mask = data
        oracle = ActivityOracle(ActivityTables.from_stream(isa, stream))
        stats = oracle.statistics(mask)
        slack = len(stream) / (len(stream) - 1)
        bound = 2 * min(stats.signal_probability, 1 - stats.signal_probability)
        assert stats.transition_probability <= bound * slack + 1e-9

    @given(isa_stream_mask(), st.integers(min_value=0, max_value=(1 << 12) - 1))
    @settings(max_examples=150)
    def test_union_monotone(self, data, extra_mask):
        isa, stream, mask = data
        extra_mask &= (1 << isa.num_modules) - 1
        oracle = ActivityOracle(ActivityTables.from_stream(isa, stream))
        p_small = oracle.signal_probability(mask)
        p_union = oracle.signal_probability(mask | extra_mask)
        assert p_union >= p_small - 1e-12
