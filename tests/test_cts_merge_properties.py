"""Property-based tests of the zero-skew split."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts.merge import Tap, zero_skew_split
from repro.tech import GateModel, unit_technology

caps = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
delays = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
lengths = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@st.composite
def taps(draw):
    cell = None
    if draw(st.booleans()):
        cell = GateModel(
            input_cap=draw(st.floats(min_value=0.01, max_value=5.0)),
            drive_resistance=draw(st.floats(min_value=0.0, max_value=10.0)),
            intrinsic_delay=draw(st.floats(min_value=0.0, max_value=10.0)),
            area=1.0,
        )
    return Tap(cap=draw(caps), delay=draw(delays), cell=cell)


class TestZeroSkewSplitProperties:
    @given(lengths, taps(), taps())
    @settings(max_examples=300)
    def test_delays_balance_exactly(self, length, a, b):
        tech = unit_technology()
        split = zero_skew_split(length, a, b, tech)
        da = a.edge_delay(split.length_a, tech)
        db = b.edge_delay(split.length_b, tech)
        scale = max(da, db, 1.0)
        assert abs(da - db) <= 1e-6 * scale

    @given(lengths, taps(), taps())
    @settings(max_examples=300)
    def test_lengths_cover_distance(self, length, a, b):
        tech = unit_technology()
        split = zero_skew_split(length, a, b, tech)
        assert split.length_a >= 0.0
        assert split.length_b >= 0.0
        assert split.total_length >= length - 1e-9 * (1 + length)

    @given(lengths, taps(), taps())
    @settings(max_examples=300)
    def test_no_snake_means_exact_cover(self, length, a, b):
        tech = unit_technology()
        split = zero_skew_split(length, a, b, tech)
        if split.snaked is None:
            assert split.total_length <= length + 1e-6 * (1 + length)

    @given(lengths, taps(), taps())
    @settings(max_examples=200)
    def test_symmetry(self, length, a, b):
        tech = unit_technology()
        ab = zero_skew_split(length, a, b, tech)
        ba = zero_skew_split(length, b, a, tech)
        scale = 1 + abs(ab.length_a)
        assert abs(ab.length_a - ba.length_b) <= 1e-6 * scale
        assert abs(ab.length_b - ba.length_a) <= 1e-6 * scale

    @given(lengths, taps(), taps())
    @settings(max_examples=200)
    def test_merged_delay_reported(self, length, a, b):
        tech = unit_technology()
        split = zero_skew_split(length, a, b, tech)
        da = a.edge_delay(split.length_a, tech)
        assert split.delay >= da - 1e-9 * (1 + da)
        assert split.delay >= max(a.delay, b.delay) - 1e-9
