"""Unit tests for the spec-driven study runner."""

import json

import pytest

from repro.analysis.study import MethodSpec, StudySpec, run_study


@pytest.fixture(scope="module")
def small_spec():
    return StudySpec(
        benchmarks=("r1",),
        methods=(
            MethodSpec(name="buffered", kind="buffered"),
            MethodSpec(name="gate-red", kind="reduced", knob=0.5),
        ),
        scale=0.08,
    )


class TestSpecValidation:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(benchmarks=("r9",))

    def test_duplicate_method_names_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(
                methods=(
                    MethodSpec(name="x", kind="buffered"),
                    MethodSpec(name="x", kind="gated"),
                )
            )

    def test_bad_method_kind_rejected(self):
        with pytest.raises(ValueError):
            MethodSpec(name="x", kind="bogus")

    def test_bad_knob_rejected(self):
        with pytest.raises(ValueError):
            MethodSpec(name="x", knob=1.5)

    def test_default_spec_is_fig3(self):
        spec = StudySpec()
        assert [m.name for m in spec.methods] == ["buffered", "gated", "gate-red"]


class TestSerialization:
    def test_roundtrip(self, small_spec, tmp_path):
        path = tmp_path / "spec.json"
        small_spec.save(path)
        loaded = StudySpec.load(path)
        assert loaded == small_spec

    def test_template_is_valid_json(self, tmp_path):
        path = tmp_path / "t.json"
        StudySpec().save(path)
        data = json.loads(path.read_text())
        assert "methods" in data and "benchmarks" in data


class TestRun:
    def test_one_row_per_bench_method(self, small_spec):
        result = run_study(small_spec)
        assert len(result.rows) == 2
        assert {r.comparison.method for r in result.rows} == {"buffered", "gate-red"}

    def test_method_names_override_flow_labels(self, small_spec):
        spec = StudySpec(
            benchmarks=("r1",),
            methods=(MethodSpec(name="my-config", kind="reduced"),),
            scale=0.08,
        )
        result = run_study(spec)
        assert result.rows[0].comparison.method == "my-config"

    def test_quality_metric_attached(self, small_spec):
        result = run_study(small_spec)
        for row in result.rows:
            assert row.wirelength_quality >= 1.0

    def test_report_contains_all_methods(self, small_spec):
        result = run_study(small_spec)
        text = result.report()
        assert "buffered" in text and "gate-red" in text

    def test_results_serialize(self, small_spec, tmp_path):
        result = run_study(small_spec)
        path = tmp_path / "out.json"
        result.save(path)
        data = json.loads(path.read_text())
        assert len(data["rows"]) == 2
        assert data["spec"]["scale"] == 0.08

    def test_deterministic(self, small_spec):
        a = run_study(small_spec)
        b = run_study(small_spec)
        assert [r.comparison.switched_cap for r in a.rows] == [
            r.comparison.switched_cap for r in b.rows
        ]

    def test_extension_knobs_run(self):
        spec = StudySpec(
            benchmarks=("r1",),
            methods=(
                MethodSpec(name="sized", kind="reduced", gate_sizing=True),
                MethodSpec(name="bounded", kind="reduced", skew_bound=100.0),
                MethodSpec(name="spread", kind="gated", num_controllers=4),
            ),
            scale=0.06,
        )
        result = run_study(spec)
        assert len(result.rows) == 3


class TestCli:
    def test_study_template_and_run(self, tmp_path, capsys):
        from repro.cli import main

        template = tmp_path / "spec.json"
        assert main(["study", "--template", str(template)]) == 0
        # Shrink the template for test speed.
        data = json.loads(template.read_text())
        data["scale"] = 0.06
        template.write_text(json.dumps(data))
        out = tmp_path / "results.json"
        assert main(["study", "--spec", str(template), "--out", str(out)]) == 0
        assert out.exists()
        assert "Study: r1" in capsys.readouterr().out
