"""The regression sentinel: noise model, planted faults, self-test."""

import pytest

from repro.check.errors import InputError
from repro.obs import Thresholds, compare_runs, format_trend, self_test
from repro.obs.sentinel import synthetic_record


def _statuses(diff, section):
    return {f.name: f.status for f in diff.findings if f.section == section}


class TestCleanDiffs:
    def test_identical_runs_diff_clean(self):
        diff = compare_runs(synthetic_record(), synthetic_record())
        assert diff.ok
        assert diff.exit_code == 0
        assert not diff.notable()
        assert "clean" in diff.summary()

    def test_small_drift_within_thresholds_is_clean(self):
        diff = compare_runs(
            synthetic_record(),
            synthetic_record(time_factor=1.2, mem_factor=1.1, counter_factor=1.1),
        )
        assert diff.ok

    def test_improvement_is_clean_but_notable(self):
        diff = compare_runs(synthetic_record(), synthetic_record(time_factor=0.4))
        assert diff.ok
        assert any(f.status == "improved" for f in diff.findings)


class TestPlantedRegressions:
    def test_time_regression_caught(self):
        diff = compare_runs(synthetic_record(), synthetic_record(time_factor=2.0))
        assert diff.exit_code == 1
        assert _statuses(diff, "time")["topology.gated"] == "regression"

    def test_memory_regression_caught(self):
        diff = compare_runs(synthetic_record(), synthetic_record(mem_factor=3.0))
        assert not diff.ok
        assert _statuses(diff, "memory")["topology.gated"] == "regression"

    def test_counter_blowup_caught_both_directions(self):
        up = compare_runs(synthetic_record(), synthetic_record(counter_factor=2.0))
        down = compare_runs(synthetic_record(), synthetic_record(counter_factor=0.5))
        for diff in (up, down):
            assert _statuses(diff, "counters")["dme.plans_computed"] == "regression"

    def test_pin_flip_is_a_mismatch_not_noise(self):
        tweaked = synthetic_record(
            pins={"wirelength": 123456.789013, "gate_count": 254}
        )
        diff = compare_runs(synthetic_record(), tweaked)
        assert _statuses(diff, "pins")["wirelength"] == "pin-mismatch"
        assert diff.exit_code == 1

    def test_missing_and_new_pins_reported(self):
        base = synthetic_record(pins={"a": 1, "b": 2})
        cur = synthetic_record(pins={"b": 2, "c": 3})
        statuses = _statuses(compare_runs(base, cur), "pins")
        assert statuses == {"a": "missing", "b": "ok", "c": "new"}


class TestNoiseModel:
    def test_time_floor_suppresses_tiny_phases(self):
        """A 2x blowup of a sub-floor phase is scheduler noise."""
        base = synthetic_record()
        blown = synthetic_record(time_factor=2.0)
        floors = Thresholds(time_floor_ns=10_000_000_000)
        assert compare_runs(base, blown, floors, sections=("time",)).ok

    def test_memory_floor_suppresses_small_peaks(self):
        base = synthetic_record()
        blown = synthetic_record(mem_factor=3.0)
        floors = Thresholds(mem_floor_bytes=1_000_000_000)
        assert compare_runs(base, blown, floors, sections=("memory",)).ok

    def test_counter_floor_suppresses_small_counts(self):
        base = synthetic_record(counter_factor=0.001)  # 5 plans
        cur = synthetic_record(counter_factor=0.004)  # 20 plans, 4x
        assert compare_runs(base, cur, sections=("counters",)).ok

    def test_tighter_thresholds_flag_more(self):
        base = synthetic_record()
        drifted = synthetic_record(time_factor=1.3)
        assert compare_runs(base, drifted).ok
        tight = Thresholds(time_rel=1.2)
        assert not compare_runs(base, drifted, tight).ok

    def test_threshold_validation(self):
        with pytest.raises(InputError):
            Thresholds(time_rel=0.9)
        with pytest.raises(InputError):
            Thresholds(mem_rel=1.0)
        with pytest.raises(InputError):
            Thresholds(counter_rel=-0.1)


class TestSections:
    def test_sections_restrict_comparison(self):
        base = synthetic_record()
        slow = synthetic_record(time_factor=2.0)
        assert compare_runs(base, slow, sections=("pins", "counters")).ok
        assert not compare_runs(base, slow, sections=("time",)).ok

    def test_unknown_section_rejected(self):
        with pytest.raises(InputError):
            compare_runs(
                synthetic_record(), synthetic_record(), sections=("bogus",)
            )


class TestReporting:
    def test_finding_lines_are_one_line_diagnostics(self):
        diff = compare_runs(synthetic_record(), synthetic_record(time_factor=2.0))
        for finding in diff.notable():
            line = finding.line()
            assert line.startswith("obs.check: ")
            assert "\n" not in line
        report = diff.report()
        assert report.splitlines()[-1] == diff.summary()
        assert "REGRESSED" in diff.summary()

    def test_trend_lists_records_with_pins(self):
        records = [synthetic_record(), synthetic_record(time_factor=0.5)]
        text = format_trend(records, pins=("wirelength",))
        assert "Run-ledger trend" in text
        assert records[0].run_id[:12] in text
        assert "wirelength" in text


class TestSelfTest:
    def test_self_test_passes(self):
        ok, report = self_test()
        assert ok, report
        assert "sentinel self-test: ok" in report
        assert "MISSED" not in report
